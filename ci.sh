#!/usr/bin/env bash
# Tier-1 gate, runnable with no network access.
#
# The workspace's dependency graph is 100% in-tree (see DESIGN.md §3), so
# `--offline` must always succeed: any accidental reintroduction of a
# registry dependency fails this script immediately instead of passing
# locally and breaking in a sandbox.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline

# Bench smoke: one sub-second suite must run, emit a JSON artifact, and
# that artifact must round-trip through the gate's own parser (a generous
# threshold keeps the self-comparison from ever flaking).
rm -rf target/ci-bench
./target/release/hinet bench --filter headline --sample-size 5 --budget-ms 50 \
    --json --out-dir target/ci-bench >/dev/null
test -s target/ci-bench/BENCH_headline.json
./target/release/hinet bench --filter headline --sample-size 5 --budget-ms 50 \
    --baseline target/ci-bench/BENCH_headline.json --max-regress 10000 >/dev/null
echo "bench smoke: OK"
