#!/usr/bin/env bash
# Tier-1 gate, runnable with no network access.
#
# The workspace's default dependency graph is 100% in-tree (see DESIGN.md
# §3), so `--offline` must always succeed: any accidental reintroduction of
# a registry dependency fails this script immediately instead of passing
# locally and breaking in a sandbox. `crates/hinet-bench` is excluded from
# the workspace (criterion comes from the registry) and is not built here.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline
cargo test -q --offline
