#!/usr/bin/env bash
# Tier-1 gate, runnable with no network access.
#
# The workspace's dependency graph is 100% in-tree (see DESIGN.md §3), so
# `--offline` must always succeed: any accidental reintroduction of a
# registry dependency fails this script immediately instead of passing
# locally and breaking in a sandbox.
#
# `./ci.sh --update-golden` re-records the golden traces under
# tests/golden/ instead of failing on divergence — the escape hatch for
# *intentional* behaviour changes (review the resulting diff like any other
# code change).
set -euo pipefail
cd "$(dirname "$0")"

update_golden=0
if [[ "${1:-}" == "--update-golden" ]]; then
    update_golden=1
fi

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline

# Docs gate: every public item is documented (hinet-rt denies missing docs),
# no intra-doc link is broken, and every doc example compiles and runs.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace >/dev/null
cargo test --doc -q --offline --workspace

# Bench smoke: one sub-second suite must run, emit a JSON artifact, and
# that artifact must round-trip through the gate's own parser (a generous
# threshold keeps the self-comparison from ever flaking).
rm -rf target/ci-bench
./target/release/hinet bench --filter headline --sample-size 5 --budget-ms 50 \
    --json --out-dir target/ci-bench >/dev/null
test -s target/ci-bench/BENCH_headline.json
./target/release/hinet bench --filter headline --sample-size 5 --budget-ms 50 \
    --baseline target/ci-bench/BENCH_headline.json --max-regress 10000 >/dev/null
echo "bench smoke: OK"

# Scale smoke: the sweep_scale suite at a CI-sized point (the env knobs
# shrink the headline n=10^6, k=10^4 target) must run, emit its JSON
# artifact, and gate against itself — the same flow that guards the
# packed-bitset engine at full scale.
rm -rf target/ci-scale
HINET_SCALE_N=20000 HINET_SCALE_K=200 \
    ./target/release/hinet bench --filter sweep_scale --sample-size 5 \
    --budget-ms 200 --json --out-dir target/ci-scale >/dev/null
test -s target/ci-scale/BENCH_sweep_scale.json
HINET_SCALE_N=20000 HINET_SCALE_K=200 \
    ./target/release/hinet bench --filter sweep_scale --sample-size 5 \
    --budget-ms 200 --baseline target/ci-scale/BENCH_sweep_scale.json \
    --max-regress 10000 >/dev/null
echo "scale smoke: OK"

# Trace smoke: a traced seeded run must produce a hinet-trace/v1 artifact
# whose summary is internally consistent with the engine's own run report.
rm -rf target/ci-trace
./target/release/hinet run --n 40 --k 4 --seed 3 --trace \
    --trace-out target/ci-trace/run.jsonl >/dev/null
head -1 target/ci-trace/run.jsonl | grep -q '"schema":"hinet-trace/v1"'
./target/release/hinet trace --in target/ci-trace/run.jsonl --summary >/dev/null
summary="$(./target/release/hinet trace --n 40 --k 4 --seed 3 --summary)"
echo "$summary" | grep -q 'consistency:'
if echo "$summary" | grep -q MISMATCH; then
    echo "trace smoke: summary inconsistent with run report" >&2
    exit 1
fi
echo "trace smoke: OK"

# Golden self-diff: every pinned trace under tests/golden/ must reproduce
# byte-for-byte behaviour when its scenario (read from the artifact's own
# metadata) is re-run live. A non-empty diff names the first diverging
# round and fails the gate; bless intentional changes with --update-golden.
for golden in tests/golden/*.jsonl; do
    if [[ "$update_golden" == 1 ]]; then
        ./target/release/hinet trace --diff "$golden" --update-golden
    else
        ./target/release/hinet trace --diff "$golden" >/dev/null || {
            echo "golden self-diff: $golden diverged (run ./ci.sh --update-golden to bless intentional changes):" >&2
            ./target/release/hinet trace --diff "$golden" >&2 || true
            exit 1
        }
    fi
done
echo "golden self-diff: OK"

# Chaos smoke: the fault plane must be invisible when disabled — spelling
# every fault flag out at its default value must yield a byte-identical
# artifact — and a seeded lossy run must complete under retransmission,
# report fault counters, and replay byte-for-byte under the same
# --fault-seed. (The golden self-diff above already pins the zero-fault
# path against the pre-fault-plane corpus.)
rm -rf target/ci-chaos
./target/release/hinet trace --n 24 --k 3 --seed 7 \
    --out target/ci-chaos/plain.jsonl >/dev/null
./target/release/hinet trace --n 24 --k 3 --seed 7 \
    --loss 0 --crash-rate 0 --fault-seed 0 \
    --out target/ci-chaos/zeroed.jsonl >/dev/null
cmp -s target/ci-chaos/plain.jsonl target/ci-chaos/zeroed.jsonl || {
    echo "chaos smoke: zero-valued fault flags perturbed the trace" >&2
    exit 1
}
for i in 1 2; do
    ./target/release/hinet run --algorithm alg2 --n 24 --k 3 --seed 7 \
        --loss 0.1 --retransmit --fault-seed 1 \
        --trace-out "target/ci-chaos/lossy$i.jsonl" >"target/ci-chaos/lossy$i.txt"
done
grep -q 'completed: true' target/ci-chaos/lossy1.txt || {
    echo "chaos smoke: lossy alg2 run with --retransmit did not complete" >&2
    exit 1
}
grep -q 'retransmits' target/ci-chaos/lossy1.txt || {
    echo "chaos smoke: lossy run reported no fault counters" >&2
    exit 1
}
cmp -s target/ci-chaos/lossy1.jsonl target/ci-chaos/lossy2.jsonl || {
    echo "chaos smoke: the same --fault-seed produced different traces" >&2
    exit 1
}
echo "chaos smoke: OK"

# Delivery-plane smoke: the adversarial delivery plane (delay, duplication,
# reorder) must replay byte-for-byte under the same --fault-seed and report
# its counters; the generalised reliability layer must complete a chaotic
# lossy event-mode run with the armed watchdog staying quiet (a watchdog
# halt exits 1); and the sweep_chaos suite must emit its JSON artifact and
# gate against itself.
rm -rf target/ci-delivery
mkdir -p target/ci-delivery
for i in 1 2; do
    ./target/release/hinet run --algorithm alg2 --n 24 --k 3 --seed 7 \
        --delay 0.05 --max-delay 3 --dup 0.03 --reorder --fault-seed 2 \
        --trace-out "target/ci-delivery/chaos$i.jsonl" \
        >"target/ci-delivery/chaos$i.txt"
done
cmp -s target/ci-delivery/chaos1.jsonl target/ci-delivery/chaos2.jsonl || {
    echo "delivery smoke: the same --fault-seed produced different chaos traces" >&2
    exit 1
}
grep -q 'delivery plane:' target/ci-delivery/chaos1.txt || {
    echo "delivery smoke: chaos run reported no delivery-plane counters" >&2
    exit 1
}
./target/release/hinet run --algorithm klo-flood --n 32 --k 4 --seed 5 \
    --mode event --loss 0.05 --delay 0.03 --max-delay 3 --reliable \
    --stall-rounds 64 --fault-seed 3 --budget 96 \
    >target/ci-delivery/reliable.txt || {
    echo "delivery smoke: chaotic reliable event-mode run failed (watchdog halt?)" >&2
    cat target/ci-delivery/reliable.txt >&2
    exit 1
}
grep -q 'completed: true' target/ci-delivery/reliable.txt || {
    echo "delivery smoke: reliability layer did not complete the chaotic run" >&2
    exit 1
}
./target/release/hinet bench --filter sweep_chaos --sample-size 5 --budget-ms 50 \
    --json --out-dir target/ci-delivery >/dev/null
test -s target/ci-delivery/BENCH_sweep_chaos.json
./target/release/hinet bench --filter sweep_chaos --sample-size 5 --budget-ms 50 \
    --baseline target/ci-delivery/BENCH_sweep_chaos.json --max-regress 10000 >/dev/null
echo "delivery smoke: OK"

# Event-runtime smoke: a seeded event-mode run must produce the same
# dissemination result as the lock-step engine — identical trace behaviour
# (the headers differ only by the `mode` meta stamp and runtime gauges,
# hence --ignore meta), wall-clock metrics reported, and the sweep_async
# suite must emit its JSON artifact and gate against itself.
rm -rf target/ci-event
./target/release/hinet trace --algorithm alg2 --n 32 --k 4 --seed 5 \
    --out target/ci-event/lockstep.jsonl >/dev/null
./target/release/hinet trace --algorithm alg2 --n 32 --k 4 --seed 5 \
    --mode event --out target/ci-event/event.jsonl >/dev/null
./target/release/hinet trace --diff target/ci-event/lockstep.jsonl \
    target/ci-event/event.jsonl --ignore meta >/dev/null || {
    echo "event smoke: event-mode run diverged from lock-step" >&2
    ./target/release/hinet trace --diff target/ci-event/lockstep.jsonl \
        target/ci-event/event.jsonl --ignore meta >&2 || true
    exit 1
}
./target/release/hinet run --algorithm klo-flood --n 32 --k 4 --seed 5 \
    --mode event >target/ci-event/klo.txt
grep -q 'completed: true' target/ci-event/klo.txt || {
    echo "event smoke: klo-flood did not complete in event mode" >&2
    exit 1
}
grep -q 'token latency' target/ci-event/klo.txt || {
    echo "event smoke: event-mode run reported no latency metrics" >&2
    exit 1
}
./target/release/hinet bench --filter sweep_async --sample-size 5 --budget-ms 50 \
    --json --out-dir target/ci-event >/dev/null
test -s target/ci-event/BENCH_sweep_async.json
./target/release/hinet bench --filter sweep_async --sample-size 5 --budget-ms 50 \
    --baseline target/ci-event/BENCH_sweep_async.json --max-regress 10000 >/dev/null
echo "event smoke: OK"

# Fuzz smoke: a fixed-seed adversarial campaign must be deterministic —
# two runs with the same seed classify and shrink identically and find at
# least one offender — and archiving into a scratch directory twice must
# not rewrite anything (the second campaign re-finds the same shrunk
# offenders byte-for-byte and reports them as already known).
rm -rf target/ci-fuzz
./target/release/hinet fuzz --seed 1 --cases 25 --out target/ci-fuzz \
    >target/ci-fuzz-first.txt
./target/release/hinet fuzz --seed 1 --cases 25 --out target/ci-fuzz \
    >target/ci-fuzz-second.txt
grep -q 'offender' target/ci-fuzz-first.txt || {
    echo "fuzz smoke: seed 1 found no offenders" >&2
    exit 1
}
grep -q '(new)' target/ci-fuzz-first.txt || {
    echo "fuzz smoke: first campaign archived nothing" >&2
    exit 1
}
if grep -q '(new)' target/ci-fuzz-second.txt; then
    echo "fuzz smoke: second identical campaign re-archived an offender" >&2
    exit 1
fi
if ! diff <(sed 's/(already known)/(new)/' target/ci-fuzz-second.txt) \
        target/ci-fuzz-first.txt >/dev/null; then
    echo "fuzz smoke: the same --seed produced different campaigns" >&2
    exit 1
fi
echo "fuzz smoke: OK"

# Corpus replay: every offender the fuzzer has archived under tests/corpus/
# must still reproduce its recorded outcome classification exactly. Bless
# an intentional behaviour change by deleting the stale file and re-running
# the recorded fuzz seed (see docs/SCENARIOS.md).
./target/release/hinet fuzz --replay tests/corpus || {
    echo "corpus replay: an archived scenario no longer reproduces its recorded outcome" >&2
    exit 1
}
echo "corpus replay: OK"

# Streaming-verifier gate: on an archived corpus scenario the batch
# (--stability) and one-pass streaming (--stability-stream) verifiers must
# emit identical stability_window event streams — any divergence between
# the two verifier families fails the build (the artifacts differ only in
# the streaming path's gauge meta, hence --ignore meta).
rm -rf target/ci-stream
mkdir -p target/ci-stream
for sc in tests/corpus/*.scenario; do
    stem=$(basename "$sc" .scenario)
    ./target/release/hinet trace --scenario "$sc" --stability \
        --out "target/ci-stream/$stem.batch.jsonl" >/dev/null
    ./target/release/hinet trace --scenario "$sc" --stability-stream \
        --out "target/ci-stream/$stem.stream.jsonl" >/dev/null
    grep -q 'stability_window' "target/ci-stream/$stem.stream.jsonl" || {
        echo "stream gate: $stem streamed no stability_window events" >&2
        exit 1
    }
    ./target/release/hinet trace --diff "target/ci-stream/$stem.batch.jsonl" \
        "target/ci-stream/$stem.stream.jsonl" --ignore meta >/dev/null || {
        echo "stream gate: $stem: streaming verdicts diverged from batch" >&2
        ./target/release/hinet trace --diff "target/ci-stream/$stem.batch.jsonl" \
            "target/ci-stream/$stem.stream.jsonl" --ignore meta >&2 || true
        exit 1
    }
done
# Long-horizon constant-memory smoke: n=20k with a full-run partition (so
# the run exhausts its budget) at two horizons. The streaming verifier's
# retained state must not grow with the horizon — its peak gauge at 512
# rounds must stay within 50% of the 128-round peak.
for budget in 128 512; do
    ./target/release/hinet trace --algorithm klo-flood --dynamics hinet \
        --n 20000 --k 2 --theta 30 --seed 9 --budget "$budget" \
        --partition "0:$budget:1" --sample 100000 --stability-stream \
        --out "target/ci-stream/long$budget.jsonl" >/dev/null
done
peak128=$(grep -o '"stability_stream_peak_bytes":"[0-9]*"' \
    target/ci-stream/long128.jsonl | grep -o '[0-9]*')
peak512=$(grep -o '"stability_stream_peak_bytes":"[0-9]*"' \
    target/ci-stream/long512.jsonl | grep -o '[0-9]*')
test -n "$peak128" && test -n "$peak512" || {
    echo "stream gate: long-horizon runs stamped no peak gauge" >&2
    exit 1
}
if [ $((peak512 * 2)) -gt $((peak128 * 3)) ]; then
    echo "stream gate: peak state grew with the horizon ($peak128 -> $peak512 bytes)" >&2
    exit 1
fi
# The batch-vs-streaming wall-clock sweep must emit its JSON artifact and
# gate against itself.
./target/release/hinet bench --filter sweep_verify --sample-size 5 --budget-ms 50 \
    --json --out-dir target/ci-stream >/dev/null
test -s target/ci-stream/BENCH_sweep_verify.json
./target/release/hinet bench --filter sweep_verify --sample-size 5 --budget-ms 50 \
    --baseline target/ci-stream/BENCH_sweep_verify.json --max-regress 10000 >/dev/null
echo "stream gate: OK"
