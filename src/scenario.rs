//! The seeded scenario shared by `hinet run`, `hinet trace` and the
//! trace-diff engine.
//!
//! A [`Scenario`] is the full parameterisation of one simulation —
//! algorithm, dynamics model, `n`/`k`/`α`/`L`/`θ` and the RNG seed — with
//! every derived quantity (phase length `T`, round budget) computed from
//! it. Everything downstream is deterministic in these fields, which is
//! what makes traces *diffable*: two runs of the same scenario must
//! produce byte-identical `hinet-trace/v1` artifacts, so any divergence is
//! a behaviour change, not noise.
//!
//! The struct is constructed either from CLI flags
//! ([`Scenario::from_flags`]) or from a trace's own header metadata
//! ([`Scenario::from_meta`]) — the latter is how `hinet trace --diff A`
//! re-runs a golden trace's scenario live without the caller restating the
//! parameters.

use hinet_cluster::clustering::ClusteringKind;
use hinet_cluster::ctvg::{FlatProvider, HierarchyProvider};
use hinet_cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet_core::netcode::{run_rlnc_faulted, RlncReport};
use hinet_core::params::{alg1_plan, klo_plan, remark1_phases, required_phase_length, PhasePlan};
use hinet_core::runner::{run_algorithm_faulted, AlgorithmKind};
use hinet_graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet_graph::trace::TopologyProvider;
use hinet_rt::flags::FlagSet;
use hinet_rt::obs::{ParsedTrace, Tracer};
use hinet_sim::engine::{CostWeights, RunConfig, RunReport};
use hinet_sim::fault::FaultPlan;
use hinet_sim::token::round_robin_assignment;

/// One simulation's full parameterisation (see the module docs). Both
/// providers and protocols built from a scenario are deterministic in
/// `seed`, so two instances replay identical dynamics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Node count.
    pub n: usize,
    /// Token universe size.
    pub k: usize,
    /// Progress coefficient `α`.
    pub alpha: usize,
    /// Hop bound `L`.
    pub l: usize,
    /// Head-capable pool size `θ`.
    pub theta: usize,
    /// RNG seed for dynamics and randomised algorithms.
    pub seed: u64,
    /// Algorithm selector, by CLI name (`alg1`, `remark1`, `alg2`,
    /// `alg2-mh`, `klo-phased`, `klo-flood`, `gossip`, `kactive`, `delta`,
    /// `rlnc`).
    pub algorithm: String,
    /// Dynamics model, by CLI name (`hinet`, `flat-t`, `flat-1`,
    /// `waypoint`, `manhattan`, `emdg`).
    pub dynamics: String,
    /// Required phase length `T = k + α·L`.
    pub t: usize,
    /// Hard round budget for unbounded baselines.
    pub budget: usize,
    /// Per-delivery message-loss probability in parts per million
    /// (`--loss`, fraction, ×10⁶; 0 disables).
    pub loss_ppm: u32,
    /// Per-node per-round crash hazard in parts per million
    /// (`--crash-rate`, fraction, ×10⁶; 0 disables).
    pub crash_ppm: u32,
    /// Scheduled crashes as `(round, node)` pairs (`--crash-at R:U,…`).
    pub crash_at: Vec<(usize, usize)>,
    /// Restrict hazard crashes to nodes currently serving as heads
    /// (`--target-heads`).
    pub target_heads: bool,
    /// Seed for the fault decision streams (`--fault-seed`), independent
    /// of the dynamics seed so fault patterns vary per replicate.
    pub fault_seed: u64,
    /// Run HiNet algorithms in retransmission-recovery mode
    /// (`--retransmit`).
    pub retransmit: bool,
    /// Whether accumulated tokens survive a crash (`--durable-tokens`);
    /// otherwise a restarted node retains only its initial assignment.
    pub durable_tokens: bool,
}

/// Parse a `--crash-at` spec: comma-separated `round:node` pairs, e.g.
/// `"3:0,7:12"`.
pub fn parse_crash_spec(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (r, u) = part
                .split_once(':')
                .ok_or(format!("crash-at entry '{part}' is not round:node"))?;
            Ok((
                r.parse()
                    .map_err(|e| format!("crash-at round '{r}': {e}"))?,
                u.parse().map_err(|e| format!("crash-at node '{u}': {e}"))?,
            ))
        })
        .collect()
}

/// Render `(round, node)` pairs back into the `--crash-at` spec format.
/// Inverse of [`parse_crash_spec`]; used to stamp trace metadata.
pub fn crash_spec_string(crash_at: &[(usize, usize)]) -> String {
    crash_at
        .iter()
        .map(|(r, u)| format!("{r}:{u}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a probability flag given as a fraction (`0.05` = 5 %) into parts
/// per million.
fn fraction_to_ppm(name: &str, value: f64) -> Result<u32, String> {
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(format!(
            "--{name} must be a fraction in [0, 1], got {value}"
        ));
    }
    Ok((value * 1_000_000.0).round() as u32)
}

/// Outcome of [`Scenario::run_traced`]: the engine report for
/// token-forwarding algorithms, or the network-coding report for `rlnc`.
#[derive(Clone, Debug)]
pub enum ScenarioReport {
    /// A round-engine run ([`hinet_sim::engine::Engine`]).
    Engine(RunReport),
    /// An RLNC run ([`hinet_core::netcode::run_rlnc_traced`]).
    Rlnc(RlncReport),
}

impl ScenarioReport {
    /// Whether dissemination completed.
    pub fn completed(&self) -> bool {
        match self {
            ScenarioReport::Engine(r) => r.completed(),
            ScenarioReport::Rlnc(r) => r.completed(),
        }
    }

    /// Rounds executed.
    pub fn rounds_executed(&self) -> usize {
        match self {
            ScenarioReport::Engine(r) => r.rounds_executed,
            ScenarioReport::Rlnc(r) => r.rounds_executed,
        }
    }

    /// Round at which dissemination completed, if it did.
    pub fn completion_round(&self) -> Option<usize> {
        match self {
            ScenarioReport::Engine(r) => r.completion_round,
            ScenarioReport::Rlnc(r) => r.completion_round,
        }
    }

    /// The engine report, when the scenario ran on the round engine.
    pub fn engine(&self) -> Option<&RunReport> {
        match self {
            ScenarioReport::Engine(r) => Some(r),
            ScenarioReport::Rlnc(_) => None,
        }
    }

    /// The RLNC report, when the scenario ran the coded executor.
    pub fn rlnc(&self) -> Option<&RlncReport> {
        match self {
            ScenarioReport::Engine(_) => None,
            ScenarioReport::Rlnc(r) => Some(r),
        }
    }
}

impl Scenario {
    /// Build from parsed CLI flags, applying the documented defaults
    /// (`n=100`, `k=8`, `α=5`, `L=2`, `θ=n/3`, `seed=42`, `alg1` on
    /// `hinet` dynamics).
    pub fn from_flags(flags: &FlagSet) -> Result<Scenario, String> {
        let n = flags.parsed("n", 100usize)?;
        let k = flags.parsed("k", 8usize)?;
        let alpha = flags.parsed("alpha", 5usize)?;
        let l = flags.parsed("l", 2usize)?;
        let theta = flags.parsed("theta", (n / 3).max(1))?;
        let seed = flags.parsed("seed", 42u64)?;
        let t = required_phase_length(k, alpha, l);
        let loss_ppm = fraction_to_ppm("loss", flags.parsed("loss", 0.0f64)?)?;
        let crash_ppm = fraction_to_ppm("crash-rate", flags.parsed("crash-rate", 0.0f64)?)?;
        let crash_at = match flags.get("crash-at") {
            Some(spec) => parse_crash_spec(spec)?,
            None => vec![],
        };
        Ok(Scenario {
            n,
            k,
            alpha,
            l,
            theta,
            seed,
            algorithm: flags.get("algorithm").unwrap_or("alg1").to_string(),
            dynamics: flags.get("dynamics").unwrap_or("hinet").to_string(),
            t,
            budget: 4 * n + 4 * t,
            loss_ppm,
            crash_ppm,
            crash_at,
            target_heads: flags.has("target-heads"),
            fault_seed: flags.parsed("fault-seed", 0u64)?,
            retransmit: flags.has("retransmit"),
            durable_tokens: flags.has("durable-tokens"),
        })
    }

    /// Reconstruct the scenario a trace was recorded under, from the meta
    /// stamps written by [`Scenario::stamp_meta`]. This is how
    /// `hinet trace --diff A` re-runs `A`'s scenario live.
    pub fn from_meta(trace: &ParsedTrace) -> Result<Scenario, String> {
        let get = |key: &str| -> Result<&str, String> {
            trace.meta_get(key).ok_or(format!(
                "trace header lacks meta '{key}' — re-record it with this version of hinet"
            ))
        };
        let num = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("trace meta '{key}': {e}"))
        };
        // `scenario` first: it is the stamp old artifacts lack, so its
        // absence gives the most useful error.
        let algorithm = get("scenario")?.to_string();
        let dynamics = get("dynamics")?.to_string();
        let (n, k, alpha, l) = (num("n")?, num("k")?, num("alpha")?, num("l")?);
        let t = required_phase_length(k, alpha, l);
        // Fault stamps are written only when non-default, so absence means
        // "no faults" — old fault-free artifacts stay readable.
        let opt_num = |key: &str| -> Result<u64, String> {
            match trace.meta_get(key) {
                Some(s) => s.parse().map_err(|e| format!("trace meta '{key}': {e}")),
                None => Ok(0),
            }
        };
        let crash_at = match trace.meta_get("crash_at") {
            Some(spec) => parse_crash_spec(spec)?,
            None => vec![],
        };
        Ok(Scenario {
            n,
            k,
            alpha,
            l,
            theta: num("theta")?,
            seed: get("seed")?
                .parse()
                .map_err(|e| format!("trace meta 'seed': {e}"))?,
            algorithm,
            dynamics,
            t,
            budget: 4 * n + 4 * t,
            loss_ppm: opt_num("loss_ppm")? as u32,
            crash_ppm: opt_num("crash_ppm")? as u32,
            crash_at,
            target_heads: opt_num("target_heads")? != 0,
            fault_seed: opt_num("fault_seed")?,
            retransmit: opt_num("retransmit")? != 0,
            durable_tokens: opt_num("durable_tokens")? != 0,
        })
    }

    /// The deterministic fault plan the scenario's fault fields describe.
    /// Trivial (injecting nothing) when every fault field is at its
    /// default, which keeps fault-free runs byte-identical to older
    /// artifacts.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.fault_seed)
            .with_loss_ppm(self.loss_ppm)
            .with_crash_ppm(self.crash_ppm)
            .with_target_heads(self.target_heads)
            .with_durable_tokens(self.durable_tokens);
        for &(round, node) in &self.crash_at {
            plan = plan.with_crash_at(round, node);
        }
        plan
    }

    /// The algorithm selector with its derived parameterisation. Errors on
    /// unknown names and on `rlnc`, which runs outside the round engine
    /// (see [`Scenario::run_traced`]).
    pub fn kind(&self) -> Result<AlgorithmKind, String> {
        let (n, k, alpha, l, theta, t) = (self.n, self.k, self.alpha, self.l, self.theta, self.t);
        Ok(match self.algorithm.as_str() {
            "alg1" => AlgorithmKind::HiNetPhased(alg1_plan(k, alpha, l, theta)),
            "remark1" => AlgorithmKind::HiNetRemark1(PhasePlan {
                rounds_per_phase: t,
                phases: remark1_phases(theta, alpha),
            }),
            "alg2" => AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
            "alg2-mh" => AlgorithmKind::HiNetFullExchangeMH { rounds: n - 1 },
            "klo-phased" => AlgorithmKind::KloPhased(klo_plan(k, alpha, l, n)),
            "klo-flood" => AlgorithmKind::KloFlood { rounds: n - 1 },
            "gossip" => AlgorithmKind::Gossip {
                rounds: self.budget,
                seed: self.seed,
            },
            "kactive" => AlgorithmKind::KActiveFlood {
                activity: n / 2,
                rounds: self.budget,
            },
            "delta" => AlgorithmKind::DeltaFlood {
                rounds: self.budget,
            },
            other => return Err(format!("unknown algorithm '{other}'")),
        })
    }

    /// The hierarchy-carrying dynamics provider for round-engine runs.
    pub fn provider(&self, kind: &AlgorithmKind) -> Result<Box<dyn HierarchyProvider>, String> {
        let (n, l, theta, seed) = (self.n, self.l, self.theta, self.seed);
        Ok(match self.dynamics.as_str() {
            "hinet" => {
                let num_heads = (theta / 2).clamp(1, theta);
                Box::new(HiNetGen::new(HiNetConfig {
                    n,
                    num_heads,
                    theta,
                    l,
                    t: if matches!(kind, AlgorithmKind::HiNetFullExchange { .. }) {
                        1
                    } else {
                        self.t
                    },
                    reaffil_prob: 0.1,
                    rotate_heads: true,
                    noise_edges: n / 5,
                    seed,
                }))
            }
            "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
                n,
                self.t,
                BackboneKind::Path,
                n / 5,
                seed,
            ))),
            "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
            "waypoint" => Box::new(ClusteredMobilityGen::new(
                RandomWaypointGen::new(n, WaypointConfig::default(), seed),
                ClusteringKind::LowestId,
                true,
            )),
            "manhattan" => Box::new(ClusteredMobilityGen::new(
                ManhattanGen::new(n, ManhattanConfig::default(), seed),
                ClusteringKind::LowestId,
                true,
            )),
            "emdg" => Box::new(ClusteredMobilityGen::new(
                EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
                ClusteringKind::GreedyDominating,
                true,
            )),
            other => return Err(format!("unknown dynamics '{other}'")),
        })
    }

    /// The flat (hierarchy-free) dynamics provider RLNC broadcasts over.
    /// `hinet` maps to the 1-interval generator — coded dissemination
    /// ignores cluster structure, so only connectivity matters.
    pub fn rlnc_provider(&self) -> Result<Box<dyn TopologyProvider>, String> {
        let (n, seed) = (self.n, self.seed);
        Ok(match self.dynamics.as_str() {
            "flat-1" | "hinet" => Box::new(OneIntervalGen::new(n, true, n / 5, seed)),
            "flat-t" => Box::new(TIntervalGen::new(
                n,
                self.t,
                BackboneKind::Path,
                n / 5,
                seed,
            )),
            "waypoint" => Box::new(RandomWaypointGen::new(n, WaypointConfig::default(), seed)),
            "manhattan" => Box::new(ManhattanGen::new(n, ManhattanConfig::default(), seed)),
            "emdg" => Box::new(EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed)),
            other => return Err(format!("unknown dynamics '{other}'")),
        })
    }

    /// Attach the scenario parameters to a trace's header metadata. The
    /// `scenario` key records the CLI algorithm name (distinct from the
    /// `algorithm` label the runner stamps), so [`Scenario::from_meta`]
    /// can rebuild this exact struct from the artifact alone.
    pub fn stamp_meta(&self, tracer: &mut Tracer) {
        tracer.meta("scenario", self.algorithm.as_str());
        tracer.meta("dynamics", self.dynamics.as_str());
        tracer.meta("n", self.n.to_string());
        tracer.meta("k", self.k.to_string());
        tracer.meta("alpha", self.alpha.to_string());
        tracer.meta("l", self.l.to_string());
        tracer.meta("theta", self.theta.to_string());
        tracer.meta("seed", self.seed.to_string());
        // Fault stamps only when non-default: fault-free artifacts stay
        // byte-identical to those from before the fault plane existed.
        if self.loss_ppm > 0 {
            tracer.meta("loss_ppm", self.loss_ppm.to_string());
        }
        if self.crash_ppm > 0 {
            tracer.meta("crash_ppm", self.crash_ppm.to_string());
        }
        if !self.crash_at.is_empty() {
            tracer.meta("crash_at", crash_spec_string(&self.crash_at));
        }
        if self.target_heads {
            tracer.meta("target_heads", "1");
        }
        if self.fault_seed != 0 {
            tracer.meta("fault_seed", self.fault_seed.to_string());
        }
        if self.retransmit {
            tracer.meta("retransmit", "1");
        }
        if self.durable_tokens {
            tracer.meta("durable_tokens", "1");
        }
    }

    /// Execute the scenario, streaming events and meta stamps into
    /// `tracer`: the engine path for token-forwarding algorithms, the
    /// coded executor for `rlnc`. All runs use the default round-robin
    /// token assignment and [`CostWeights::default`].
    pub fn run_traced(&self, tracer: &mut Tracer) -> Result<ScenarioReport, String> {
        self.stamp_meta(tracer);
        let assignment = round_robin_assignment(self.n, self.k);
        let faults = self.fault_plan();
        if self.algorithm == "rlnc" {
            let mut provider = self.rlnc_provider()?;
            let report = run_rlnc_faulted(
                provider.as_mut(),
                &assignment,
                self.budget,
                self.seed,
                CostWeights::default(),
                &faults,
                tracer,
            );
            return Ok(ScenarioReport::Rlnc(report));
        }
        let kind = self.kind()?;
        let mut provider = self.provider(&kind)?;
        let report = run_algorithm_faulted(
            &kind,
            provider.as_mut(),
            &assignment,
            RunConfig::new().max_rounds(self.budget),
            &faults,
            self.retransmit,
            tracer,
        );
        Ok(ScenarioReport::Engine(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_rt::obs::{ObsConfig, ParsedTrace};

    fn small(algorithm: &str, dynamics: &str) -> Scenario {
        let (k, alpha, l) = (3, 2, 2);
        let t = required_phase_length(k, alpha, l);
        Scenario {
            n: 20,
            k,
            alpha,
            l,
            theta: 7,
            seed: 11,
            algorithm: algorithm.into(),
            dynamics: dynamics.into(),
            t,
            budget: 4 * 20 + 4 * t,
            loss_ppm: 0,
            crash_ppm: 0,
            crash_at: vec![],
            target_heads: false,
            fault_seed: 0,
            retransmit: false,
            durable_tokens: false,
        }
    }

    #[test]
    fn meta_round_trips_through_a_trace() {
        let sc = small("alg1", "hinet");
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        let rebuilt = Scenario::from_meta(&parsed).unwrap();
        assert_eq!(rebuilt, sc);
        // The runner's label rides along, distinct from the CLI name.
        assert_eq!(parsed.meta_get("scenario"), Some("alg1"));
        assert_eq!(parsed.meta_get("algorithm"), Some("alg1-hinet-phased"));
        assert_eq!(parsed.meta_get("token_bytes"), Some("16"));
    }

    #[test]
    fn rlnc_runs_traced_end_to_end() {
        let sc = small("rlnc", "flat-1");
        let mut tracer = Tracer::new(ObsConfig::full());
        let report = sc.run_traced(&mut tracer).unwrap();
        assert!(report.completed());
        assert!(report.rlnc().is_some());
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed.meta_get("algorithm"), Some("rlnc"));
        assert_eq!(
            parsed.counters.packets_sent,
            report.rlnc().unwrap().packets_sent
        );
        assert_eq!(Scenario::from_meta(&parsed).unwrap(), sc);
    }

    #[test]
    fn same_scenario_reruns_identically() {
        let sc = small("klo-flood", "flat-1");
        let run = || {
            let mut tracer = Tracer::new(ObsConfig::full());
            sc.run_traced(&mut tracer).unwrap();
            tracer.to_jsonl()
        };
        assert_eq!(run(), run(), "traces must be byte-identical per seed");
    }

    #[test]
    fn from_meta_rejects_untagged_traces() {
        let mut tracer = Tracer::new(ObsConfig::full());
        tracer.meta("algorithm", "alg1-hinet-phased");
        tracer.run_end(0, true);
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        let err = Scenario::from_meta(&parsed).unwrap_err();
        assert!(err.contains("scenario"), "{err}");
    }

    #[test]
    fn fault_meta_round_trips_and_is_absent_when_default() {
        let mut sc = small("alg2", "hinet");
        sc.loss_ppm = 50_000;
        sc.fault_seed = 3;
        sc.retransmit = true;
        sc.crash_at = vec![(3, 0), (7, 12)];
        sc.budget = 8 * 20; // loss voids the theorem bounds
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed.meta_get("loss_ppm"), Some("50000"));
        assert_eq!(parsed.meta_get("crash_at"), Some("3:0,7:12"));
        assert_eq!(parsed.meta_get("retransmit"), Some("1"));
        let rebuilt = Scenario::from_meta(&parsed).unwrap();
        assert_eq!(
            Scenario {
                budget: rebuilt.budget, // budget is derived, not stamped
                ..rebuilt
            },
            Scenario {
                budget: 4 * 20 + 4 * sc.t,
                ..sc.clone()
            }
        );

        // Fault-free runs stamp none of the fault keys.
        let sc = small("alg1", "hinet");
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        for key in [
            "loss_ppm",
            "crash_ppm",
            "crash_at",
            "target_heads",
            "fault_seed",
            "retransmit",
            "durable_tokens",
        ] {
            assert_eq!(parsed.meta_get(key), None, "{key} must not be stamped");
        }
    }

    #[test]
    fn crash_spec_round_trips_and_rejects_garbage() {
        let spec = "3:0,7:12";
        let parsed = parse_crash_spec(spec).unwrap();
        assert_eq!(parsed, vec![(3, 0), (7, 12)]);
        assert_eq!(crash_spec_string(&parsed), spec);
        assert_eq!(parse_crash_spec("").unwrap(), vec![]);
        assert!(parse_crash_spec("7").is_err());
        assert!(parse_crash_spec("a:b").is_err());
    }

    #[test]
    fn lossy_scenario_with_retransmit_completes_reproducibly() {
        let mut sc = small("alg2", "hinet");
        sc.loss_ppm = 100_000;
        sc.fault_seed = 1;
        sc.retransmit = true;
        sc.budget = 8 * 20;
        let run = || {
            let mut tracer = Tracer::new(ObsConfig::full());
            let report = sc.run_traced(&mut tracer).unwrap();
            (report.completed(), tracer.to_jsonl())
        };
        let (completed, a) = run();
        assert!(completed, "alg2 + retransmit must heal 10% loss");
        let (_, b) = run();
        assert_eq!(a, b, "same fault seed, same trace bytes");
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(small("magic", "hinet").kind().is_err());
        let sc = small("alg1", "mystery");
        assert!(sc.provider(&sc.kind().unwrap()).is_err());
        assert!(small("rlnc", "mystery").rlnc_provider().is_err());
    }
}
