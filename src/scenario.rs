//! The seeded scenario shared by `hinet run`, `hinet trace` and the
//! trace-diff engine.
//!
//! A [`Scenario`] is the full parameterisation of one simulation —
//! algorithm, dynamics model, `n`/`k`/`α`/`L`/`θ` and the RNG seed — with
//! every derived quantity (phase length `T`, round budget) computed from
//! it. Everything downstream is deterministic in these fields, which is
//! what makes traces *diffable*: two runs of the same scenario must
//! produce byte-identical `hinet-trace/v1` artifacts, so any divergence is
//! a behaviour change, not noise.
//!
//! The struct is constructed either from CLI flags
//! ([`Scenario::from_flags`]) or from a trace's own header metadata
//! ([`Scenario::from_meta`]) — the latter is how `hinet trace --diff A`
//! re-runs a golden trace's scenario live without the caller restating the
//! parameters.

use hinet_cluster::clustering::ClusteringKind;
use hinet_cluster::ctvg::{FlatProvider, HierarchyProvider};
use hinet_cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet_core::netcode::{run_rlnc, RlncReport};
use hinet_core::params::{alg1_plan, klo_plan, remark1_phases, required_phase_length, PhasePlan};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet_graph::trace::TopologyProvider;
use hinet_rt::flags::FlagSet;
use hinet_rt::obs::{ParsedTrace, Tracer};
use hinet_sim::engine::{ExecMode, RunConfig, RunReport};
use hinet_sim::fault::{FaultPlan, Partition};
use hinet_sim::token::round_robin_assignment;
use std::path::Path;

/// Schema tag of the declarative scenario file format (first key of every
/// file; see [`ScenarioFile`] and `docs/SCENARIOS.md`).
pub const SCENARIO_SCHEMA: &str = "hinet-scenario/v1";

/// One simulation's full parameterisation (see the module docs). Both
/// providers and protocols built from a scenario are deterministic in
/// `seed`, so two instances replay identical dynamics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Node count.
    pub n: usize,
    /// Token universe size.
    pub k: usize,
    /// Progress coefficient `α`.
    pub alpha: usize,
    /// Hop bound `L`.
    pub l: usize,
    /// Head-capable pool size `θ`.
    pub theta: usize,
    /// RNG seed for dynamics and randomised algorithms.
    pub seed: u64,
    /// Algorithm selector, by CLI name (`alg1`, `remark1`, `alg2`,
    /// `alg2-mh`, `klo-phased`, `klo-flood`, `gossip`, `kactive`, `delta`,
    /// `rlnc`).
    pub algorithm: String,
    /// Dynamics model, by CLI name (`hinet`, `flat-t`, `flat-1`,
    /// `waypoint`, `manhattan`, `emdg`).
    pub dynamics: String,
    /// Required phase length `T = k + α·L`.
    pub t: usize,
    /// Hard round budget for unbounded baselines.
    pub budget: usize,
    /// Per-delivery message-loss probability in parts per million
    /// (`--loss`, fraction, ×10⁶; 0 disables).
    pub loss_ppm: u32,
    /// Per-node per-round crash hazard in parts per million
    /// (`--crash-rate`, fraction, ×10⁶; 0 disables).
    pub crash_ppm: u32,
    /// Scheduled crashes as `(round, node)` pairs (`--crash-at R:U,…`).
    pub crash_at: Vec<(usize, usize)>,
    /// Restrict hazard crashes to nodes currently serving as heads
    /// (`--target-heads`).
    pub target_heads: bool,
    /// Seed for the fault decision streams (`--fault-seed`), independent
    /// of the dynamics seed so fault patterns vary per replicate.
    pub fault_seed: u64,
    /// Run HiNet algorithms in retransmission-recovery mode
    /// (`--retransmit`).
    pub retransmit: bool,
    /// Whether accumulated tokens survive a crash (`--durable-tokens`);
    /// otherwise a restarted node retains only its initial assignment.
    pub durable_tokens: bool,
    /// Partition windows (`--partition START:END:CUT,…`): every link
    /// between id ranges `[0, cut)` and `[cut, n)` is severed for rounds
    /// `start..end`.
    pub partitions: Vec<Partition>,
    /// Rounds a crashed node stays down before restarting
    /// (`--down-rounds`, minimum and default 1).
    pub down_rounds: usize,
    /// Per-delivery delay probability in parts per million (`--delay`,
    /// fraction, ×10⁶; 0 disables). A delayed delivery is held and
    /// re-injected up to `max_delay` rounds later.
    pub delay_ppm: u32,
    /// Upper bound in rounds on how long a delayed delivery is held
    /// (`--max-delay`, minimum and default 1); only meaningful with a
    /// nonzero `--delay`.
    pub max_delay: usize,
    /// Per-delivery duplication probability in parts per million
    /// (`--dup`, fraction, ×10⁶; 0 disables). The receive plane discards
    /// the clone and counts it in `dups_discarded`.
    pub dup_ppm: u32,
    /// Permute every node's per-round inbox with a seeded shuffle before
    /// the protocol receives it (`--reorder`).
    pub reorder: bool,
    /// Run the protocol-agnostic ack/timeout/backoff reliability layer
    /// (`--reliable`): per-link cumulative acks, retransmit timers with
    /// exponential backoff and a bounded in-flight window. Unlike the
    /// HiNet-only `--retransmit` wrapper it applies to every algorithm,
    /// including `rlnc`.
    pub reliable: bool,
    /// Stall-watchdog threshold for event-mode runs (`--stall-rounds`):
    /// when no node completes a round for roughly this many park windows
    /// the run halts with [`hinet_sim::engine::Outcome::Stalled`] and
    /// per-node frontier diagnostics. `0` (default) disables it.
    pub stall_rounds: usize,
    /// Execution mode (`--mode`): deterministic lock-step rounds
    /// (default) or the event-driven mailbox runtime.
    pub mode: ExecMode,
}

/// Parse a `--crash-at` spec: comma-separated `round:node` pairs, e.g.
/// `"3:0,7:12"`. Rejects malformed entries and duplicate pairs (crashing
/// the same node twice in the same round is always a spec typo).
pub fn parse_crash_spec(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    let pairs: Vec<(usize, usize)> = spec
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (r, u) = part
                .split_once(':')
                .ok_or(format!("crash-at entry '{part}' is not round:node"))?;
            Ok((
                r.parse()
                    .map_err(|e| format!("crash-at round '{r}': {e}"))?,
                u.parse().map_err(|e| format!("crash-at node '{u}': {e}"))?,
            ))
        })
        .collect::<Result<_, String>>()?;
    for (i, pair) in pairs.iter().enumerate() {
        if pairs[..i].contains(pair) {
            return Err(format!(
                "crash-at entry '{}:{}' is duplicated",
                pair.0, pair.1
            ));
        }
    }
    Ok(pairs)
}

/// Render `(round, node)` pairs back into the `--crash-at` spec format.
/// Inverse of [`parse_crash_spec`]; used to stamp trace metadata.
pub fn crash_spec_string(crash_at: &[(usize, usize)]) -> String {
    crash_at
        .iter()
        .map(|(r, u)| format!("{r}:{u}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a `--partition` spec: comma-separated `start:end:cut` windows,
/// e.g. `"0:20:10"` (rounds 0..20, nodes `< 10` cut off from the rest).
pub fn parse_partition_spec(spec: &str) -> Result<Vec<Partition>, String> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let fields: Vec<&str> = part.split(':').collect();
            let [start, end, cut] = fields.as_slice() else {
                return Err(format!("partition entry '{part}' is not start:end:cut"));
            };
            let num = |name: &str, raw: &str| -> Result<usize, String> {
                raw.parse()
                    .map_err(|e| format!("partition {name} '{raw}': {e}"))
            };
            Ok(Partition {
                start: num("start", start)?,
                end: num("end", end)?,
                cut: num("cut", cut)?,
            })
        })
        .collect()
}

/// Render partition windows back into the `--partition` spec format.
/// Inverse of [`parse_partition_spec`]; used to stamp trace metadata.
pub fn partition_spec_string(partitions: &[Partition]) -> String {
    partitions
        .iter()
        .map(|p| format!("{}:{}:{}", p.start, p.end, p.cut))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a probability flag given as a fraction (`0.05` = 5 %) into parts
/// per million.
fn fraction_to_ppm(name: &str, value: f64) -> Result<u32, String> {
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(format!(
            "--{name} must be a fraction in [0, 1], got {value}"
        ));
    }
    Ok((value * 1_000_000.0).round() as u32)
}

/// Outcome of [`Scenario::run_traced`]: the engine report for
/// token-forwarding algorithms, or the network-coding report for `rlnc`.
#[derive(Clone, Debug)]
pub enum ScenarioReport {
    /// A round-engine run ([`hinet_sim::engine::Engine`]).
    Engine(RunReport),
    /// An RLNC run ([`hinet_core::netcode::run_rlnc`]).
    Rlnc(RlncReport),
}

impl ScenarioReport {
    /// Whether dissemination completed.
    pub fn completed(&self) -> bool {
        match self {
            ScenarioReport::Engine(r) => r.completed(),
            ScenarioReport::Rlnc(r) => r.completed(),
        }
    }

    /// Rounds executed.
    pub fn rounds_executed(&self) -> usize {
        match self {
            ScenarioReport::Engine(r) => r.rounds_executed,
            ScenarioReport::Rlnc(r) => r.rounds_executed,
        }
    }

    /// Round at which dissemination completed, if it did.
    pub fn completion_round(&self) -> Option<usize> {
        match self {
            ScenarioReport::Engine(r) => r.completion_round,
            ScenarioReport::Rlnc(r) => r.completion_round,
        }
    }

    /// The engine report, when the scenario ran on the round engine.
    pub fn engine(&self) -> Option<&RunReport> {
        match self {
            ScenarioReport::Engine(r) => Some(r),
            ScenarioReport::Rlnc(_) => None,
        }
    }

    /// The RLNC report, when the scenario ran the coded executor.
    pub fn rlnc(&self) -> Option<&RlncReport> {
        match self {
            ScenarioReport::Engine(_) => None,
            ScenarioReport::Rlnc(r) => Some(r),
        }
    }
}

/// Algorithm names the CLI accepts (every [`Scenario::kind`] selector plus
/// the out-of-engine `rlnc` executor).
pub const ALGORITHMS: &[&str] = &[
    "alg1",
    "remark1",
    "alg2",
    "alg2-mh",
    "klo-phased",
    "klo-flood",
    "gossip",
    "kactive",
    "delta",
    "rlnc",
];

/// Algorithms the ARQ retransmission wrapper applies to (the HiNet
/// family; see `AlgorithmKind::build_node`).
pub const RETRANSMIT_ALGORITHMS: &[&str] = &["alg1", "remark1", "alg2"];

/// Dynamics model names the CLI accepts.
pub const DYNAMICS: &[&str] = &["hinet", "flat-t", "flat-1", "waypoint", "manhattan", "emdg"];

impl Scenario {
    /// The documented CLI defaults: `alg1` on `hinet` dynamics with
    /// `n=100`, `k=8`, `α=5`, `L=2`, `θ=n/3`, `seed=42`, no faults.
    pub fn defaults() -> Scenario {
        let (n, k, alpha, l) = (100, 8, 5, 2);
        let t = required_phase_length(k, alpha, l);
        Scenario {
            n,
            k,
            alpha,
            l,
            theta: n / 3,
            seed: 42,
            algorithm: "alg1".into(),
            dynamics: "hinet".into(),
            t,
            budget: 4 * n + 4 * t,
            loss_ppm: 0,
            crash_ppm: 0,
            crash_at: vec![],
            target_heads: false,
            fault_seed: 0,
            retransmit: false,
            durable_tokens: false,
            partitions: vec![],
            down_rounds: 1,
            delay_ppm: 0,
            max_delay: 1,
            dup_ppm: 0,
            reorder: false,
            reliable: false,
            stall_rounds: 0,
            mode: ExecMode::Lockstep,
        }
    }

    /// The default round budget for the scenario's size: `4n + 4T`.
    pub fn derived_budget(&self) -> usize {
        4 * self.n + 4 * self.t
    }

    /// Build from parsed CLI flags, applying the documented defaults
    /// (see [`Scenario::defaults`]). When `--scenario FILE` is given the
    /// file supplies the defaults instead, and any explicit flag overrides
    /// the corresponding file value.
    pub fn from_flags(flags: &FlagSet) -> Result<Scenario, String> {
        let base = match flags.get("scenario") {
            Some(path) => Some(ScenarioFile::load(path)?.scenario),
            None => None,
        };
        Scenario::from_flags_over(flags, base)
    }

    /// [`Scenario::from_flags`] with an explicit base scenario supplying
    /// the per-flag defaults (`None` = the stock defaults). Boolean flags
    /// can only switch a behaviour *on* over the base. The result is
    /// validated (see [`Scenario::validate`]).
    pub fn from_flags_over(flags: &FlagSet, base: Option<Scenario>) -> Result<Scenario, String> {
        let stock = Scenario::defaults();
        // With no base, θ and the budget derive from the (possibly flagged)
        // n rather than the stock n; a base pins them explicitly.
        let derive = base.is_none();
        let base = base.unwrap_or(stock);
        let n = flags.parsed("n", base.n)?;
        let k = flags.parsed("k", base.k)?;
        let alpha = flags.parsed("alpha", base.alpha)?;
        let l = flags.parsed("l", base.l)?;
        let theta = flags.parsed("theta", if derive { (n / 3).max(1) } else { base.theta })?;
        let seed = flags.parsed("seed", base.seed)?;
        let t = required_phase_length(k, alpha, l);
        let loss_ppm = match flags.get("loss") {
            Some(_) => fraction_to_ppm("loss", flags.parsed("loss", 0.0f64)?)?,
            None => base.loss_ppm,
        };
        let crash_ppm = match flags.get("crash-rate") {
            Some(_) => fraction_to_ppm("crash-rate", flags.parsed("crash-rate", 0.0f64)?)?,
            None => base.crash_ppm,
        };
        let delay_ppm = match flags.get("delay") {
            Some(_) => fraction_to_ppm("delay", flags.parsed("delay", 0.0f64)?)?,
            None => base.delay_ppm,
        };
        let dup_ppm = match flags.get("dup") {
            Some(_) => fraction_to_ppm("dup", flags.parsed("dup", 0.0f64)?)?,
            None => base.dup_ppm,
        };
        let crash_at = match flags.get("crash-at") {
            Some(spec) => parse_crash_spec(spec)?,
            None => base.crash_at,
        };
        let partitions = match flags.get("partition") {
            Some(spec) => parse_partition_spec(spec)?,
            None => base.partitions,
        };
        let budget = flags.parsed("budget", if derive { 4 * n + 4 * t } else { base.budget })?;
        let sc = Scenario {
            n,
            k,
            alpha,
            l,
            theta,
            seed,
            algorithm: flags
                .get("algorithm")
                .unwrap_or(&base.algorithm)
                .to_string(),
            dynamics: flags.get("dynamics").unwrap_or(&base.dynamics).to_string(),
            t,
            budget,
            loss_ppm,
            crash_ppm,
            crash_at,
            target_heads: flags.has("target-heads") || base.target_heads,
            fault_seed: flags.parsed("fault-seed", base.fault_seed)?,
            retransmit: flags.has("retransmit") || base.retransmit,
            durable_tokens: flags.has("durable-tokens") || base.durable_tokens,
            partitions,
            down_rounds: flags.parsed("down-rounds", base.down_rounds)?,
            delay_ppm,
            max_delay: flags.parsed("max-delay", base.max_delay)?,
            dup_ppm,
            reorder: flags.has("reorder") || base.reorder,
            reliable: flags.has("reliable") || base.reliable,
            stall_rounds: flags.parsed("stall-rounds", base.stall_rounds)?,
            mode: match flags.get("mode") {
                Some(raw) => raw.parse()?,
                None => base.mode,
            },
        };
        sc.validate()?;
        Ok(sc)
    }

    /// Reject conflicting or nonsensical parameter combinations with a
    /// usage-grade message (the CLI maps these to exit code 2). Called by
    /// [`Scenario::from_flags_over`] and [`ScenarioFile::parse`];
    /// [`Scenario::from_meta`] stays lenient so old artifacts keep
    /// parsing.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("--n must be at least 1".into());
        }
        if self.k == 0 {
            return Err("--k must be at least 1".into());
        }
        if self.alpha == 0 {
            return Err("--alpha must be a positive integer".into());
        }
        if self.l == 0 {
            return Err("--l must be a positive integer".into());
        }
        if self.theta == 0 || self.theta > self.n {
            return Err(format!(
                "--theta must be in 1..=n, got {} with n={}",
                self.theta, self.n
            ));
        }
        if self.budget == 0 {
            return Err("--budget must be at least 1".into());
        }
        if self.dynamics == "hinet" {
            // Mirror HiNetGen's feasibility assert: the generator derives
            // θ/2 cluster heads and needs (heads-1)·(L-1) distinct gateway
            // nodes to stitch the L-hop backbone between them.
            let heads = (self.theta / 2).clamp(1, self.theta);
            let gateways = heads.saturating_sub(1) * (self.l - 1);
            if heads + gateways > self.n {
                return Err(format!(
                    "hinet dynamics derives {heads} cluster heads from --theta {} and an \
                     L={} backbone needs {gateways} gateway nodes between them — n={} is \
                     too small; raise --n or lower --theta/--l",
                    self.theta, self.l, self.n
                ));
            }
        }
        if self.down_rounds == 0 {
            return Err("--down-rounds must be at least 1".into());
        }
        if !ALGORITHMS.contains(&self.algorithm.as_str()) {
            return Err(format!("unknown algorithm '{}'", self.algorithm));
        }
        if !DYNAMICS.contains(&self.dynamics.as_str()) {
            return Err(format!("unknown dynamics '{}'", self.dynamics));
        }
        for &(round, node) in &self.crash_at {
            if node >= self.n {
                return Err(format!(
                    "crash-at node {node} (round {round}) out of range for n={}",
                    self.n
                ));
            }
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(format!(
                    "partition window {}:{}:{} is empty (start must precede end)",
                    p.start, p.end, p.cut
                ));
            }
            if p.cut == 0 || p.cut >= self.n {
                return Err(format!(
                    "partition cut {} leaves one side empty for n={} (need 1..n)",
                    p.cut, self.n
                ));
            }
        }
        if self.target_heads && self.crash_ppm == 0 {
            return Err(
                "--target-heads gates hazard crashes and needs a nonzero --crash-rate".into(),
            );
        }
        if self.retransmit && !RETRANSMIT_ALGORITHMS.contains(&self.algorithm.as_str()) {
            return Err(format!(
                "--retransmit only applies to the HiNet algorithms ({}), not '{}'",
                RETRANSMIT_ALGORITHMS.join("/"),
                self.algorithm
            ));
        }
        if self.durable_tokens && self.crash_ppm == 0 && self.crash_at.is_empty() {
            return Err(
                "--durable-tokens only matters when crashes can happen; add --crash-rate or \
                 --crash-at"
                    .into(),
            );
        }
        if self.mode == ExecMode::Event && self.algorithm == "rlnc" {
            return Err(
                "--mode event only applies to round-engine algorithms; rlnc runs the coded \
                 executor outside the engine"
                    .into(),
            );
        }
        if self.max_delay == 0 {
            return Err("--max-delay must be at least 1 round".into());
        }
        if self.max_delay != 1 && self.delay_ppm == 0 {
            return Err(
                "--max-delay only matters when deliveries can be delayed; add --delay".into(),
            );
        }
        if self.reliable && self.retransmit {
            return Err(
                "--reliable and --retransmit are alternative recovery layers; pick one".into(),
            );
        }
        if self.reliable && self.loss_ppm == 0 && self.delay_ppm == 0 {
            return Err(
                "--reliable only matters when deliveries can be lost or delayed; add --loss or \
                 --delay"
                    .into(),
            );
        }
        if self.stall_rounds > 0 && self.mode != ExecMode::Event {
            return Err(
                "--stall-rounds arms the event-driver watchdog and needs --mode event".into(),
            );
        }
        Ok(())
    }

    /// Reconstruct the scenario a trace was recorded under, from the meta
    /// stamps written by [`Scenario::stamp_meta`]. This is how
    /// `hinet trace --diff A` re-runs `A`'s scenario live.
    pub fn from_meta(trace: &ParsedTrace) -> Result<Scenario, String> {
        let get = |key: &str| -> Result<&str, String> {
            trace.meta_get(key).ok_or(format!(
                "trace header lacks meta '{key}' — re-record it with this version of hinet"
            ))
        };
        let num = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("trace meta '{key}': {e}"))
        };
        // `scenario` first: it is the stamp old artifacts lack, so its
        // absence gives the most useful error.
        let algorithm = get("scenario")?.to_string();
        let dynamics = get("dynamics")?.to_string();
        let (n, k, alpha, l) = (num("n")?, num("k")?, num("alpha")?, num("l")?);
        let t = required_phase_length(k, alpha, l);
        // Fault stamps are written only when non-default, so absence means
        // "no faults" — old fault-free artifacts stay readable.
        let opt_num = |key: &str| -> Result<u64, String> {
            match trace.meta_get(key) {
                Some(s) => s.parse().map_err(|e| format!("trace meta '{key}': {e}")),
                None => Ok(0),
            }
        };
        let crash_at = match trace.meta_get("crash_at") {
            Some(spec) => parse_crash_spec(spec)?,
            None => vec![],
        };
        let partitions = match trace.meta_get("partitions") {
            Some(spec) => parse_partition_spec(spec)?,
            None => vec![],
        };
        // `budget` and `down_rounds` are stamped only when non-default.
        let budget = match trace.meta_get("budget") {
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("trace meta 'budget': {e}"))?,
            None => 4 * n + 4 * t,
        };
        let down_rounds = match trace.meta_get("down_rounds") {
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("trace meta 'down_rounds': {e}"))?,
            None => 1,
        };
        let max_delay = match trace.meta_get("max_delay") {
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("trace meta 'max_delay': {e}"))?,
            None => 1,
        };
        Ok(Scenario {
            n,
            k,
            alpha,
            l,
            theta: num("theta")?,
            seed: get("seed")?
                .parse()
                .map_err(|e| format!("trace meta 'seed': {e}"))?,
            algorithm,
            dynamics,
            t,
            budget,
            loss_ppm: opt_num("loss_ppm")? as u32,
            crash_ppm: opt_num("crash_ppm")? as u32,
            crash_at,
            target_heads: opt_num("target_heads")? != 0,
            fault_seed: opt_num("fault_seed")?,
            retransmit: opt_num("retransmit")? != 0,
            durable_tokens: opt_num("durable_tokens")? != 0,
            partitions,
            down_rounds,
            delay_ppm: opt_num("delay_ppm")? as u32,
            max_delay,
            dup_ppm: opt_num("dup_ppm")? as u32,
            reorder: opt_num("reorder")? != 0,
            reliable: opt_num("reliable")? != 0,
            stall_rounds: opt_num("stall_rounds")? as usize,
            // Stamped by the engine's event path, absent on lock-step
            // traces (which stay byte-identical to older artifacts).
            mode: match trace.meta_get("mode") {
                Some(raw) => raw.parse()?,
                None => ExecMode::Lockstep,
            },
        })
    }

    /// The deterministic fault plan the scenario's fault fields describe.
    /// Trivial (injecting nothing) when every fault field is at its
    /// default, which keeps fault-free runs byte-identical to older
    /// artifacts.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.fault_seed)
            .with_loss_ppm(self.loss_ppm)
            .with_crash_ppm(self.crash_ppm)
            .with_target_heads(self.target_heads)
            .with_durable_tokens(self.durable_tokens)
            .with_down_rounds(self.down_rounds)
            .with_delay_ppm(self.delay_ppm)
            .with_max_delay(self.max_delay)
            .with_dup_ppm(self.dup_ppm)
            .with_reorder(self.reorder);
        for &(round, node) in &self.crash_at {
            plan = plan.with_crash_at(round, node);
        }
        for &p in &self.partitions {
            plan = plan.with_partition(p);
        }
        plan
    }

    /// The algorithm selector with its derived parameterisation. Errors on
    /// unknown names and on `rlnc`, which runs outside the round engine
    /// (see [`Scenario::run_traced`]).
    pub fn kind(&self) -> Result<AlgorithmKind, String> {
        let (n, k, alpha, l, theta, t) = (self.n, self.k, self.alpha, self.l, self.theta, self.t);
        Ok(match self.algorithm.as_str() {
            "alg1" => AlgorithmKind::HiNetPhased(alg1_plan(k, alpha, l, theta)),
            "remark1" => AlgorithmKind::HiNetRemark1(PhasePlan {
                rounds_per_phase: t,
                phases: remark1_phases(theta, alpha),
            }),
            "alg2" => AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
            "alg2-mh" => AlgorithmKind::HiNetFullExchangeMH { rounds: n - 1 },
            "klo-phased" => AlgorithmKind::KloPhased(klo_plan(k, alpha, l, n)),
            "klo-flood" => AlgorithmKind::KloFlood { rounds: n - 1 },
            "gossip" => AlgorithmKind::Gossip {
                rounds: self.budget,
                seed: self.seed,
            },
            "kactive" => AlgorithmKind::KActiveFlood {
                activity: n / 2,
                rounds: self.budget,
            },
            "delta" => AlgorithmKind::DeltaFlood {
                rounds: self.budget,
            },
            other => return Err(format!("unknown algorithm '{other}'")),
        })
    }

    /// The hierarchy-carrying dynamics provider for round-engine runs.
    pub fn provider(
        &self,
        kind: &AlgorithmKind,
    ) -> Result<Box<dyn HierarchyProvider + Send>, String> {
        let (n, l, theta, seed) = (self.n, self.l, self.theta, self.seed);
        Ok(match self.dynamics.as_str() {
            "hinet" => {
                let num_heads = (theta / 2).clamp(1, theta);
                Box::new(HiNetGen::new(HiNetConfig {
                    n,
                    num_heads,
                    theta,
                    l,
                    t: if matches!(kind, AlgorithmKind::HiNetFullExchange { .. }) {
                        1
                    } else {
                        self.t
                    },
                    reaffil_prob: 0.1,
                    rotate_heads: true,
                    noise_edges: n / 5,
                    seed,
                }))
            }
            "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
                n,
                self.t,
                BackboneKind::Path,
                n / 5,
                seed,
            ))),
            "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
            "waypoint" => Box::new(ClusteredMobilityGen::new(
                RandomWaypointGen::new(n, WaypointConfig::default(), seed),
                ClusteringKind::LowestId,
                true,
            )),
            "manhattan" => Box::new(ClusteredMobilityGen::new(
                ManhattanGen::new(n, ManhattanConfig::default(), seed),
                ClusteringKind::LowestId,
                true,
            )),
            "emdg" => Box::new(ClusteredMobilityGen::new(
                EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
                ClusteringKind::GreedyDominating,
                true,
            )),
            other => return Err(format!("unknown dynamics '{other}'")),
        })
    }

    /// The flat (hierarchy-free) dynamics provider RLNC broadcasts over.
    /// `hinet` maps to the 1-interval generator — coded dissemination
    /// ignores cluster structure, so only connectivity matters.
    pub fn rlnc_provider(&self) -> Result<Box<dyn TopologyProvider>, String> {
        let (n, seed) = (self.n, self.seed);
        Ok(match self.dynamics.as_str() {
            "flat-1" | "hinet" => Box::new(OneIntervalGen::new(n, true, n / 5, seed)),
            "flat-t" => Box::new(TIntervalGen::new(
                n,
                self.t,
                BackboneKind::Path,
                n / 5,
                seed,
            )),
            "waypoint" => Box::new(RandomWaypointGen::new(n, WaypointConfig::default(), seed)),
            "manhattan" => Box::new(ManhattanGen::new(n, ManhattanConfig::default(), seed)),
            "emdg" => Box::new(EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed)),
            other => return Err(format!("unknown dynamics '{other}'")),
        })
    }

    /// Attach the scenario parameters to a trace's header metadata. The
    /// `scenario` key records the CLI algorithm name (distinct from the
    /// `algorithm` label the runner stamps), so [`Scenario::from_meta`]
    /// can rebuild this exact struct from the artifact alone.
    pub fn stamp_meta(&self, tracer: &mut Tracer) {
        tracer.meta("scenario", self.algorithm.as_str());
        tracer.meta("dynamics", self.dynamics.as_str());
        tracer.meta("n", self.n.to_string());
        tracer.meta("k", self.k.to_string());
        tracer.meta("alpha", self.alpha.to_string());
        tracer.meta("l", self.l.to_string());
        tracer.meta("theta", self.theta.to_string());
        tracer.meta("seed", self.seed.to_string());
        // Fault stamps only when non-default: fault-free artifacts stay
        // byte-identical to those from before the fault plane existed.
        if self.loss_ppm > 0 {
            tracer.meta("loss_ppm", self.loss_ppm.to_string());
        }
        if self.crash_ppm > 0 {
            tracer.meta("crash_ppm", self.crash_ppm.to_string());
        }
        if !self.crash_at.is_empty() {
            tracer.meta("crash_at", crash_spec_string(&self.crash_at));
        }
        if self.target_heads {
            tracer.meta("target_heads", "1");
        }
        if self.fault_seed != 0 {
            tracer.meta("fault_seed", self.fault_seed.to_string());
        }
        if self.retransmit {
            tracer.meta("retransmit", "1");
        }
        if self.durable_tokens {
            tracer.meta("durable_tokens", "1");
        }
        if !self.partitions.is_empty() {
            tracer.meta("partitions", partition_spec_string(&self.partitions));
        }
        if self.down_rounds != 1 {
            tracer.meta("down_rounds", self.down_rounds.to_string());
        }
        if self.delay_ppm > 0 {
            tracer.meta("delay_ppm", self.delay_ppm.to_string());
        }
        if self.max_delay != 1 {
            tracer.meta("max_delay", self.max_delay.to_string());
        }
        if self.dup_ppm > 0 {
            tracer.meta("dup_ppm", self.dup_ppm.to_string());
        }
        if self.reorder {
            tracer.meta("reorder", "1");
        }
        if self.reliable {
            tracer.meta("reliable", "1");
        }
        if self.stall_rounds != 0 {
            tracer.meta("stall_rounds", self.stall_rounds.to_string());
        }
        if self.budget != self.derived_budget() {
            tracer.meta("budget", self.budget.to_string());
        }
    }

    /// Execute the scenario, streaming events and meta stamps into
    /// `tracer`: the engine path for token-forwarding algorithms, the
    /// coded executor for `rlnc`. All runs use the default round-robin
    /// token assignment and [`hinet_sim::CostWeights::default`].
    pub fn run_traced(&self, tracer: &mut Tracer) -> Result<ScenarioReport, String> {
        self.run_traced_with_oracle(tracer, false)
    }

    /// [`Scenario::run_traced`] with the runtime (T, L)-HiNet oracle
    /// toggled on (`--stability-stream`): the engine feeds every round's
    /// effective topology and hierarchy through a
    /// [`hinet_cluster::stability::stream::StabilityStream`] at the
    /// scenario's own `(T, L)`, emitting `stability_window` events and
    /// attributing incomplete runs to the exact violated definition and
    /// round. The oracle is lock-step only: it is rejected for `rlnc`
    /// (which runs outside the round engine) and for `--mode event`
    /// (whose rounds are reassembled post-hoc, not observed live).
    pub fn run_traced_with_oracle(
        &self,
        tracer: &mut Tracer,
        oracle: bool,
    ) -> Result<ScenarioReport, String> {
        if oracle && self.algorithm == "rlnc" {
            return Err(
                "--stability-stream only applies to round-engine algorithms; rlnc runs the \
                 coded executor outside the round engine"
                    .into(),
            );
        }
        if oracle && self.mode == ExecMode::Event {
            return Err(
                "--stability-stream requires lock-step execution; --mode event reassembles \
                 rounds post-hoc, so verify the trace with `hinet trace --stability-stream` \
                 instead"
                    .into(),
            );
        }
        self.stamp_meta(tracer);
        let assignment = round_robin_assignment(self.n, self.k);
        let faults = self.fault_plan();
        if self.algorithm == "rlnc" {
            let mut provider = self.rlnc_provider()?;
            let report = run_rlnc(
                provider.as_mut(),
                &assignment,
                self.seed,
                RunConfig::new()
                    .max_rounds(self.budget)
                    .faults(faults)
                    .reliable(self.reliable)
                    .tracer(tracer),
            );
            return Ok(ScenarioReport::Rlnc(report));
        }
        let kind = self.kind()?;
        let mut provider = self.provider(&kind)?;
        // The oracle checks the (T, L) the dynamics actually promise: the
        // full-exchange family runs on per-round (T = 1) hierarchies (see
        // [`Scenario::provider`]), everything else on the phase length.
        let oracle_t = if matches!(kind, AlgorithmKind::HiNetFullExchange { .. }) {
            1
        } else {
            self.t
        };
        let report = run_algorithm(
            &kind,
            provider.as_mut(),
            &assignment,
            RunConfig::new()
                .max_rounds(self.budget)
                .faults(faults)
                .retransmit(self.retransmit)
                .reliable(self.reliable)
                .stall_rounds(self.stall_rounds)
                .mode(self.mode)
                .stability_oracle(oracle.then_some((oracle_t, self.l)))
                .tracer(tracer),
        );
        Ok(ScenarioReport::Engine(report))
    }
}

/// A declarative scenario file: a [`Scenario`] plus an optional recorded
/// outcome classification, serialised as line-oriented `key = value` text
/// (schema [`SCENARIO_SCHEMA`], hand-rolled per the zero-dep policy).
///
/// Files are written by [`ScenarioFile::render`] and read back by
/// [`ScenarioFile::parse`]; the two round-trip exactly. Blank lines and
/// `#`-prefixed comment lines are ignored; every other line must be
/// `key = value` with a known key, keys must not repeat, and the required
/// parameter keys must all be present. This is the format behind
/// `hinet run --scenario FILE` and the fuzzer's regression corpus under
/// `tests/corpus/` (see `docs/SCENARIOS.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioFile {
    /// The scenario proper.
    pub scenario: Scenario,
    /// Recorded outcome classification (`expect_outcome` key) — what the
    /// fuzzer observed when it archived the scenario; the corpus replay
    /// gate requires a re-run to reproduce it verbatim.
    pub expect: Option<String>,
}

/// Keys [`ScenarioFile::parse`] requires. `budget` is explicit in files
/// (unlike trace metadata) so a file pins the whole run even when `n`
/// is later overridden from the command line.
const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "algorithm",
    "dynamics",
    "n",
    "k",
    "alpha",
    "l",
    "theta",
    "seed",
    "budget",
];

/// Optional keys (defaulting to "off"/1) plus the outcome annotation.
const OPTIONAL_KEYS: &[&str] = &[
    "loss_ppm",
    "crash_ppm",
    "crash_at",
    "target_heads",
    "fault_seed",
    "retransmit",
    "durable_tokens",
    "partitions",
    "down_rounds",
    "delay_ppm",
    "max_delay",
    "dup_ppm",
    "reorder",
    "reliable",
    "stall_rounds",
    "mode",
    "expect_outcome",
];

impl ScenarioFile {
    /// Wrap a scenario with no recorded outcome.
    pub fn new(scenario: Scenario) -> ScenarioFile {
        ScenarioFile {
            scenario,
            expect: None,
        }
    }

    /// Serialise to the `key = value` file format. Optional keys are
    /// written only when non-default, mirroring [`Scenario::stamp_meta`].
    pub fn render(&self) -> String {
        let sc = &self.scenario;
        let mut out = String::new();
        out.push_str("# hinet scenario file — see docs/SCENARIOS.md\n");
        out.push_str(&format!("schema = {SCENARIO_SCHEMA}\n"));
        out.push_str(&format!("algorithm = {}\n", sc.algorithm));
        out.push_str(&format!("dynamics = {}\n", sc.dynamics));
        out.push_str(&format!("n = {}\n", sc.n));
        out.push_str(&format!("k = {}\n", sc.k));
        out.push_str(&format!("alpha = {}\n", sc.alpha));
        out.push_str(&format!("l = {}\n", sc.l));
        out.push_str(&format!("theta = {}\n", sc.theta));
        out.push_str(&format!("seed = {}\n", sc.seed));
        out.push_str(&format!("budget = {}\n", sc.budget));
        if sc.loss_ppm > 0 {
            out.push_str(&format!("loss_ppm = {}\n", sc.loss_ppm));
        }
        if sc.crash_ppm > 0 {
            out.push_str(&format!("crash_ppm = {}\n", sc.crash_ppm));
        }
        if !sc.crash_at.is_empty() {
            out.push_str(&format!("crash_at = {}\n", crash_spec_string(&sc.crash_at)));
        }
        if sc.target_heads {
            out.push_str("target_heads = true\n");
        }
        if sc.fault_seed != 0 {
            out.push_str(&format!("fault_seed = {}\n", sc.fault_seed));
        }
        if sc.retransmit {
            out.push_str("retransmit = true\n");
        }
        if sc.durable_tokens {
            out.push_str("durable_tokens = true\n");
        }
        if !sc.partitions.is_empty() {
            out.push_str(&format!(
                "partitions = {}\n",
                partition_spec_string(&sc.partitions)
            ));
        }
        if sc.down_rounds != 1 {
            out.push_str(&format!("down_rounds = {}\n", sc.down_rounds));
        }
        if sc.delay_ppm > 0 {
            out.push_str(&format!("delay_ppm = {}\n", sc.delay_ppm));
        }
        if sc.max_delay != 1 {
            out.push_str(&format!("max_delay = {}\n", sc.max_delay));
        }
        if sc.dup_ppm > 0 {
            out.push_str(&format!("dup_ppm = {}\n", sc.dup_ppm));
        }
        if sc.reorder {
            out.push_str("reorder = true\n");
        }
        if sc.reliable {
            out.push_str("reliable = true\n");
        }
        if sc.stall_rounds != 0 {
            out.push_str(&format!("stall_rounds = {}\n", sc.stall_rounds));
        }
        if sc.mode != ExecMode::Lockstep {
            out.push_str(&format!("mode = {}\n", sc.mode));
        }
        if let Some(expect) = &self.expect {
            out.push_str(&format!("expect_outcome = {expect}\n"));
        }
        out
    }

    /// Parse the `key = value` format back into a validated scenario.
    /// Inverse of [`ScenarioFile::render`]; see the type docs for the
    /// accepted grammar.
    pub fn parse(text: &str) -> Result<ScenarioFile, String> {
        let mut seen: Vec<(String, String)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "scenario file line {}: '{line}' is not 'key = value'",
                    lineno + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if !REQUIRED_KEYS.contains(&key) && !OPTIONAL_KEYS.contains(&key) {
                return Err(format!(
                    "scenario file line {}: unknown key '{key}'",
                    lineno + 1
                ));
            }
            if seen.iter().any(|(k, _)| k == key) {
                return Err(format!(
                    "scenario file line {}: duplicate key '{key}'",
                    lineno + 1
                ));
            }
            seen.push((key.to_string(), value.to_string()));
        }
        let get = |key: &str| seen.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
        for key in REQUIRED_KEYS {
            if get(key).is_none() {
                return Err(format!("scenario file lacks required key '{key}'"));
            }
        }
        let schema = get("schema").unwrap();
        if schema != SCENARIO_SCHEMA {
            return Err(format!(
                "scenario file schema '{schema}' is not {SCENARIO_SCHEMA}"
            ));
        }
        let num = |key: &str| -> Result<usize, String> {
            get(key)
                .unwrap()
                .parse()
                .map_err(|e| format!("scenario file key '{key}': {e}"))
        };
        let opt_u64 = |key: &str| -> Result<u64, String> {
            match get(key) {
                Some(raw) => raw
                    .parse()
                    .map_err(|e| format!("scenario file key '{key}': {e}")),
                None => Ok(0),
            }
        };
        let boolean = |key: &str| -> Result<bool, String> {
            match get(key) {
                Some("true") | Some("1") => Ok(true),
                Some("false") | Some("0") | None => Ok(false),
                Some(other) => Err(format!(
                    "scenario file key '{key}': '{other}' is not a boolean (true/false/1/0)"
                )),
            }
        };
        let (k, alpha, l) = (num("k")?, num("alpha")?, num("l")?);
        let scenario = Scenario {
            n: num("n")?,
            k,
            alpha,
            l,
            theta: num("theta")?,
            seed: opt_u64("seed")?,
            algorithm: get("algorithm").unwrap().to_string(),
            dynamics: get("dynamics").unwrap().to_string(),
            t: required_phase_length(k, alpha, l),
            budget: num("budget")?,
            loss_ppm: opt_u64("loss_ppm")? as u32,
            crash_ppm: opt_u64("crash_ppm")? as u32,
            crash_at: match get("crash_at") {
                Some(spec) => parse_crash_spec(spec)?,
                None => vec![],
            },
            target_heads: boolean("target_heads")?,
            fault_seed: opt_u64("fault_seed")?,
            retransmit: boolean("retransmit")?,
            durable_tokens: boolean("durable_tokens")?,
            partitions: match get("partitions") {
                Some(spec) => parse_partition_spec(spec)?,
                None => vec![],
            },
            down_rounds: match get("down_rounds") {
                Some(raw) => raw
                    .parse()
                    .map_err(|e| format!("scenario file key 'down_rounds': {e}"))?,
                None => 1,
            },
            delay_ppm: opt_u64("delay_ppm")? as u32,
            max_delay: match get("max_delay") {
                Some(raw) => raw
                    .parse()
                    .map_err(|e| format!("scenario file key 'max_delay': {e}"))?,
                None => 1,
            },
            dup_ppm: opt_u64("dup_ppm")? as u32,
            reorder: boolean("reorder")?,
            reliable: boolean("reliable")?,
            stall_rounds: opt_u64("stall_rounds")? as usize,
            mode: match get("mode") {
                Some(raw) => raw
                    .parse()
                    .map_err(|e| format!("scenario file key 'mode': {e}"))?,
                None => ExecMode::Lockstep,
            },
        };
        scenario.validate()?;
        Ok(ScenarioFile {
            scenario,
            expect: get("expect_outcome").map(str::to_string),
        })
    }

    /// Read and parse a scenario file from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<ScenarioFile, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {}: {e}", path.display()))?;
        ScenarioFile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Render and write a scenario file, creating parent directories on
    /// demand.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, self.render())
            .map_err(|e| format!("cannot write scenario {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_rt::obs::{ObsConfig, ParsedTrace};

    fn small(algorithm: &str, dynamics: &str) -> Scenario {
        let (k, alpha, l) = (3, 2, 2);
        let t = required_phase_length(k, alpha, l);
        Scenario {
            n: 20,
            k,
            alpha,
            l,
            theta: 7,
            seed: 11,
            algorithm: algorithm.into(),
            dynamics: dynamics.into(),
            t,
            budget: 4 * 20 + 4 * t,
            loss_ppm: 0,
            crash_ppm: 0,
            crash_at: vec![],
            target_heads: false,
            fault_seed: 0,
            retransmit: false,
            durable_tokens: false,
            partitions: vec![],
            down_rounds: 1,
            delay_ppm: 0,
            max_delay: 1,
            dup_ppm: 0,
            reorder: false,
            reliable: false,
            stall_rounds: 0,
            mode: ExecMode::Lockstep,
        }
    }

    #[test]
    fn meta_round_trips_through_a_trace() {
        let sc = small("alg1", "hinet");
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        let rebuilt = Scenario::from_meta(&parsed).unwrap();
        assert_eq!(rebuilt, sc);
        // The runner's label rides along, distinct from the CLI name.
        assert_eq!(parsed.meta_get("scenario"), Some("alg1"));
        assert_eq!(parsed.meta_get("algorithm"), Some("alg1-hinet-phased"));
        assert_eq!(parsed.meta_get("token_bytes"), Some("16"));
    }

    #[test]
    fn rlnc_runs_traced_end_to_end() {
        let sc = small("rlnc", "flat-1");
        let mut tracer = Tracer::new(ObsConfig::full());
        let report = sc.run_traced(&mut tracer).unwrap();
        assert!(report.completed());
        assert!(report.rlnc().is_some());
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed.meta_get("algorithm"), Some("rlnc"));
        assert_eq!(
            parsed.counters.packets_sent,
            report.rlnc().unwrap().packets_sent
        );
        assert_eq!(Scenario::from_meta(&parsed).unwrap(), sc);
    }

    #[test]
    fn same_scenario_reruns_identically() {
        let sc = small("klo-flood", "flat-1");
        let run = || {
            let mut tracer = Tracer::new(ObsConfig::full());
            sc.run_traced(&mut tracer).unwrap();
            tracer.to_jsonl()
        };
        assert_eq!(run(), run(), "traces must be byte-identical per seed");
    }

    #[test]
    fn from_meta_rejects_untagged_traces() {
        let mut tracer = Tracer::new(ObsConfig::full());
        tracer.meta("algorithm", "alg1-hinet-phased");
        tracer.run_end(0, true);
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        let err = Scenario::from_meta(&parsed).unwrap_err();
        assert!(err.contains("scenario"), "{err}");
    }

    #[test]
    fn fault_meta_round_trips_and_is_absent_when_default() {
        let mut sc = small("alg2", "hinet");
        sc.loss_ppm = 50_000;
        sc.fault_seed = 3;
        sc.retransmit = true;
        sc.crash_at = vec![(3, 0), (7, 12)];
        sc.delay_ppm = 20_000;
        sc.max_delay = 3;
        sc.dup_ppm = 10_000;
        sc.reorder = true;
        sc.budget = 8 * 20; // loss voids the theorem bounds
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed.meta_get("loss_ppm"), Some("50000"));
        assert_eq!(parsed.meta_get("crash_at"), Some("3:0,7:12"));
        assert_eq!(parsed.meta_get("retransmit"), Some("1"));
        assert_eq!(parsed.meta_get("delay_ppm"), Some("20000"));
        assert_eq!(parsed.meta_get("max_delay"), Some("3"));
        assert_eq!(parsed.meta_get("dup_ppm"), Some("10000"));
        assert_eq!(parsed.meta_get("reorder"), Some("1"));
        let rebuilt = Scenario::from_meta(&parsed).unwrap();
        assert_eq!(rebuilt, sc, "non-default budget must round-trip via meta");

        // Fault-free runs stamp none of the fault keys.
        let sc = small("alg1", "hinet");
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        for key in [
            "loss_ppm",
            "crash_ppm",
            "crash_at",
            "target_heads",
            "fault_seed",
            "retransmit",
            "durable_tokens",
            "partitions",
            "down_rounds",
            "delay_ppm",
            "max_delay",
            "dup_ppm",
            "reorder",
            "reliable",
            "stall_rounds",
            "budget",
        ] {
            assert_eq!(parsed.meta_get(key), None, "{key} must not be stamped");
        }
    }

    #[test]
    fn crash_spec_round_trips_and_rejects_garbage() {
        let spec = "3:0,7:12";
        let parsed = parse_crash_spec(spec).unwrap();
        assert_eq!(parsed, vec![(3, 0), (7, 12)]);
        assert_eq!(crash_spec_string(&parsed), spec);
        assert_eq!(parse_crash_spec("").unwrap(), vec![]);
        assert_eq!(parse_crash_spec(",,").unwrap(), vec![], "empty entries");
        assert_eq!(crash_spec_string(&[]), "");
        // Trailing comma tolerated like the other list specs.
        assert_eq!(parse_crash_spec("3:0,").unwrap(), vec![(3, 0)]);
    }

    #[test]
    fn crash_spec_error_paths_name_the_offender() {
        let no_colon = parse_crash_spec("7").unwrap_err();
        assert!(no_colon.contains("not round:node"), "{no_colon}");
        let bad_round = parse_crash_spec("a:b").unwrap_err();
        assert!(bad_round.contains("round 'a'"), "{bad_round}");
        let bad_node = parse_crash_spec("3:x").unwrap_err();
        assert!(bad_node.contains("node 'x'"), "{bad_node}");
        let negative = parse_crash_spec("3:-1").unwrap_err();
        assert!(negative.contains("node '-1'"), "{negative}");
        let extra = parse_crash_spec("1:2:3");
        // `1:2:3` splits at the first colon: node "2:3" fails to parse.
        assert!(extra.is_err());
    }

    #[test]
    fn crash_spec_rejects_duplicate_pairs() {
        let err = parse_crash_spec("3:0,7:12,3:0").unwrap_err();
        assert!(err.contains("'3:0' is duplicated"), "{err}");
        // Same node at different rounds (and vice versa) is fine.
        assert_eq!(
            parse_crash_spec("3:0,4:0,3:1").unwrap(),
            vec![(3, 0), (4, 0), (3, 1)]
        );
    }

    #[test]
    fn partition_spec_round_trips_and_rejects_garbage() {
        let spec = "0:20:10,30:40:5";
        let parsed = parse_partition_spec(spec).unwrap();
        assert_eq!(
            parsed,
            vec![
                Partition {
                    start: 0,
                    end: 20,
                    cut: 10
                },
                Partition {
                    start: 30,
                    end: 40,
                    cut: 5
                },
            ]
        );
        assert_eq!(partition_spec_string(&parsed), spec);
        assert_eq!(parse_partition_spec("").unwrap(), vec![]);
        assert!(parse_partition_spec("0:20").is_err(), "missing cut");
        assert!(parse_partition_spec("0:20:10:4").is_err(), "extra field");
        assert!(parse_partition_spec("a:20:10").is_err());
    }

    #[test]
    fn validate_rejects_nonsense_combinations() {
        let assert_rejects = |mutate: fn(&mut Scenario), needle: &str| {
            let mut sc = small("alg1", "hinet");
            mutate(&mut sc);
            let err = sc.validate().unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in: {err}");
        };
        assert!(small("alg1", "hinet").validate().is_ok());
        assert_rejects(|sc| sc.k = 0, "--k");
        assert_rejects(|sc| sc.alpha = 0, "--alpha");
        assert_rejects(|sc| sc.theta = 21, "--theta");
        // Feasible θ but an infeasible head/backbone combination: 8 heads
        // with L=3 need 14 gateways, and 8 + 14 > n = 20.
        assert_rejects(
            |sc| {
                sc.theta = 16;
                sc.l = 3;
            },
            "gateway",
        );
        assert_rejects(|sc| sc.budget = 0, "--budget");
        assert_rejects(|sc| sc.crash_at = vec![(3, 99)], "out of range");
        assert_rejects(
            |sc| {
                sc.partitions = vec![Partition {
                    start: 5,
                    end: 5,
                    cut: 3,
                }]
            },
            "empty",
        );
        assert_rejects(
            |sc| {
                sc.partitions = vec![Partition {
                    start: 0,
                    end: 5,
                    cut: 20,
                }]
            },
            "leaves one side empty",
        );
        assert_rejects(|sc| sc.target_heads = true, "--crash-rate");
        assert_rejects(|sc| sc.durable_tokens = true, "--durable-tokens");
        assert_rejects(
            |sc| {
                sc.algorithm = "rlnc".into();
                sc.retransmit = true;
            },
            "--retransmit",
        );
        assert_rejects(|sc| sc.algorithm = "magic".into(), "unknown algorithm");
        assert_rejects(|sc| sc.dynamics = "mystery".into(), "unknown dynamics");
        // Delivery-plane and reliability flag conflicts.
        assert_rejects(|sc| sc.max_delay = 0, "--max-delay");
        assert_rejects(|sc| sc.max_delay = 3, "add --delay");
        assert_rejects(
            |sc| {
                sc.loss_ppm = 50_000;
                sc.reliable = true;
                sc.retransmit = true;
            },
            "pick one",
        );
        assert_rejects(|sc| sc.reliable = true, "add --loss or --delay");
        assert_rejects(|sc| sc.stall_rounds = 8, "--mode event");
        // The valid chaos combinations pass.
        let mut sc = small("alg2", "hinet");
        sc.delay_ppm = 20_000;
        sc.max_delay = 3;
        sc.dup_ppm = 10_000;
        sc.reorder = true;
        sc.reliable = true;
        assert!(sc.validate().is_ok());
        sc.mode = ExecMode::Event;
        sc.stall_rounds = 64;
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn scenario_file_round_trips_minimal_and_fully_loaded() {
        let minimal = ScenarioFile::new(small("alg1", "hinet"));
        let parsed = ScenarioFile::parse(&minimal.render()).unwrap();
        assert_eq!(parsed, minimal);

        let mut sc = small("alg2", "flat-1");
        sc.loss_ppm = 50_000;
        sc.crash_ppm = 1_000;
        sc.crash_at = vec![(3, 0), (7, 12)];
        sc.target_heads = true;
        sc.fault_seed = 9;
        sc.retransmit = true;
        sc.durable_tokens = true;
        sc.partitions = vec![Partition {
            start: 2,
            end: 9,
            cut: 10,
        }];
        sc.down_rounds = 3;
        sc.delay_ppm = 20_000;
        sc.max_delay = 4;
        sc.dup_ppm = 5_000;
        sc.reorder = true;
        sc.budget = 500;
        let full = ScenarioFile {
            scenario: sc,
            expect: Some("stalled (2 tokens undelivered, budget exhausted)".into()),
        };
        let rendered = full.render();
        assert_eq!(ScenarioFile::parse(&rendered).unwrap(), full);
        // Optional keys appear only when non-default.
        assert!(rendered.contains("partitions = 2:9:10"), "{rendered}");
        assert!(!minimal.render().contains("partitions"), "defaults elided");
    }

    #[test]
    fn scenario_file_parser_rejects_malformed_input() {
        let good = ScenarioFile::new(small("alg1", "hinet")).render();
        let expect_err = |text: &str, needle: &str| {
            let err = ScenarioFile::parse(text).unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in: {err}");
        };
        expect_err(&good.replace("schema = hinet-scenario/v1\n", ""), "schema");
        expect_err(&good.replace("n = 20\n", ""), "required key 'n'");
        expect_err(&format!("{good}n = 21\n"), "duplicate key 'n'");
        expect_err(&format!("{good}frobnicate = 1\n"), "unknown key");
        expect_err(&format!("{good}just words\n"), "not 'key = value'");
        expect_err(&good.replace("n = 20", "n = lots"), "key 'n'");
        expect_err(&format!("{good}retransmit = maybe\n"), "not a boolean");
        expect_err(
            &good.replace("hinet-scenario/v1", "hinet-scenario/v9"),
            "is not hinet-scenario/v1",
        );
        // Validation runs on parse: a well-formed file with nonsense
        // parameters is still rejected.
        expect_err(&good.replace("theta = 7", "theta = 99"), "--theta");
    }

    #[test]
    fn scenario_file_saves_and_loads_from_disk() {
        let dir = std::env::temp_dir().join(format!("hinet-scenario-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/case.scenario");
        let file = ScenarioFile::new(small("klo-flood", "flat-1"));
        file.save(&path).unwrap();
        assert_eq!(ScenarioFile::load(&path).unwrap(), file);
        assert!(ScenarioFile::load(dir.join("absent.scenario")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioned_scenario_round_trips_meta_and_reaches_fault_plan() {
        let mut sc = small("alg2", "hinet");
        sc.partitions = vec![Partition {
            start: 1,
            end: 6,
            cut: 10,
        }];
        sc.down_rounds = 2;
        sc.fault_seed = 4;
        let plan = sc.fault_plan();
        assert_eq!(plan.partitions, sc.partitions);
        assert_eq!(plan.down_rounds, 2);
        let mut tracer = Tracer::new(ObsConfig::full());
        sc.run_traced(&mut tracer).unwrap();
        let parsed = ParsedTrace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed.meta_get("partitions"), Some("1:6:10"));
        assert_eq!(parsed.meta_get("down_rounds"), Some("2"));
        assert_eq!(Scenario::from_meta(&parsed).unwrap(), sc);
    }

    #[test]
    fn lossy_scenario_with_retransmit_completes_reproducibly() {
        let mut sc = small("alg2", "hinet");
        sc.loss_ppm = 100_000;
        sc.fault_seed = 1;
        sc.retransmit = true;
        sc.budget = 8 * 20;
        let run = || {
            let mut tracer = Tracer::new(ObsConfig::full());
            let report = sc.run_traced(&mut tracer).unwrap();
            (report.completed(), tracer.to_jsonl())
        };
        let (completed, a) = run();
        assert!(completed, "alg2 + retransmit must heal 10% loss");
        let (_, b) = run();
        assert_eq!(a, b, "same fault seed, same trace bytes");
    }

    #[test]
    fn chaotic_scenario_with_reliable_layer_completes_reproducibly() {
        let mut sc = small("klo-flood", "flat-1");
        sc.loss_ppm = 50_000;
        sc.delay_ppm = 30_000;
        sc.max_delay = 3;
        sc.dup_ppm = 20_000;
        sc.reorder = true;
        sc.reliable = true;
        sc.fault_seed = 7;
        sc.budget = 8 * 20;
        let run = || {
            let mut tracer = Tracer::new(ObsConfig::full());
            let report = sc.run_traced(&mut tracer).unwrap();
            (report.completed(), tracer.to_jsonl())
        };
        let (completed, a) = run();
        assert!(completed, "reliable layer must heal loss + delay + dup");
        let (_, b) = run();
        assert_eq!(a, b, "same fault seed, same trace bytes");
        let parsed = ParsedTrace::parse_jsonl(&a).unwrap();
        assert_eq!(Scenario::from_meta(&parsed).unwrap(), sc);
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(small("magic", "hinet").kind().is_err());
        let sc = small("alg1", "mystery");
        assert!(sc.provider(&sc.kind().unwrap()).is_err());
        assert!(small("rlnc", "mystery").rlnc_provider().is_err());
    }
}
