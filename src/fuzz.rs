//! Seeded adversarial scenario fuzzer with auto-shrinking regression
//! corpus (`hinet fuzz`).
//!
//! The golden-trace gate pins *known* scenarios; this module hunts for
//! unknown ones. Starting from a base [`Scenario`], [`fuzz`] applies
//! seeded mutations — node count, `(k, α, L, θ)` parameters, fault rates,
//! crash schedules, partition windows, head targeting, round budget,
//! delivery pathologies (delay, duplication, reorder) and the generalised
//! reliability layer —
//! executes each mutant through the ordinary [`Scenario::run_traced`]
//! path, and classifies the result against a bound oracle
//! ([`analytic_bound`]: the paper's Theorem 1–4 round counts) plus the
//! engine's structured [`Outcome`]:
//!
//! * [`Class::Completed`] — done within the analytic bound (or no bound
//!   applies).
//! * [`Class::BoundExceeded`] — completed, but later than the theorem
//!   for an assumption-satisfying fault-free scenario allows.
//! * [`Class::Stalled`] — incomplete with no fault ever injected.
//! * [`Class::AssumptionViolated`] — incomplete after the fault plane
//!   broke a paper assumption (def 1 delivery / def 2 backbone).
//!
//! Every offender (anything not `Completed`) is auto-shrunk by greedy
//! per-field minimisation toward the base scenario ([`shrink`]) while
//! preserving its classification, then archived as a replayable
//! [`ScenarioFile`] carrying an `expect_outcome` stamp. The archived
//! corpus (`tests/corpus/`, next to `tests/golden/`) is replayed by
//! [`replay_corpus`] — the ci.sh corpus gate — which requires every
//! recorded classification to reproduce verbatim.
//!
//! Everything is deterministic in the fuzz seed: mutation draws come from
//! the in-tree [`Xoshiro256StarStar`] stream, scenario execution is
//! deterministic by construction, and the shrinker is a pure function of
//! (offender, base). The same `hinet fuzz --seed S` finds, shrinks and
//! archives byte-identical offenders on every machine.

use crate::scenario::{Scenario, ScenarioFile, ScenarioReport, RETRANSMIT_ALGORITHMS};
use hinet_core::params::{alg1_plan, alg2_rounds_1interval, klo_plan, remark1_phases};
use hinet_rt::obs::{ObsConfig, Tracer};
use hinet_rt::rng::{mix, Rng, SliceRandom, Xoshiro256StarStar};
use hinet_sim::engine::Outcome;
use hinet_sim::fault::Partition;
use std::fmt;
use std::path::{Path, PathBuf};

/// Outcome classification of one scenario execution. The `Display` form
/// is what `expect_outcome` records in archived scenario files; replay
/// compares it byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Class {
    /// Completed within the analytic bound (or no bound applies).
    Completed {
        /// 1-based completion round.
        round: usize,
    },
    /// Completed, but needed more rounds than the paper's bound for this
    /// (algorithm, dynamics) pair allows. Only reported for fault-free
    /// scenarios on the assumption-satisfying dynamics (see
    /// [`analytic_bound`]).
    BoundExceeded {
        /// 1-based completion round.
        round: usize,
        /// The analytic bound it exceeded.
        bound: usize,
    },
    /// Incomplete with no fault ever injected.
    Stalled {
        /// Whether the round budget ended the run (`false`: every
        /// protocol went quiescent first).
        budget_exhausted: bool,
    },
    /// Incomplete after injected faults broke a paper assumption.
    AssumptionViolated {
        /// `1` = per-round delivery (loss only), `2` = backbone
        /// stability (crashes or partitions fired).
        def: u8,
    },
}

impl Class {
    /// Short kind tag (`completed`, `bound-exceeded`, `stalled`,
    /// `assumption-violated`) — used for corpus file names.
    pub fn kind(&self) -> &'static str {
        match self {
            Class::Completed { .. } => "completed",
            Class::BoundExceeded { .. } => "bound-exceeded",
            Class::Stalled { .. } => "stalled",
            Class::AssumptionViolated { .. } => "assumption-violated",
        }
    }

    /// Whether this classification makes the scenario an offender worth
    /// shrinking and archiving.
    pub fn is_offender(&self) -> bool {
        !matches!(self, Class::Completed { .. })
    }

    /// The invariant the shrinker preserves: the kind plus its
    /// qualitative parameters (violated definition, stall mode) — but not
    /// quantitative ones like the completion round, which legitimately
    /// move while shrinking.
    pub fn shrink_key(&self) -> String {
        match self {
            Class::Completed { .. } => "completed".into(),
            Class::BoundExceeded { .. } => "bound-exceeded".into(),
            Class::Stalled { budget_exhausted } => format!("stalled:{budget_exhausted}"),
            Class::AssumptionViolated { def } => format!("assumption-violated:{def}"),
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::Completed { round } => write!(f, "completed (round {round})"),
            Class::BoundExceeded { round, bound } => {
                write!(f, "bound-exceeded (round {round}, bound {bound})")
            }
            Class::Stalled { budget_exhausted } => write!(
                f,
                "stalled ({})",
                if *budget_exhausted {
                    "budget exhausted"
                } else {
                    "quiescent"
                }
            ),
            Class::AssumptionViolated { def } => write!(f, "assumption-violated (def {def})"),
        }
    }
}

/// The paper's analytic round bound for a scenario, when one applies: the
/// scenario must be fault-free (bounds assume perfect delivery and a
/// stable backbone) and pair the algorithm with the dynamics model that
/// satisfies its connectivity assumption.
///
/// * `alg1` / `remark1` on `hinet` — Theorem 1 / Remark 1: `M·T` rounds.
/// * `alg2` / `alg2-mh` on `hinet` — Theorem 2: `n − 1` rounds.
/// * `klo-phased` on `flat-t` — the Table 2 charge: `⌈n/(αL)⌉·T` rounds.
/// * `klo-flood` on `flat-1` — 1-interval flooding: `n − 1` rounds.
pub fn analytic_bound(sc: &Scenario) -> Option<usize> {
    if !sc.fault_plan().is_trivial() {
        return None;
    }
    match (sc.algorithm.as_str(), sc.dynamics.as_str()) {
        ("alg1", "hinet") => Some(alg1_plan(sc.k, sc.alpha, sc.l, sc.theta).total_rounds()),
        ("remark1", "hinet") => Some(sc.t * remark1_phases(sc.theta, sc.alpha)),
        ("alg2", "hinet") | ("alg2-mh", "hinet") => Some(alg2_rounds_1interval(sc.n)),
        ("klo-phased", "flat-t") => Some(klo_plan(sc.k, sc.alpha, sc.l, sc.n).total_rounds()),
        ("klo-flood", "flat-1") => Some(alg2_rounds_1interval(sc.n)),
        _ => None,
    }
}

/// Execute a scenario and classify the result (see [`Class`]). Runs with
/// a heavily sampled tracer: counters stay exact (the RLNC path needs the
/// fault counters) while the event ring stays tiny.
pub fn classify(sc: &Scenario) -> Result<Class, String> {
    let mut tracer = Tracer::new(ObsConfig::sampled(1 << 20));
    let report = sc.run_traced(&mut tracer)?;
    let completed = |round: usize| match analytic_bound(sc) {
        Some(bound) if round > bound => Class::BoundExceeded { round, bound },
        _ => Class::Completed { round },
    };
    Ok(match &report {
        ScenarioReport::Engine(r) => match r.outcome {
            Outcome::Completed { round } => completed(round),
            Outcome::Stalled {
                budget_exhausted, ..
            } => Class::Stalled { budget_exhausted },
            Outcome::AssumptionViolated { def, .. } => Class::AssumptionViolated { def },
        },
        ScenarioReport::Rlnc(r) => match r.completion_round {
            Some(round) => completed(round),
            None => {
                let c = tracer.counters();
                if c.faults_injected == 0 && c.crashes == 0 {
                    // RLNC keeps transmitting until the budget ends, so an
                    // unfaulted incomplete run is always budget-bound.
                    Class::Stalled {
                        budget_exhausted: true,
                    }
                } else {
                    let backbone = c.crashes > 0
                        || sc
                            .partitions
                            .iter()
                            .any(|p| p.start < r.rounds_executed && p.end > 0);
                    Class::AssumptionViolated {
                        def: if backbone { 2 } else { 1 },
                    }
                }
            }
        },
    })
}

/// Fuzzer configuration; see [`fuzz`].
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seed of the mutation stream. The whole campaign is deterministic
    /// in this value (and the base scenario).
    pub seed: u64,
    /// How many mutated scenarios to execute.
    pub cases: usize,
    /// The scenario mutations start from; also the shrink target.
    pub base: Scenario,
    /// Archive directory for shrunk offenders (`None`: classify and
    /// shrink but write nothing).
    pub archive_dir: Option<PathBuf>,
    /// Stop shrinking/archiving after this many distinct offenders
    /// (classification tallies still cover all cases).
    pub max_offenders: usize,
}

impl FuzzConfig {
    /// A small, fast base scenario tuned for fuzzing: `alg1` on `hinet`
    /// with `n=20`, `k=3`, `α=2`, `L=2`, `θ=7`, completing in well under
    /// a hundred rounds so thousands of mutants stay cheap.
    pub fn default_base() -> Scenario {
        let (n, k, alpha, l) = (20, 3, 2, 2);
        let t = hinet_core::params::required_phase_length(k, alpha, l);
        Scenario {
            n,
            k,
            alpha,
            l,
            theta: 7,
            seed: 42,
            t,
            budget: 4 * n + 4 * t,
            ..Scenario::defaults()
        }
    }
}

/// One shrunk, classified offender from a fuzz campaign.
#[derive(Clone, Debug)]
pub struct Offender {
    /// Zero-based index of the case that found it.
    pub case: usize,
    /// The shrunk scenario.
    pub scenario: Scenario,
    /// Classification of the shrunk scenario (re-verified after
    /// shrinking).
    pub class: Class,
    /// Accepted shrink steps between the found mutant and the archived
    /// minimum.
    pub shrink_steps: usize,
    /// Where it was archived, when an archive directory was configured.
    pub path: Option<PathBuf>,
    /// Whether this run wrote the file (`false`: an identical offender
    /// was already archived).
    pub newly_archived: bool,
}

/// Summary of a fuzz campaign; render with [`FuzzReport::to_text`].
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases classified `Completed`.
    pub completed: usize,
    /// Cases classified `BoundExceeded`.
    pub bound_exceeded: usize,
    /// Cases classified `Stalled`.
    pub stalled: usize,
    /// Cases classified `AssumptionViolated`.
    pub violated: usize,
    /// Shrunk offenders, in discovery order (deduplicated by shrunk
    /// scenario, capped at [`FuzzConfig::max_offenders`]).
    pub offenders: Vec<Offender>,
}

impl FuzzReport {
    /// Human-readable campaign summary (deterministic: no timing, no
    /// absolute paths beyond the configured archive directory).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "classified {} cases: {} completed, {} bound-exceeded, {} stalled, \
             {} assumption-violated\n",
            self.cases, self.completed, self.bound_exceeded, self.stalled, self.violated
        );
        if self.offenders.is_empty() {
            out.push_str("no offenders found\n");
        }
        for o in &self.offenders {
            let sc = &o.scenario;
            out.push_str(&format!(
                "offender (case {}): {} — {} on {} n={} k={} α={} L={} θ={} seed={} \
                 [shrunk in {} steps]\n",
                o.case,
                o.class,
                sc.algorithm,
                sc.dynamics,
                sc.n,
                sc.k,
                sc.alpha,
                sc.l,
                sc.theta,
                sc.seed,
                o.shrink_steps,
            ));
            if let Some(path) = &o.path {
                out.push_str(&format!(
                    "  archived: {} ({})\n",
                    path.display(),
                    if o.newly_archived {
                        "new"
                    } else {
                        "already known"
                    }
                ));
            }
        }
        out
    }
}

/// FNV-1a over the rendered scenario — the stable fingerprint in corpus
/// file names.
fn fingerprint(text: &str) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Run a seeded fuzz campaign (see the module docs). Deterministic in
/// `cfg`: the same configuration produces the same report, the same
/// shrunk offenders and the same archive file names on every run.
pub fn fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    cfg.base.validate()?;
    let mut rng = Xoshiro256StarStar::seed_from_u64(mix(cfg.seed, 0x4655_5a5a)); // "FUZZ"
    let mut report = FuzzReport {
        cases: cfg.cases,
        ..FuzzReport::default()
    };
    let mut seen: Vec<String> = Vec::new();
    for case in 0..cfg.cases {
        let mutant = mutate(&cfg.base, &mut rng);
        let class = classify(&mutant)?;
        match class {
            Class::Completed { .. } => report.completed += 1,
            Class::BoundExceeded { .. } => report.bound_exceeded += 1,
            Class::Stalled { .. } => report.stalled += 1,
            Class::AssumptionViolated { .. } => report.violated += 1,
        }
        if !class.is_offender() || report.offenders.len() >= cfg.max_offenders {
            continue;
        }
        let (shrunk, shrink_steps) = shrink(&mutant, &cfg.base, &class.shrink_key())?;
        let class = classify(&shrunk)?;
        let file = ScenarioFile {
            scenario: shrunk.clone(),
            expect: Some(class.to_string()),
        };
        let rendered = file.render();
        if seen.contains(&rendered) {
            continue;
        }
        seen.push(rendered.clone());
        let mut offender = Offender {
            case,
            scenario: shrunk,
            class: class.clone(),
            shrink_steps,
            path: None,
            newly_archived: false,
        };
        if let Some(dir) = &cfg.archive_dir {
            let name = format!("{}-{:08x}.scenario", class.kind(), fingerprint(&rendered));
            let path = dir.join(name);
            if !path.exists() {
                file.save(&path)?;
                offender.newly_archived = true;
            }
            offender.path = Some(path);
        }
        report.offenders.push(offender);
    }
    Ok(report)
}

/// Fault-rate menus the mutator draws from (0 re-enters the fault-free
/// regime so mutation can also *remove* faults).
const LOSS_MENU: &[u32] = &[0, 20_000, 50_000, 100_000, 250_000, 500_000];
const CRASH_MENU: &[u32] = &[0, 5_000, 20_000, 100_000];
const DELAY_MENU: &[u32] = &[0, 20_000, 50_000, 150_000];
const DUP_MENU: &[u32] = &[0, 10_000, 50_000, 150_000];

/// Scheduled faults (crash rounds, partition starts) are drawn from this
/// many opening rounds so they land while the run is still in flight —
/// healthy scenarios complete in well under this many rounds, so a
/// uniform draw over the whole budget would mostly schedule no-ops.
const EARLY_ROUNDS: usize = 12;

/// Apply 1–3 seeded mutation operators to a copy of `base`, retrying
/// (deterministically) until the mutant validates. Falls back to the base
/// itself if 64 attempts all produce invalid combinations.
pub fn mutate(base: &Scenario, rng: &mut Xoshiro256StarStar) -> Scenario {
    for _ in 0..64 {
        let mut sc = base.clone();
        for _ in 0..1 + rng.random_range(0usize..3) {
            mutate_op(&mut sc, rng);
        }
        normalise(&mut sc);
        if sc.validate().is_ok() {
            return sc;
        }
    }
    base.clone()
}

/// One mutation operator, chosen and parameterised by the seeded stream.
fn mutate_op(sc: &mut Scenario, rng: &mut Xoshiro256StarStar) {
    match rng.random_range(0usize..21) {
        0 => sc.n = rng.random_range(8usize..=40),
        1 => sc.k = rng.random_range(1usize..=6),
        2 => sc.alpha = rng.random_range(1usize..=4),
        3 => sc.l = rng.random_range(1usize..=3),
        4 => sc.theta = rng.random_range(1usize..=sc.n),
        5 => sc.seed = rng.random_range(0u64..1024),
        6 => sc.fault_seed = rng.random_range(0u64..1024),
        7 => sc.loss_ppm = *LOSS_MENU.choose(rng).unwrap(),
        8 => sc.crash_ppm = *CRASH_MENU.choose(rng).unwrap(),
        9 => {
            let entry = (
                rng.random_range(0usize..sc.budget.min(EARLY_ROUNDS)),
                rng.random_range(0usize..sc.n),
            );
            if !sc.crash_at.contains(&entry) {
                sc.crash_at.push(entry);
            }
        }
        10 => {
            let start = rng.random_range(0usize..sc.budget.min(EARLY_ROUNDS));
            let len = rng.random_range(1usize..=sc.budget);
            sc.partitions.push(Partition {
                start,
                end: start + len,
                cut: rng.random_range(1usize..sc.n),
            });
        }
        11 => {
            sc.target_heads = !sc.target_heads;
            if sc.target_heads && sc.crash_ppm == 0 {
                sc.crash_ppm = 5_000;
            }
        }
        12 => {
            if RETRANSMIT_ALGORITHMS.contains(&sc.algorithm.as_str()) {
                sc.retransmit = !sc.retransmit;
            }
        }
        13 => {
            sc.durable_tokens = !sc.durable_tokens;
            if sc.durable_tokens && sc.crash_ppm == 0 && sc.crash_at.is_empty() {
                sc.crash_ppm = 5_000;
            }
        }
        14 => sc.down_rounds = rng.random_range(1usize..=4),
        15 => sc.budget = rng.random_range(2usize..=4 * sc.n + 4 * sc.t),
        16 => {
            sc.delay_ppm = *DELAY_MENU.choose(rng).unwrap();
            if sc.delay_ppm > 0 && sc.max_delay == 1 {
                sc.max_delay = rng.random_range(1usize..=4);
            }
        }
        17 => {
            sc.max_delay = rng.random_range(1usize..=4);
            if sc.max_delay > 1 && sc.delay_ppm == 0 {
                sc.delay_ppm = 20_000;
            }
        }
        18 => sc.dup_ppm = *DUP_MENU.choose(rng).unwrap(),
        19 => sc.reorder = !sc.reorder,
        _ => {
            sc.reliable = !sc.reliable;
            if sc.reliable && sc.loss_ppm == 0 && sc.delay_ppm == 0 {
                sc.loss_ppm = 20_000;
            }
        }
    }
}

/// Restore the derived invariants a mutation may have broken: recompute
/// `T`, clamp θ into `1..=n`, and drop fault entries that fell outside
/// the (possibly shrunk) node range.
fn normalise(sc: &mut Scenario) {
    sc.t = hinet_core::params::required_phase_length(sc.k, sc.alpha, sc.l);
    sc.theta = sc.theta.clamp(1, sc.n);
    let n = sc.n;
    sc.crash_at.retain(|&(_, node)| node < n);
    sc.partitions.retain(|p| p.cut >= 1 && p.cut < n);
    sc.budget = sc.budget.max(1);
    sc.max_delay = sc.max_delay.max(1);
    if sc.delay_ppm == 0 {
        sc.max_delay = 1;
    }
    if sc.reliable {
        // The generalised layer supersedes the HiNet-only ARQ wrapper and
        // needs a pathology to recover from.
        sc.retransmit = false;
        if sc.loss_ppm == 0 && sc.delay_ppm == 0 {
            sc.reliable = false;
        }
    }
}

/// Greedily minimise an offending scenario toward `base` while preserving
/// its [`Class::shrink_key`]. Each accepted step strictly reduces the
/// distance to the base (numeric fields move to the base value or the
/// midpoint, schedule entries are dropped, partition windows narrow,
/// booleans reset), so the loop terminates; the result is a local minimum:
/// no single remaining step keeps the classification.
pub fn shrink(found: &Scenario, base: &Scenario, key: &str) -> Result<(Scenario, usize), String> {
    let mut cur = found.clone();
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for cand in shrink_candidates(&cur, base) {
            if cand == cur || cand.validate().is_err() {
                continue;
            }
            if classify(&cand)?.shrink_key() == key {
                cur = cand;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Ok((cur, steps));
        }
    }
}

/// Candidate single-step reductions of `cur` toward `base`, in a fixed
/// deterministic order. Every candidate is strictly closer to the base
/// than `cur` under the sum-of-field-distances metric.
fn shrink_candidates(cur: &Scenario, base: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |cand: Scenario| out.push(cand);

    // Numeric fields: jump to the base value, then try the midpoint.
    macro_rules! numeric {
        ($field:ident, $ty:ty) => {
            if cur.$field != base.$field {
                let mut to_base = cur.clone();
                to_base.$field = base.$field;
                normalise(&mut to_base);
                push(to_base);
                let mid = midpoint(cur.$field as u64, base.$field as u64) as $ty;
                if mid != cur.$field && mid != base.$field {
                    let mut to_mid = cur.clone();
                    to_mid.$field = mid;
                    normalise(&mut to_mid);
                    push(to_mid);
                }
            }
        };
    }
    numeric!(n, usize);
    numeric!(k, usize);
    numeric!(alpha, usize);
    numeric!(l, usize);
    numeric!(theta, usize);
    numeric!(seed, u64);
    numeric!(fault_seed, u64);
    numeric!(loss_ppm, u32);
    numeric!(crash_ppm, u32);
    numeric!(down_rounds, usize);
    numeric!(delay_ppm, u32);
    numeric!(max_delay, usize);
    numeric!(dup_ppm, u32);
    numeric!(budget, usize);

    // Schedules: drop one entry at a time.
    for i in 0..cur.crash_at.len() {
        let mut cand = cur.clone();
        cand.crash_at.remove(i);
        push(cand);
    }
    for i in 0..cur.partitions.len() {
        let mut cand = cur.clone();
        cand.partitions.remove(i);
        push(cand);
        // Or keep it but halve the window.
        let p = cur.partitions[i];
        let span = p.end - p.start;
        if span > 1 {
            let mut cand = cur.clone();
            cand.partitions[i].end = p.start + span / 2;
            push(cand);
        }
    }

    // Booleans: reset to the base value.
    for reset in [
        |sc: &mut Scenario, b: &Scenario| sc.target_heads = b.target_heads,
        |sc: &mut Scenario, b: &Scenario| sc.retransmit = b.retransmit,
        |sc: &mut Scenario, b: &Scenario| sc.durable_tokens = b.durable_tokens,
        |sc: &mut Scenario, b: &Scenario| sc.reorder = b.reorder,
        |sc: &mut Scenario, b: &Scenario| sc.reliable = b.reliable,
    ] {
        let mut cand = cur.clone();
        reset(&mut cand, base);
        if cand != *cur {
            push(cand);
        }
    }
    out
}

/// Midpoint between two values, rounding toward `b`.
fn midpoint(a: u64, b: u64) -> u64 {
    if a > b {
        b + (a - b) / 2
    } else {
        a + (b - a).div_ceil(2)
    }
}

/// One corpus file's replay verdict; see [`replay_corpus`].
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The scenario file.
    pub path: PathBuf,
    /// Its recorded `expect_outcome`.
    pub expected: String,
    /// The classification a fresh run produced.
    pub actual: String,
}

impl ReplayOutcome {
    /// Whether the recorded classification reproduced verbatim.
    pub fn ok(&self) -> bool {
        self.expected == self.actual
    }
}

/// Replay an archived scenario file — or every `.scenario` file under a
/// directory, in name order — and compare each fresh classification
/// against the recorded `expect_outcome`. Files without the stamp, and
/// empty directories, are errors: a corpus that silently checks nothing
/// must not pass a CI gate.
pub fn replay_corpus(path: &Path) -> Result<Vec<ReplayOutcome>, String> {
    let mut files: Vec<PathBuf> = if path.is_dir() {
        std::fs::read_dir(path)
            .map_err(|e| format!("cannot read corpus dir {}: {e}", path.display()))?
            .map(|entry| entry.map(|e| e.path()))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("cannot read corpus dir {}: {e}", path.display()))?
            .into_iter()
            .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
            .collect()
    } else {
        vec![path.to_path_buf()]
    };
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no .scenario files under {} — nothing to replay",
            path.display()
        ));
    }
    files
        .into_iter()
        .map(|path| {
            let file = ScenarioFile::load(&path)?;
            let expected = file.expect.ok_or_else(|| {
                format!(
                    "{} has no expect_outcome stamp — re-archive it with hinet fuzz",
                    path.display()
                )
            })?;
            let actual = classify(&file.scenario)?.to_string();
            Ok(ReplayOutcome {
                path,
                expected,
                actual,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_base_completes_within_its_bound() {
        let base = FuzzConfig::default_base();
        base.validate().unwrap();
        let class = classify(&base).unwrap();
        assert!(
            matches!(class, Class::Completed { .. }),
            "fuzz base must be healthy, got {class}"
        );
        assert!(analytic_bound(&base).is_some());
    }

    #[test]
    fn bound_oracle_matches_paper_formulas_and_gates_on_faults() {
        let base = FuzzConfig::default_base();
        assert_eq!(
            analytic_bound(&base),
            Some(alg1_plan(base.k, base.alpha, base.l, base.theta).total_rounds())
        );
        let mut alg2 = base.clone();
        alg2.algorithm = "alg2".into();
        assert_eq!(analytic_bound(&alg2), Some(base.n - 1));
        // Faults void the theorems; mismatched dynamics have no bound.
        let mut lossy = base.clone();
        lossy.loss_ppm = 10_000;
        assert_eq!(analytic_bound(&lossy), None);
        let mut mismatched = base.clone();
        mismatched.dynamics = "emdg".into();
        assert_eq!(analytic_bound(&mismatched), None);
    }

    #[test]
    fn classify_detects_stalls_and_violations() {
        // Starved budget, no faults: a stall.
        let mut starved = FuzzConfig::default_base();
        starved.budget = 2;
        assert_eq!(
            classify(&starved).unwrap(),
            Class::Stalled {
                budget_exhausted: true
            }
        );
        // A full-run partition on the full-exchange algorithm: a def-2
        // assumption violation.
        let mut cut = FuzzConfig::default_base();
        cut.algorithm = "alg2".into();
        cut.partitions = vec![Partition {
            start: 0,
            end: cut.budget,
            cut: 10,
        }];
        assert_eq!(
            classify(&cut).unwrap(),
            Class::AssumptionViolated { def: 2 }
        );
    }

    #[test]
    fn shrink_preserves_class_and_moves_toward_base() {
        let base = FuzzConfig::default_base();
        let mut offender = base.clone();
        offender.algorithm = "alg2".into();
        offender.n = 37;
        offender.seed = 900;
        offender.fault_seed = 321;
        offender.loss_ppm = 250_000;
        offender.partitions = vec![Partition {
            start: 0,
            end: offender.budget,
            cut: 18,
        }];
        let key = classify(&offender).unwrap().shrink_key();
        assert_eq!(key, "assumption-violated:2");
        let (shrunk, steps) = shrink(&offender, &base, &key).unwrap();
        assert!(steps > 0, "an inflated offender must shrink");
        assert_eq!(classify(&shrunk).unwrap().shrink_key(), key);
        // Every numeric field is no farther from the base than it started.
        assert!(shrunk.n.abs_diff(base.n) <= offender.n.abs_diff(base.n));
        assert!(shrunk.seed.abs_diff(base.seed) <= offender.seed.abs_diff(base.seed));
        assert!(shrunk.loss_ppm <= offender.loss_ppm);
        assert!(shrunk.partitions.len() <= offender.partitions.len());
    }

    #[test]
    fn fuzz_is_deterministic_and_finds_offenders() {
        let cfg = FuzzConfig {
            seed: 1,
            cases: 15,
            base: FuzzConfig::default_base(),
            archive_dir: None,
            max_offenders: 4,
        };
        let a = fuzz(&cfg).unwrap();
        let b = fuzz(&cfg).unwrap();
        assert_eq!(a.to_text(), b.to_text(), "same seed, same campaign");
        assert_eq!(
            a.cases,
            a.completed + a.bound_exceeded + a.stalled + a.violated
        );
        assert!(
            !a.offenders.is_empty(),
            "seed 1 must surface at least one offender:\n{}",
            a.to_text()
        );
        for o in &a.offenders {
            assert!(o.class.is_offender());
            assert_eq!(
                classify(&o.scenario).unwrap(),
                o.class,
                "archived classification must reproduce"
            );
        }
    }

    #[test]
    fn archive_and_replay_round_trip() {
        let dir = std::env::temp_dir().join(format!("hinet-fuzz-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FuzzConfig {
            seed: 1,
            cases: 15,
            base: FuzzConfig::default_base(),
            archive_dir: Some(dir.clone()),
            max_offenders: 4,
        };
        let report = fuzz(&cfg).unwrap();
        let archived: Vec<_> = report
            .offenders
            .iter()
            .filter(|o| o.newly_archived)
            .collect();
        assert!(!archived.is_empty(), "offenders must be archived");
        // Every archived file replays to its recorded classification.
        for outcome in replay_corpus(&dir).unwrap() {
            assert!(
                outcome.ok(),
                "{}: expected '{}', got '{}'",
                outcome.path.display(),
                outcome.expected,
                outcome.actual
            );
        }
        // A second campaign re-finds the same offenders without rewriting.
        let again = fuzz(&cfg).unwrap();
        assert!(again.offenders.iter().all(|o| !o.newly_archived));
        // Tampering with the expectation makes replay fail loudly.
        let victim = report.offenders[0].path.clone().unwrap();
        let mut file = ScenarioFile::load(&victim).unwrap();
        file.expect = Some("completed (round 1)".into());
        file.save(&victim).unwrap();
        assert!(replay_corpus(&dir).unwrap().iter().any(|r| !r.ok()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(replay_corpus(&dir).is_err(), "missing corpus is an error");
    }
}
