//! # hinet — hierarchical information dissemination in dynamic networks
//!
//! Facade crate re-exporting the whole workspace: the graph substrate, the
//! cluster hierarchy, the round simulator, the dissemination algorithms and
//! the experiment harness. See the README for a tour and `examples/` for
//! runnable entry points.

pub mod fuzz;
pub mod scenario;

pub use hinet_analysis as analysis;
pub use hinet_bench as bench;
pub use hinet_cluster as cluster;
pub use hinet_core as core;
pub use hinet_graph as graph;
pub use hinet_rt as rt;
pub use hinet_sim as sim;
