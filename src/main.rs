//! `hinet` — command-line front end for the reproduction.
//!
//! ```text
//! hinet tables [--analytic-only]      reproduce Tables 2 & 3 (+ simulated E3)
//! hinet experiments [E3 E13 ...]      run experiments (default: all)
//! hinet export [DIR]                  write all experiment tables as md/csv
//! hinet run [options]                 one simulation, report costs
//! hinet audit [options]               stability report for a dynamics trace
//! hinet bench [options]               timing benchmarks (see `hinet bench --help`)
//! hinet help                          this text
//! ```
//!
//! `hinet run` options (all optional):
//!
//! ```text
//! --algorithm NAME   alg1 | remark1 | alg2 | alg2-mh | klo-phased |
//!                    klo-flood | gossip | kactive | delta | rlnc   [alg1]
//! --dynamics NAME    hinet | flat-t | flat-1 | waypoint | manhattan |
//!                    emdg                                          [hinet]
//! --n N              nodes                                         [100]
//! --k K              tokens                                        [8]
//! --alpha A          progress coefficient                          [5]
//! --l L              hop bound                                     [2]
//! --theta TH         head-capable pool                             [n/3]
//! --seed S           RNG seed                                      [42]
//! ```
//!
//! Each command declares its flags in a [`FlagSpec`] table; unknown flags
//! and malformed values are rejected with exit code 2 rather than silently
//! ignored.

use hinet::analysis::experiments::all_experiments;
use hinet::cluster::clustering::ClusteringKind;
use hinet::cluster::ctvg::{FlatProvider, HierarchyProvider};
use hinet::cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet::core::params::{alg1_plan, klo_plan, remark1_phases, required_phase_length, PhasePlan};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet::sim::engine::RunConfig;
use hinet::sim::token::round_robin_assignment;
use hinet_rt::flags::{flag, parse_flags, FlagSet, FlagSpec};
use std::process::ExitCode;

const HELP: &str = "hinet — (T, L)-HiNet dissemination reproduction

USAGE:
  hinet tables [--analytic-only]    reproduce Tables 2 & 3 (+ simulated E3)
  hinet experiments [E3 E13 ...]    run experiments (default: all 16)
  hinet export [DIR]                write experiment tables as md/csv
  hinet run [--algorithm A] [--dynamics D] [--n N] [--k K]
            [--alpha A] [--l L] [--theta TH] [--seed S]
  hinet audit [--dynamics D] [--n N] [--rounds R] [--seed S]
  hinet bench [--filter S] [--json] [--baseline FILE] ...  (see bench --help)
  hinet help

run algorithms: alg1 remark1 alg2 alg2-mh klo-phased klo-flood gossip
                kactive delta rlnc
run dynamics:   hinet flat-t flat-1 waypoint manhattan emdg";

const TABLES_FLAGS: &[FlagSpec] = &[flag(
    "analytic-only",
    false,
    "skip the simulated Table 3 (E3)",
)];

const RUN_FLAGS: &[FlagSpec] = &[
    flag("algorithm", true, "algorithm to run [alg1]"),
    flag("dynamics", true, "dynamics model [hinet]"),
    flag("n", true, "nodes [100]"),
    flag("k", true, "tokens [8]"),
    flag("alpha", true, "progress coefficient [5]"),
    flag("l", true, "hop bound [2]"),
    flag("theta", true, "head-capable pool [n/3]"),
    flag("seed", true, "RNG seed [42]"),
];

const AUDIT_FLAGS: &[FlagSpec] = &[
    flag("dynamics", true, "dynamics model [hinet]"),
    flag("n", true, "nodes [60]"),
    flag("rounds", true, "trace length [36]"),
    flag("seed", true, "RNG seed [42]"),
];

const NO_FLAGS: &[FlagSpec] = &[];

/// A parsed top-level command, with its validated flags.
enum Command {
    Tables {
        analytic_only: bool,
    },
    Experiments {
        wanted: Vec<String>,
    },
    Export {
        dir: Option<String>,
    },
    Run(FlagSet),
    Audit(FlagSet),
    /// Raw args, forwarded to `hinet_bench::cli` (which owns the flag table).
    Bench(Vec<String>),
    Help,
}

impl Command {
    /// Parse `argv[1..]`. `Err` is a usage message (exit 2).
    fn parse(args: &[String]) -> Result<Command, String> {
        let Some(command) = args.first() else {
            return Ok(Command::Help);
        };
        let rest = &args[1..];
        match command.as_str() {
            "tables" => {
                let (pos, flags) = parse_flags(TABLES_FLAGS, rest)?;
                reject_positionals("tables", &pos)?;
                Ok(Command::Tables {
                    analytic_only: flags.has("analytic-only"),
                })
            }
            "experiments" => {
                let (pos, _) = parse_flags(NO_FLAGS, rest)?;
                Ok(Command::Experiments { wanted: pos })
            }
            "export" => {
                let (pos, _) = parse_flags(NO_FLAGS, rest)?;
                if pos.len() > 1 {
                    return Err(format!("export takes one DIR, got {}", pos.len()));
                }
                Ok(Command::Export {
                    dir: pos.first().cloned(),
                })
            }
            "run" => {
                let (pos, flags) = parse_flags(RUN_FLAGS, rest)?;
                reject_positionals("run", &pos)?;
                Ok(Command::Run(flags))
            }
            "audit" => {
                let (pos, flags) = parse_flags(AUDIT_FLAGS, rest)?;
                reject_positionals("audit", &pos)?;
                Ok(Command::Audit(flags))
            }
            "bench" => Ok(Command::Bench(rest.to_vec())),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn reject_positionals(cmd: &str, pos: &[String]) -> Result<(), String> {
    match pos.first() {
        Some(extra) => Err(format!(
            "{cmd} takes no positional arguments, got '{extra}'"
        )),
        None => Ok(()),
    }
}

fn cmd_tables(analytic_only: bool) {
    use hinet::analysis::experiments::{e1_table2, e2_table3, e3_simulated_table3};
    println!("{}", e1_table2().to_text());
    println!("{}", e2_table3().to_text());
    if !analytic_only {
        println!("{}", e3_simulated_table3().to_text());
    }
}

fn cmd_experiments(wanted: &[String]) -> ExitCode {
    let registry = all_experiments();
    if !wanted.is_empty() {
        for w in wanted {
            if !registry.iter().any(|e| e.id.eq_ignore_ascii_case(w)) {
                eprintln!("unknown experiment '{w}' (valid: E1..E{})", registry.len());
                return ExitCode::from(2);
            }
        }
    }
    for exp in registry {
        if wanted.is_empty() || wanted.iter().any(|w| w.eq_ignore_ascii_case(exp.id)) {
            println!("{}", (exp.run)().to_text());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_export(dir: Option<&String>) -> ExitCode {
    let path =
        std::path::PathBuf::from(dir.cloned().unwrap_or_else(|| "target/experiments".into()));
    match hinet::analysis::artifacts::export_all(&path) {
        Ok(written) => {
            println!(
                "wrote artifacts for {} experiments under {}",
                written.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_run(flags: &FlagSet) -> ExitCode {
    let parse = || -> Result<(usize, usize, usize, usize, usize, u64), String> {
        let n = flags.parsed("n", 100usize)?;
        Ok((
            n,
            flags.parsed("k", 8usize)?,
            flags.parsed("alpha", 5usize)?,
            flags.parsed("l", 2usize)?,
            flags.parsed("theta", (n / 3).max(1))?,
            flags.parsed("seed", 42u64)?,
        ))
    };
    let (n, k, alpha, l, theta, seed) = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let algorithm = flags.get("algorithm").unwrap_or("alg1");
    let dynamics = flags.get("dynamics").unwrap_or("hinet");

    let t = required_phase_length(k, alpha, l);
    let assignment = round_robin_assignment(n, k);
    let budget = 4 * n + 4 * t;

    // RLNC runs on its own executor.
    if algorithm == "rlnc" {
        let mut provider: Box<dyn hinet::graph::trace::TopologyProvider> = match dynamics {
            "flat-1" | "hinet" => Box::new(OneIntervalGen::new(n, true, n / 5, seed)),
            "flat-t" => Box::new(TIntervalGen::new(n, t, BackboneKind::Path, n / 5, seed)),
            "waypoint" => Box::new(RandomWaypointGen::new(n, WaypointConfig::default(), seed)),
            "manhattan" => Box::new(ManhattanGen::new(n, ManhattanConfig::default(), seed)),
            "emdg" => Box::new(EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed)),
            other => {
                eprintln!("unknown dynamics '{other}'");
                return ExitCode::from(2);
            }
        };
        let r = hinet::core::netcode::run_rlnc(provider.as_mut(), &assignment, budget, seed);
        println!("algorithm: rlnc  dynamics: {dynamics}  n={n} k={k} seed={seed}");
        println!(
            "completed: {}  rounds: {:?}  coded packets: {}",
            r.completed(),
            r.completion_round,
            r.packets_sent
        );
        return ExitCode::SUCCESS;
    }

    let kind = match algorithm {
        "alg1" => AlgorithmKind::HiNetPhased(alg1_plan(k, alpha, l, theta)),
        "remark1" => AlgorithmKind::HiNetRemark1(PhasePlan {
            rounds_per_phase: t,
            phases: remark1_phases(theta, alpha),
        }),
        "alg2" => AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
        "alg2-mh" => AlgorithmKind::HiNetFullExchangeMH { rounds: n - 1 },
        "klo-phased" => AlgorithmKind::KloPhased(klo_plan(k, alpha, l, n)),
        "klo-flood" => AlgorithmKind::KloFlood { rounds: n - 1 },
        "gossip" => AlgorithmKind::Gossip {
            rounds: budget,
            seed,
        },
        "kactive" => AlgorithmKind::KActiveFlood {
            activity: n / 2,
            rounds: budget,
        },
        "delta" => AlgorithmKind::DeltaFlood { rounds: budget },
        other => {
            eprintln!("unknown algorithm '{other}'");
            return ExitCode::from(2);
        }
    };

    let mut provider: Box<dyn HierarchyProvider> = match dynamics {
        "hinet" => {
            let num_heads = (theta / 2).clamp(1, theta);
            Box::new(HiNetGen::new(HiNetConfig {
                n,
                num_heads,
                theta,
                l,
                t: if matches!(kind, AlgorithmKind::HiNetFullExchange { .. }) {
                    1
                } else {
                    t
                },
                reaffil_prob: 0.1,
                rotate_heads: true,
                noise_edges: n / 5,
                seed,
            }))
        }
        "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
            n,
            t,
            BackboneKind::Path,
            n / 5,
            seed,
        ))),
        "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
        "waypoint" => Box::new(ClusteredMobilityGen::new(
            RandomWaypointGen::new(n, WaypointConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "manhattan" => Box::new(ClusteredMobilityGen::new(
            ManhattanGen::new(n, ManhattanConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "emdg" => Box::new(ClusteredMobilityGen::new(
            EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
            ClusteringKind::GreedyDominating,
            true,
        )),
        other => {
            eprintln!("unknown dynamics '{other}'");
            return ExitCode::from(2);
        }
    };

    let report = run_algorithm(
        &kind,
        provider.as_mut(),
        &assignment,
        RunConfig::new().max_rounds(budget),
    );
    println!(
        "algorithm: {}  dynamics: {dynamics}  n={n} k={k} α={alpha} L={l} θ={theta} seed={seed}",
        kind.label()
    );
    println!(
        "completed: {}  rounds: {}",
        report.completed(),
        report
            .completion_round
            .map_or("never".into(), |r| r.to_string())
    );
    println!(
        "tokens sent: {}  packets: {}  (heads {}, gateways {}, members {})",
        report.metrics.tokens_sent,
        report.metrics.packets_sent,
        report.metrics.tokens_by_role[0],
        report.metrics.tokens_by_role[1],
        report.metrics.tokens_by_role[2],
    );
    ExitCode::SUCCESS
}

fn cmd_audit(flags: &FlagSet) -> ExitCode {
    use hinet::cluster::audit::audit;
    use hinet::cluster::ctvg::CtvgTrace;

    let parse = || -> Result<(usize, usize, u64), String> {
        Ok((
            flags.parsed("n", 60usize)?,
            flags.parsed("rounds", 36usize)?,
            flags.parsed("seed", 42u64)?,
        ))
    };
    let (n, rounds, seed) = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dynamics = flags.get("dynamics").unwrap_or("hinet");

    let mut provider: Box<dyn HierarchyProvider> = match dynamics {
        "hinet" => Box::new(HiNetGen::new(HiNetConfig {
            n,
            num_heads: (n / 8).max(1),
            theta: (n / 4).max(1),
            l: 2,
            t: 6,
            reaffil_prob: 0.15,
            rotate_heads: true,
            noise_edges: n / 5,
            seed,
        })),
        "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
            n,
            6,
            BackboneKind::Path,
            n / 5,
            seed,
        ))),
        "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
        "waypoint" => Box::new(ClusteredMobilityGen::new(
            RandomWaypointGen::new(n, WaypointConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "manhattan" => Box::new(ClusteredMobilityGen::new(
            ManhattanGen::new(n, ManhattanConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "emdg" => Box::new(ClusteredMobilityGen::new(
            EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
            ClusteringKind::GreedyDominating,
            true,
        )),
        other => {
            eprintln!("unknown dynamics '{other}'");
            return ExitCode::from(2);
        }
    };
    let trace = CtvgTrace::capture(provider.as_mut(), rounds);
    println!("stability audit: dynamics={dynamics} n={n} rounds={rounds} seed={seed}\n");
    println!("{}", audit(&trace).to_text());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    match command {
        Command::Tables { analytic_only } => {
            cmd_tables(analytic_only);
            ExitCode::SUCCESS
        }
        Command::Experiments { wanted } => cmd_experiments(&wanted),
        Command::Export { dir } => cmd_export(dir.as_ref()),
        Command::Run(flags) => cmd_run(&flags),
        Command::Audit(flags) => cmd_audit(&flags),
        Command::Bench(args) => hinet_bench::cli::run_from_args(&args),
        Command::Help => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
    }
}
