//! `hinet` — command-line front end for the reproduction.
//!
//! ```text
//! hinet tables [--analytic-only]      reproduce Tables 2 & 3 (+ simulated E3)
//! hinet experiments [E3 E13 ...]      run experiments (default: all)
//! hinet export [DIR]                  write all experiment tables as md/csv
//! hinet run [options]                 one simulation, report costs
//! hinet trace [options]               one traced simulation (hinet-trace/v1)
//! hinet audit [options]               stability report for a dynamics trace
//! hinet fuzz [options]                seeded adversarial scenario search
//! hinet bench [options]               timing benchmarks (see `hinet bench --help`)
//! hinet help                          this text
//! ```
//!
//! `hinet run` and `hinet trace` share the scenario options (all optional):
//!
//! ```text
//! --scenario FILE    load a hinet-scenario/v1 file as the base; any
//!                    other scenario flag overrides the file's value
//! --algorithm NAME   alg1 | remark1 | alg2 | alg2-mh | klo-phased |
//!                    klo-flood | gossip | kactive | delta | rlnc   [alg1]
//! --dynamics NAME    hinet | flat-t | flat-1 | waypoint | manhattan |
//!                    emdg                                          [hinet]
//! --n N              nodes                                         [100]
//! --k K              tokens                                        [8]
//! --alpha A          progress coefficient                          [5]
//! --l L              hop bound                                     [2]
//! --theta TH         head-capable pool                             [n/3]
//! --seed S           RNG seed                                      [42]
//! --budget R         round budget                                  [4n+4T]
//! --loss P           per-delivery drop probability (fraction)      [0]
//! --crash-rate P     per-node per-round crash hazard (fraction)    [0]
//! --crash-at R:U,..  scheduled crashes (round:node pairs)          [none]
//! --partition S:E:C,..  sever links across cut C in rounds [S, E)  [none]
//! --down-rounds N    rounds a hazard-crashed node stays down       [1]
//! --target-heads     hazard crashes only hit current heads
//! --fault-seed S     fault decision seed                           [0]
//! --retransmit       HiNet algorithms recover via retransmission
//! --durable-tokens   accumulated tokens survive crashes
//! --delay P          per-delivery delay probability (fraction)     [0]
//! --max-delay N      max rounds a delayed delivery is held         [1]
//! --dup P            per-delivery duplication probability          [0]
//! --reorder          seeded per-round inbox reordering
//! --reliable         generalised ack/timeout/backoff recovery layer
//! --stall-rounds N   event-mode stall watchdog threshold (0 = off) [0]
//! ```
//!
//! `hinet run` additionally accepts `--trace` (record a `hinet-trace/v1`
//! JSONL artifact) and `--trace-out FILE` (where to write it). `hinet
//! trace` adds `--in FILE` (summarise an existing artifact instead of
//! running), `--events`, `--summary`, `--out FILE`, `--filter KIND`,
//! `--stability`, `--sample N`, and the trace-diff mode `--diff A [B]`
//! (with `--json`, `--ignore`, `--max-divergences`, `--context` and
//! `--update-golden`); see `docs/OBSERVABILITY.md`. Artifacts written via
//! `--trace-out`/`--out` are streamed to disk incrementally, so arbitrarily
//! long runs never need the whole event stream in memory.
//!
//! `hinet fuzz` mutates a base scenario under a seeded RNG, classifies
//! every mutant against the paper's analytic bounds and the engine's
//! structured outcome, auto-shrinks each offender, and archives it as a
//! replayable scenario file carrying an `expect_outcome` stamp; `hinet
//! fuzz --replay PATH` re-checks an archived corpus. See
//! `docs/SCENARIOS.md` for the file format and the corpus workflow.
//!
//! Each command declares its flags in a [`FlagSpec`] table; unknown flags
//! and malformed values are rejected with exit code 2 rather than silently
//! ignored.

use hinet::analysis::experiments::all_experiments;
use hinet::cluster::audit::StreamingAudit;
use hinet::cluster::clustering::ClusteringKind;
use hinet::cluster::ctvg::{CtvgTrace, FlatProvider, HierarchyProvider};
use hinet::cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet::cluster::stability::stream::StabilityStream;
use hinet::cluster::stability::trace_stability_windows;
use hinet::graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet::rt::obs::diff::{diff_traces, DiffConfig};
use hinet::rt::obs::{ObsConfig, ParsedTrace, TraceSummary, Tracer};
use hinet::scenario::{Scenario, ScenarioReport};
use hinet::sim::engine::RunReport;
use hinet_rt::flags::{flag, parse_flags, FlagSet, FlagSpec};
use std::process::ExitCode;

const HELP: &str = "hinet — (T, L)-HiNet dissemination reproduction

USAGE:
  hinet tables [--analytic-only]    reproduce Tables 2 & 3 (+ simulated E3)
  hinet experiments [E3 E13 ...]    run experiments (default: all 16)
  hinet export [DIR]                write experiment tables as md/csv
  hinet run [--algorithm A] [--dynamics D] [--n N] [--k K]
            [--alpha A] [--l L] [--theta TH] [--seed S]
            [--loss P] [--crash-rate P] [--crash-at R:U,..]
            [--target-heads] [--fault-seed S] [--retransmit]
            [--durable-tokens] [--delay P] [--max-delay N] [--dup P]
            [--reorder] [--reliable] [--stall-rounds N]
            [--mode lockstep|event]
            [--stability-stream] [--trace] [--trace-out FILE]
  hinet trace [scenario flags as for run] [--in FILE] [--events]
            [--summary] [--out FILE] [--filter KIND] [--stability]
            [--stability-stream] [--sample N]
  hinet trace --diff A [B] [--json] [--ignore TIERS]
            [--max-divergences N] [--context N] [--update-golden]
  hinet audit [--dynamics D] [--n N] [--rounds R] [--seed S] [--stream]
  hinet fuzz [--seed S] [--cases N] [--scenario FILE] [--out DIR]
            [--max-offenders N] [--no-archive]
  hinet fuzz --replay PATH          re-check an archived scenario corpus
  hinet bench [--filter S] [--json] [--baseline FILE] ...  (see bench --help)
  hinet help

run algorithms: alg1 remark1 alg2 alg2-mh klo-phased klo-flood gossip
                kactive delta rlnc
run dynamics:   hinet flat-t flat-1 waypoint manhattan emdg";

const TABLES_FLAGS: &[FlagSpec] = &[flag(
    "analytic-only",
    false,
    "skip the simulated Table 3 (E3)",
)];

const RUN_FLAGS: &[FlagSpec] = &[
    flag(
        "scenario",
        true,
        "load a hinet-scenario/v1 FILE as the base scenario",
    ),
    flag("algorithm", true, "algorithm to run [alg1]"),
    flag("dynamics", true, "dynamics model [hinet]"),
    flag("n", true, "nodes [100]"),
    flag("k", true, "tokens [8]"),
    flag("alpha", true, "progress coefficient [5]"),
    flag("l", true, "hop bound [2]"),
    flag("theta", true, "head-capable pool [n/3]"),
    flag("seed", true, "RNG seed [42]"),
    flag("budget", true, "round budget [4n+4T]"),
    flag("loss", true, "per-delivery drop probability, fraction [0]"),
    flag(
        "crash-rate",
        true,
        "per-node per-round crash hazard, fraction [0]",
    ),
    flag("crash-at", true, "scheduled crashes, round:node[,..]"),
    flag(
        "partition",
        true,
        "sever links across a cut, start:end:cut[,..]",
    ),
    flag(
        "down-rounds",
        true,
        "rounds a hazard-crashed node stays down [1]",
    ),
    flag(
        "target-heads",
        false,
        "hazard crashes only hit current heads",
    ),
    flag("fault-seed", true, "fault decision seed [0]"),
    flag(
        "retransmit",
        false,
        "HiNet algorithms recover via retransmission",
    ),
    flag(
        "durable-tokens",
        false,
        "accumulated tokens survive crashes",
    ),
    flag(
        "delay",
        true,
        "per-delivery delay probability, fraction [0]",
    ),
    flag(
        "max-delay",
        true,
        "max rounds a delayed delivery is held [1]",
    ),
    flag(
        "dup",
        true,
        "per-delivery duplication probability, fraction [0]",
    ),
    flag("reorder", false, "seeded per-round inbox reordering"),
    flag(
        "reliable",
        false,
        "generalised ack/timeout/backoff recovery layer",
    ),
    flag(
        "stall-rounds",
        true,
        "event-mode stall watchdog threshold, 0 = off [0]",
    ),
    flag("mode", true, "execution mode, lockstep|event [lockstep]"),
    flag(
        "stability-stream",
        false,
        "run the in-engine (T, L)-HiNet oracle (lockstep only)",
    ),
    flag("trace", false, "record a hinet-trace/v1 JSONL artifact"),
    flag(
        "trace-out",
        true,
        "trace artifact path [target/trace/run.jsonl]",
    ),
];

const TRACE_FLAGS: &[FlagSpec] = &[
    flag(
        "scenario",
        true,
        "load a hinet-scenario/v1 FILE as the base scenario",
    ),
    flag("algorithm", true, "algorithm to run [alg1]"),
    flag("dynamics", true, "dynamics model [hinet]"),
    flag("n", true, "nodes [100]"),
    flag("k", true, "tokens [8]"),
    flag("alpha", true, "progress coefficient [5]"),
    flag("l", true, "hop bound [2]"),
    flag("theta", true, "head-capable pool [n/3]"),
    flag("seed", true, "RNG seed [42]"),
    flag("budget", true, "round budget [4n+4T]"),
    flag("loss", true, "per-delivery drop probability, fraction [0]"),
    flag(
        "crash-rate",
        true,
        "per-node per-round crash hazard, fraction [0]",
    ),
    flag("crash-at", true, "scheduled crashes, round:node[,..]"),
    flag(
        "partition",
        true,
        "sever links across a cut, start:end:cut[,..]",
    ),
    flag(
        "down-rounds",
        true,
        "rounds a hazard-crashed node stays down [1]",
    ),
    flag(
        "target-heads",
        false,
        "hazard crashes only hit current heads",
    ),
    flag("fault-seed", true, "fault decision seed [0]"),
    flag(
        "retransmit",
        false,
        "HiNet algorithms recover via retransmission",
    ),
    flag(
        "durable-tokens",
        false,
        "accumulated tokens survive crashes",
    ),
    flag(
        "delay",
        true,
        "per-delivery delay probability, fraction [0]",
    ),
    flag(
        "max-delay",
        true,
        "max rounds a delayed delivery is held [1]",
    ),
    flag(
        "dup",
        true,
        "per-delivery duplication probability, fraction [0]",
    ),
    flag("reorder", false, "seeded per-round inbox reordering"),
    flag(
        "reliable",
        false,
        "generalised ack/timeout/backoff recovery layer",
    ),
    flag(
        "stall-rounds",
        true,
        "event-mode stall watchdog threshold, 0 = off [0]",
    ),
    flag("mode", true, "execution mode, lockstep|event [lockstep]"),
    flag(
        "in",
        true,
        "summarise an existing artifact instead of running",
    ),
    flag("events", false, "print recorded events as JSONL"),
    flag("summary", false, "print the trace summary (default output)"),
    flag("out", true, "write the hinet-trace/v1 artifact to FILE"),
    flag("filter", true, "with --events, only kinds containing KIND"),
    flag(
        "stability",
        false,
        "verify Defs 2-8 per aligned window and trace the verdicts",
    ),
    flag(
        "stability-stream",
        false,
        "like --stability, via the one-pass streaming verifier",
    ),
    flag(
        "sample",
        true,
        "record one in N data events (counters stay exact)",
    ),
    flag(
        "diff",
        true,
        "diff trace FILE against a second trace (positional) or a live re-run",
    ),
    flag("json", false, "with --diff, emit hinet-trace-diff/v1 JSON"),
    flag(
        "ignore",
        true,
        "with --diff, skip tiers (comma-separated: meta,counters,events)",
    ),
    flag(
        "max-divergences",
        true,
        "with --diff, cap reported divergences [16]",
    ),
    flag(
        "context",
        true,
        "with --diff, events of context around the first divergence [3]",
    ),
    flag(
        "update-golden",
        false,
        "with --diff (live form), overwrite FILE with the re-run on divergence",
    ),
];

const AUDIT_FLAGS: &[FlagSpec] = &[
    flag("dynamics", true, "dynamics model [hinet]"),
    flag("n", true, "nodes [60]"),
    flag("rounds", true, "trace length [36]"),
    flag("seed", true, "RNG seed [42]"),
    flag(
        "stream",
        false,
        "one-pass streaming audit (constant memory, identical report)",
    ),
];

const FUZZ_FLAGS: &[FlagSpec] = &[
    flag("seed", true, "fuzz campaign seed [1]"),
    flag("cases", true, "mutated scenarios to execute [50]"),
    flag(
        "scenario",
        true,
        "base scenario FILE to mutate [built-in alg1/hinet base]",
    ),
    flag(
        "out",
        true,
        "archive directory for shrunk offenders [tests/corpus]",
    ),
    flag(
        "max-offenders",
        true,
        "stop shrinking/archiving after N offenders [8]",
    ),
    flag("no-archive", false, "classify and shrink but write nothing"),
    flag(
        "replay",
        true,
        "replay an archived corpus (dir or file) instead of fuzzing",
    ),
];

const NO_FLAGS: &[FlagSpec] = &[];

/// A parsed top-level command, with its validated flags.
enum Command {
    Tables {
        analytic_only: bool,
    },
    Experiments {
        wanted: Vec<String>,
    },
    Export {
        dir: Option<String>,
    },
    Run(FlagSet),
    /// Positionals (only the optional second trace of `--diff`) + flags.
    Trace(Vec<String>, FlagSet),
    Audit(FlagSet),
    Fuzz(FlagSet),
    /// Raw args, forwarded to `hinet_bench::cli` (which owns the flag table).
    Bench(Vec<String>),
    Help,
}

impl Command {
    /// Parse `argv[1..]`. `Err` is a usage message (exit 2).
    fn parse(args: &[String]) -> Result<Command, String> {
        let Some(command) = args.first() else {
            return Ok(Command::Help);
        };
        let rest = &args[1..];
        match command.as_str() {
            "tables" => {
                let (pos, flags) = parse_flags(TABLES_FLAGS, rest)?;
                reject_positionals("tables", &pos)?;
                Ok(Command::Tables {
                    analytic_only: flags.has("analytic-only"),
                })
            }
            "experiments" => {
                let (pos, _) = parse_flags(NO_FLAGS, rest)?;
                Ok(Command::Experiments { wanted: pos })
            }
            "export" => {
                let (pos, _) = parse_flags(NO_FLAGS, rest)?;
                if pos.len() > 1 {
                    return Err(format!("export takes one DIR, got {}", pos.len()));
                }
                Ok(Command::Export {
                    dir: pos.first().cloned(),
                })
            }
            "run" => {
                let (pos, flags) = parse_flags(RUN_FLAGS, rest)?;
                reject_positionals("run", &pos)?;
                Ok(Command::Run(flags))
            }
            "trace" => {
                let (pos, flags) = parse_flags(TRACE_FLAGS, rest)?;
                if flags.get("diff").is_none() {
                    reject_positionals("trace", &pos)?;
                } else if pos.len() > 1 {
                    return Err(format!(
                        "trace --diff takes at most one extra trace, got {}",
                        pos.len()
                    ));
                }
                Ok(Command::Trace(pos, flags))
            }
            "audit" => {
                let (pos, flags) = parse_flags(AUDIT_FLAGS, rest)?;
                reject_positionals("audit", &pos)?;
                Ok(Command::Audit(flags))
            }
            "fuzz" => {
                let (pos, flags) = parse_flags(FUZZ_FLAGS, rest)?;
                reject_positionals("fuzz", &pos)?;
                if flags.get("replay").is_some() {
                    for conflicting in ["seed", "cases", "scenario", "out", "max-offenders"] {
                        if flags.get(conflicting).is_some() {
                            return Err(format!(
                                "fuzz --replay re-checks an existing corpus and takes no \
                                 --{conflicting}"
                            ));
                        }
                    }
                    if flags.has("no-archive") {
                        return Err("fuzz --replay re-checks an existing corpus and takes no \
                             --no-archive"
                            .into());
                    }
                }
                if flags.has("no-archive") && flags.get("out").is_some() {
                    return Err("--no-archive and --out DIR contradict each other".into());
                }
                Ok(Command::Fuzz(flags))
            }
            "bench" => Ok(Command::Bench(rest.to_vec())),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn reject_positionals(cmd: &str, pos: &[String]) -> Result<(), String> {
    match pos.first() {
        Some(extra) => Err(format!(
            "{cmd} takes no positional arguments, got '{extra}'"
        )),
        None => Ok(()),
    }
}

fn cmd_tables(analytic_only: bool) {
    use hinet::analysis::experiments::{e1_table2, e2_table3, e3_simulated_table3};
    println!("{}", e1_table2().to_text());
    println!("{}", e2_table3().to_text());
    if !analytic_only {
        println!("{}", e3_simulated_table3().to_text());
    }
}

fn cmd_experiments(wanted: &[String]) -> ExitCode {
    let registry = all_experiments();
    if !wanted.is_empty() {
        for w in wanted {
            if !registry.iter().any(|e| e.id.eq_ignore_ascii_case(w)) {
                eprintln!("unknown experiment '{w}' (valid: E1..E{})", registry.len());
                return ExitCode::from(2);
            }
        }
    }
    for exp in registry {
        if wanted.is_empty() || wanted.iter().any(|w| w.eq_ignore_ascii_case(exp.id)) {
            println!("{}", (exp.run)().to_text());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_export(dir: Option<&String>) -> ExitCode {
    let path =
        std::path::PathBuf::from(dir.cloned().unwrap_or_else(|| "target/experiments".into()));
    match hinet::analysis::artifacts::export_all(&path) {
        Ok(written) => {
            println!(
                "wrote artifacts for {} experiments under {}",
                written.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::from(1)
        }
    }
}

fn print_report(sc: &Scenario, label: &str, report: &RunReport) {
    println!(
        "algorithm: {label}  dynamics: {}  n={} k={} α={} L={} θ={} seed={}",
        sc.dynamics, sc.n, sc.k, sc.alpha, sc.l, sc.theta, sc.seed
    );
    println!(
        "completed: {}  rounds: {}",
        report.completed(),
        report
            .completion_round
            .map_or("never".into(), |r| r.to_string())
    );
    println!("outcome: {}", report.outcome);
    println!(
        "tokens sent: {}  packets: {}  (heads {}, gateways {}, members {})",
        report.metrics.tokens_sent,
        report.metrics.packets_sent,
        report.metrics.tokens_by_role[0],
        report.metrics.tokens_by_role[1],
        report.metrics.tokens_by_role[2],
    );
    let m = &report.metrics;
    if m.faults_injected + m.crashes + m.recoveries + m.retransmits > 0 {
        println!(
            "faults: {} dropped deliveries, {} crashes, {} recoveries, {} retransmits",
            m.faults_injected, m.crashes, m.recoveries, m.retransmits
        );
    }
    if m.delays_injected + m.duplicates_injected + m.dups_discarded + m.retransmit_timeouts > 0 {
        println!(
            "delivery plane: {} delayed, {} duplicated, {} duplicates discarded, \
             {} retransmit timeouts",
            m.delays_injected, m.duplicates_injected, m.dups_discarded, m.retransmit_timeouts
        );
    }
    let w = &report.wall;
    println!(
        "wall clock: {:.3} ms  throughput: {:.0} tokens/sec",
        w.elapsed_ns as f64 / 1e6,
        w.tokens_per_sec,
    );
    if let Some(lat) = &w.latency {
        println!(
            "token latency: p50 {:.3} ms  p95 {:.3} ms  max {:.3} ms  ({}/{} covered)",
            lat.p50_ns as f64 / 1e6,
            lat.p95_ns as f64 / 1e6,
            lat.max_ns as f64 / 1e6,
            lat.covered,
            lat.total,
        );
    }
    if w.reassembly_stalls + w.mailbox_depth_max > 0 {
        println!(
            "event runtime: {} reassembly stalls, mailbox depth high-water {}",
            w.reassembly_stalls, w.mailbox_depth_max,
        );
    }
}

/// Print the stall watchdog's per-node diagnostics: each stalled node's
/// round frontier, the neighbours whose round markers its quorum was still
/// missing, and the age of its oldest unacked reliability-layer envelope.
fn print_stall_diag(diag: &hinet::sim::engine::StallDiag) {
    println!(
        "stall watchdog: halted with {} node(s) short of quorum",
        diag.nodes.len()
    );
    if let Some((first, last)) = diag.fault_window {
        println!("  faults fired between rounds {first} and {last}");
    }
    for ns in &diag.nodes {
        let missing = if ns.missing.is_empty() {
            "none".to_string()
        } else {
            ns.missing
                .iter()
                .map(|v| v.index().to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let unacked = ns
            .oldest_unacked
            .map_or("-".into(), |age| format!("{age} round(s)"));
        println!(
            "  node {}: frontier round {}, missing markers from [{}], oldest unacked {}",
            ns.node.index(),
            ns.frontier,
            missing,
            unacked
        );
    }
}

/// Write a trace artifact, creating parent directories on demand.
fn write_trace(path: &str, tracer: &Tracer) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {parent:?}: {e}"))?;
    }
    std::fs::write(p, tracer.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "trace: wrote {path} ({} events, {} dropped)",
        tracer.len(),
        tracer.dropped()
    );
    Ok(())
}

/// Switch `tracer` to incremental on-disk spilling: events stream to
/// `path.part` as they are recorded instead of accumulating in the ring.
fn stream_trace(path: &str, tracer: &mut Tracer) -> Result<(), String> {
    tracer
        .stream_to(path)
        .map_err(|e| format!("cannot stream trace to {path}: {e}"))
}

/// Finalise a streamed artifact (header + spilled events); falls back to
/// [`write_trace`] when the tracer never streamed.
fn finish_trace(path: &str, tracer: &mut Tracer) -> Result<(), String> {
    match tracer
        .finish_stream()
        .map_err(|e| format!("cannot finalise trace {path}: {e}"))?
    {
        Some(written) => {
            println!(
                "trace: wrote {path} ({written} events streamed, {} dropped)",
                tracer.dropped()
            );
            Ok(())
        }
        None => write_trace(path, tracer),
    }
}

fn cmd_run(flags: &FlagSet) -> ExitCode {
    let want_trace = flags.has("trace") || flags.get("trace-out").is_some();
    // Returns whether the stall watchdog halted the run (exit 1, so
    // scripted chaos gates can distinguish a stall from a usage error).
    let run = || -> Result<bool, String> {
        let sc = Scenario::from_flags(flags)?;
        let mut tracer = if want_trace {
            Tracer::new(ObsConfig::full())
        } else {
            Tracer::disabled()
        };
        let out_path = flags.get("trace-out").unwrap_or("target/trace/run.jsonl");
        if want_trace {
            stream_trace(out_path, &mut tracer)?;
        }
        let report = sc.run_traced_with_oracle(&mut tracer, flags.has("stability-stream"))?;
        let mut stalled = false;
        match &report {
            ScenarioReport::Engine(r) => {
                print_report(&sc, sc.kind()?.label(), r);
                if let Some(diag) = &r.stall {
                    print_stall_diag(diag);
                    stalled = true;
                }
                if let Some(s) = &r.stability {
                    match s.violation {
                        Some(v) => println!(
                            "stability oracle: VIOLATED Def {} at round {} (window starting {})",
                            v.def, v.round, v.window_start
                        ),
                        None => println!(
                            "stability oracle: {}/{} windows (T, L)-HiNet  min L*={}",
                            s.hinet_windows,
                            s.windows,
                            s.min_hinet_l.map_or("-".into(), |l| l.to_string()),
                        ),
                    }
                }
            }
            ScenarioReport::Rlnc(r) => {
                println!(
                    "algorithm: rlnc  dynamics: {}  n={} k={} seed={}",
                    sc.dynamics, sc.n, sc.k, sc.seed
                );
                println!(
                    "completed: {}  rounds: {:?}  coded packets: {}",
                    r.completed(),
                    r.completion_round,
                    r.packets_sent
                );
            }
        }
        if want_trace {
            finish_trace(out_path, &mut tracer)?;
        }
        Ok(stalled)
    };
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Print a summary (and its consistency against a live report, if any).
fn print_summary(summary: &TraceSummary, report: Option<&RunReport>) {
    print!("{}", summary.to_text());
    if let Some(report) = report {
        let rounds_ok = summary.counters.rounds == report.rounds_executed as u64;
        let tokens_ok = summary.counters.tokens_sent == report.metrics.tokens_sent;
        let phase_sum: u64 = summary.per_phase_rounds.iter().sum();
        println!(
            "consistency: rounds {}/{} {}  tokens {}/{} {}  phase-round sum {}",
            summary.counters.rounds,
            report.rounds_executed,
            if rounds_ok { "ok" } else { "MISMATCH" },
            summary.counters.tokens_sent,
            report.metrics.tokens_sent,
            if tokens_ok { "ok" } else { "MISMATCH" },
            phase_sum,
        );
    }
}

fn cmd_trace(pos: &[String], flags: &FlagSet) -> ExitCode {
    // Mode 0: structured comparison of two traces (or trace vs live re-run).
    if let Some(a_path) = flags.get("diff") {
        return cmd_trace_diff(a_path, pos.first().map(String::as_str), flags);
    }

    let events_wanted = flags.has("events");
    let summary_wanted = flags.has("summary");
    let filter = flags.get("filter");

    // Mode 1: summarise an existing artifact.
    if let Some(path) = flags.get("in") {
        let load = || -> Result<ParsedTrace, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            ParsedTrace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
        };
        let parsed = match load() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "trace {path}: schema hinet-trace/v1, {} events, algorithm {}",
            parsed.events.len(),
            parsed.meta_get("algorithm").unwrap_or("?"),
        );
        if events_wanted {
            for te in &parsed.events {
                if filter.is_none_or(|f| te.event.kind().contains(f)) {
                    println!("r={} {:?}", te.round, te.event);
                }
            }
        }
        if summary_wanted || !events_wanted {
            print_summary(&TraceSummary::from_trace(&parsed), None);
        }
        return ExitCode::SUCCESS;
    }

    // Mode 2: run the scenario with tracing on.
    let run = || -> Result<(Scenario, Tracer, ScenarioReport), String> {
        let sc = Scenario::from_flags(flags)?;
        let stability_wanted = flags.has("stability");
        let stream_wanted = flags.has("stability-stream");
        if (stability_wanted || stream_wanted) && sc.algorithm == "rlnc" {
            return Err(
                "--stability is not supported for rlnc (no cluster hierarchy to verify)".into(),
            );
        }
        if stability_wanted && stream_wanted {
            return Err(
                "--stability and --stability-stream are alternative verifiers; pick one \
                 (their stability_window event streams are identical)"
                    .into(),
            );
        }
        let mut tracer = match flags.get("sample") {
            Some(_) => Tracer::new(ObsConfig::sampled(flags.parsed("sample", 1u32)?)),
            None => Tracer::new(ObsConfig::full()),
        };
        // Pure artifact-recording runs stream events straight to disk;
        // --events/--summary need the in-memory ring for display.
        if let Some(path) = flags.get("out") {
            if !events_wanted && !summary_wanted {
                stream_trace(path, &mut tracer)?;
            }
        }
        let report = sc.run_traced(&mut tracer)?;
        if stability_wanted {
            // Providers are deterministic in the scenario seed, so a fresh
            // one replays the run's dynamics for post-hoc verification.
            let mut replay = sc.provider(&sc.kind()?)?;
            let trace = CtvgTrace::capture(replay.as_mut(), report.rounds_executed().max(1));
            trace_stability_windows(&trace, sc.t, sc.l, &mut tracer);
        }
        if stream_wanted {
            // Same replay, but one round at a time through the streaming
            // verifier: no materialised trace, constant memory per round.
            let mut replay = sc.provider(&sc.kind()?)?;
            let mut stream = StabilityStream::new(sc.t, sc.l);
            for round in 0..report.rounds_executed().max(1) {
                let g = replay.graph_at(round);
                let h = replay.hierarchy_at(round);
                if let Some(verdict) = stream.push(&g, &h) {
                    verdict.emit_into(&mut tracer);
                }
            }
            let (last, sr) = stream.finish();
            if let Some(verdict) = last {
                verdict.emit_into(&mut tracer);
            }
            tracer.meta(
                "stability_stream_peak_bytes",
                sr.peak_state_bytes.to_string(),
            );
        }
        Ok((sc, tracer, report))
    };
    let (sc, mut tracer, report) = match run() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "traced {} on {}: {} rounds, {} events recorded",
        sc.algorithm,
        sc.dynamics,
        report.rounds_executed(),
        tracer.len().max(tracer.streamed().unwrap_or(0) as usize),
    );
    if let Some(path) = flags.get("out") {
        if let Err(e) = finish_trace(path, &mut tracer) {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    }
    if events_wanted {
        for te in tracer.events() {
            if filter.is_none_or(|f| te.event.kind().contains(f)) {
                println!("r={} {:?}", te.round, te.event);
            }
        }
    }
    if summary_wanted || (!events_wanted && flags.get("out").is_none()) {
        print_summary(&TraceSummary::from_tracer(&tracer), report.engine());
    }
    // Same exit contract as `hinet run`: a watchdog halt is exit 1.
    if let Some(diag) = report.engine().and_then(|r| r.stall.as_ref()) {
        print_stall_diag(diag);
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// `hinet trace --diff A [B]`: compare trace `A` against trace `B`, or —
/// when `B` is omitted — against a live re-run of the scenario recorded in
/// `A`'s own metadata (the golden-trace workflow). Exit codes: 0 identical,
/// 1 divergent, 2 usage/IO error.
fn cmd_trace_diff(a_path: &str, b_path: Option<&str>, flags: &FlagSet) -> ExitCode {
    let load = |path: &str| -> Result<ParsedTrace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        ParsedTrace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    };
    let run = || -> Result<(hinet::rt::obs::diff::DiffReport, Option<String>, String), String> {
        let a = load(a_path)?;
        // Side B: a second artifact, or a live re-run of A's scenario.
        let (b, live_jsonl, b_label) = match b_path {
            Some(path) => (load(path)?, None, path.to_string()),
            None => {
                let sc = Scenario::from_meta(&a)?;
                let mut tracer = Tracer::new(ObsConfig::full());
                sc.run_traced(&mut tracer)?;
                let jsonl = tracer.to_jsonl();
                let parsed =
                    ParsedTrace::parse_jsonl(&jsonl).map_err(|e| format!("live re-run: {e}"))?;
                (parsed, Some(jsonl), "live re-run".to_string())
            }
        };
        let mut cfg = DiffConfig::default();
        if let Some(spec) = flags.get("ignore") {
            cfg = cfg.with_ignores(spec)?;
        }
        cfg.max_divergences = flags.parsed("max-divergences", cfg.max_divergences)?;
        cfg.context = flags.parsed("context", cfg.context)?;
        Ok((diff_traces(&a, &b, &cfg), live_jsonl, b_label))
    };
    let (report, live_jsonl, b_label) = match run() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if flags.has("update-golden") {
        let Some(jsonl) = live_jsonl else {
            eprintln!(
                "--update-golden requires the live re-run form (hinet trace --diff FILE, \
                 no second trace)"
            );
            return ExitCode::from(2);
        };
        if report.is_empty() {
            println!("golden {a_path} is up to date");
        } else if let Err(e) = std::fs::write(a_path, jsonl) {
            eprintln!("cannot update {a_path}: {e}");
            return ExitCode::from(2);
        } else {
            println!(
                "updated golden {a_path} ({} divergence(s) resolved)",
                report.divergences.len() + report.truncated
            );
        }
        return ExitCode::SUCCESS;
    }

    if flags.has("json") {
        println!("{}", report.to_json());
    } else {
        println!("diff: {a_path} vs {b_label}");
        print!("{}", report.to_text());
    }
    if report.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_audit(flags: &FlagSet) -> ExitCode {
    use hinet::cluster::audit::audit;

    let parse = || -> Result<(usize, usize, u64), String> {
        Ok((
            flags.parsed("n", 60usize)?,
            flags.parsed("rounds", 36usize)?,
            flags.parsed("seed", 42u64)?,
        ))
    };
    let (n, rounds, seed) = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let dynamics = flags.get("dynamics").unwrap_or("hinet");

    let mut provider: Box<dyn HierarchyProvider> = match dynamics {
        "hinet" => Box::new(HiNetGen::new(HiNetConfig {
            n,
            num_heads: (n / 8).max(1),
            theta: (n / 4).max(1),
            l: 2,
            t: 6,
            reaffil_prob: 0.15,
            rotate_heads: true,
            noise_edges: n / 5,
            seed,
        })),
        "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
            n,
            6,
            BackboneKind::Path,
            n / 5,
            seed,
        ))),
        "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
        "waypoint" => Box::new(ClusteredMobilityGen::new(
            RandomWaypointGen::new(n, WaypointConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "manhattan" => Box::new(ClusteredMobilityGen::new(
            ManhattanGen::new(n, ManhattanConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "emdg" => Box::new(ClusteredMobilityGen::new(
            EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
            ClusteringKind::GreedyDominating,
            true,
        )),
        other => {
            eprintln!("unknown dynamics '{other}'");
            return ExitCode::from(2);
        }
    };
    println!("stability audit: dynamics={dynamics} n={n} rounds={rounds} seed={seed}\n");
    if flags.has("stream") {
        // One pass over the provider, never materialising the trace: the
        // report is bit-identical to the batch audit (see audit.rs tests).
        let mut streaming = StreamingAudit::new();
        for round in 0..rounds {
            let g = provider.graph_at(round);
            let h = provider.hierarchy_at(round);
            streaming.push(&g, &h);
        }
        let peak = streaming.peak_state_bytes();
        println!("{}", streaming.finish().to_text());
        println!("streaming state peak: {peak} bytes");
    } else {
        let trace = CtvgTrace::capture(provider.as_mut(), rounds);
        println!("{}", audit(&trace).to_text());
    }
    ExitCode::SUCCESS
}

/// `hinet fuzz`: seeded adversarial scenario search (or, with `--replay`,
/// corpus re-verification). Exit codes: 0 done (offenders are the product,
/// not an error), 1 a replayed corpus entry no longer reproduces its
/// recorded classification, 2 usage/IO error.
fn cmd_fuzz(flags: &FlagSet) -> ExitCode {
    use hinet::fuzz::{fuzz, replay_corpus, FuzzConfig};
    use hinet::scenario::ScenarioFile;

    let run = || -> Result<ExitCode, String> {
        if let Some(path) = flags.get("replay") {
            let outcomes = replay_corpus(std::path::Path::new(path))?;
            let mut mismatched = 0usize;
            for o in &outcomes {
                if o.ok() {
                    println!("ok   {} — {}", o.path.display(), o.actual);
                } else {
                    mismatched += 1;
                    println!(
                        "FAIL {} — expected '{}', got '{}'",
                        o.path.display(),
                        o.expected,
                        o.actual
                    );
                }
            }
            println!(
                "replayed {} scenario file(s): {} ok, {} mismatched",
                outcomes.len(),
                outcomes.len() - mismatched,
                mismatched
            );
            return Ok(if mismatched == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            });
        }

        let base = match flags.get("scenario") {
            Some(path) => ScenarioFile::load(std::path::Path::new(path))?.scenario,
            None => FuzzConfig::default_base(),
        };
        let cfg = FuzzConfig {
            seed: flags.parsed("seed", 1u64)?,
            cases: flags.parsed("cases", 50usize)?,
            base,
            archive_dir: if flags.has("no-archive") {
                None
            } else {
                Some(flags.get("out").unwrap_or("tests/corpus").into())
            },
            max_offenders: flags.parsed("max-offenders", 8usize)?,
        };
        println!(
            "fuzz: seed={} cases={} base={} on {} (n={} k={} α={} L={} θ={})",
            cfg.seed,
            cfg.cases,
            cfg.base.algorithm,
            cfg.base.dynamics,
            cfg.base.n,
            cfg.base.k,
            cfg.base.alpha,
            cfg.base.l,
            cfg.base.theta
        );
        print!("{}", fuzz(&cfg)?.to_text());
        Ok(ExitCode::SUCCESS)
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    match command {
        Command::Tables { analytic_only } => {
            cmd_tables(analytic_only);
            ExitCode::SUCCESS
        }
        Command::Experiments { wanted } => cmd_experiments(&wanted),
        Command::Export { dir } => cmd_export(dir.as_ref()),
        Command::Run(flags) => cmd_run(&flags),
        Command::Trace(pos, flags) => cmd_trace(&pos, &flags),
        Command::Audit(flags) => cmd_audit(&flags),
        Command::Fuzz(flags) => cmd_fuzz(&flags),
        Command::Bench(args) => hinet_bench::cli::run_from_args(&args),
        Command::Help => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
    }
}
