//! `hinet` — command-line front end for the reproduction.
//!
//! ```text
//! hinet tables [--analytic-only]      reproduce Tables 2 & 3 (+ simulated E3)
//! hinet experiments [E3 E13 ...]      run experiments (default: all)
//! hinet export [DIR]                  write all experiment tables as md/csv
//! hinet run [options]                 one simulation, report costs
//! hinet audit [options]               stability report for a dynamics trace
//! hinet help                          this text
//! ```
//!
//! `hinet run` options (all optional):
//!
//! ```text
//! --algorithm NAME   alg1 | remark1 | alg2 | alg2-mh | klo-phased |
//!                    klo-flood | gossip | kactive | delta | rlnc   [alg1]
//! --dynamics NAME    hinet | flat-t | flat-1 | waypoint | manhattan |
//!                    emdg                                          [hinet]
//! --n N              nodes                                         [100]
//! --k K              tokens                                        [8]
//! --alpha A          progress coefficient                          [5]
//! --l L              hop bound                                     [2]
//! --theta TH         head-capable pool                             [n/3]
//! --seed S           RNG seed                                      [42]
//! ```

use hinet::analysis::experiments::all_experiments;
use hinet::cluster::clustering::ClusteringKind;
use hinet::cluster::ctvg::{FlatProvider, HierarchyProvider};
use hinet::cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet::core::params::{alg1_plan, klo_plan, remark1_phases, required_phase_length, PhasePlan};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{
    BackboneKind, EdgeMarkovianGen, ManhattanConfig, ManhattanGen, OneIntervalGen,
    RandomWaypointGen, TIntervalGen, WaypointConfig,
};
use hinet::sim::engine::RunConfig;
use hinet::sim::token::round_robin_assignment;
use std::collections::BTreeMap;
use std::process::ExitCode;

const HELP: &str = "hinet — (T, L)-HiNet dissemination reproduction

USAGE:
  hinet tables [--analytic-only]    reproduce Tables 2 & 3 (+ simulated E3)
  hinet experiments [E3 E13 ...]    run experiments (default: all 16)
  hinet export [DIR]                write experiment tables as md/csv
  hinet run [--algorithm A] [--dynamics D] [--n N] [--k K]
            [--alpha A] [--l L] [--theta TH] [--seed S]
  hinet audit [--dynamics D] [--n N] [--rounds R] [--seed S]
  hinet help

run algorithms: alg1 remark1 alg2 alg2-mh klo-phased klo-flood gossip
                kactive delta rlnc
run dynamics:   hinet flat-t flat-1 waypoint manhattan emdg";

/// Minimal `--flag value` parser; bare words are positionals.
fn parse_flags(args: &[String]) -> (Vec<String>, BTreeMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn flag_usize(flags: &BTreeMap<String, String>, name: &str, default: usize) -> usize {
    flags
        .get(name)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} wants a number, got '{v}'");
                std::process::exit(2)
            })
        })
        .unwrap_or(default)
}

fn cmd_tables(flags: &BTreeMap<String, String>) {
    use hinet::analysis::experiments::{e1_table2, e2_table3, e3_simulated_table3};
    println!("{}", e1_table2().to_text());
    println!("{}", e2_table3().to_text());
    if !flags.contains_key("analytic-only") {
        println!("{}", e3_simulated_table3().to_text());
    }
}

fn cmd_experiments(wanted: &[String]) -> ExitCode {
    let registry = all_experiments();
    if !wanted.is_empty() {
        for w in wanted {
            if !registry.iter().any(|e| e.id.eq_ignore_ascii_case(w)) {
                eprintln!("unknown experiment '{w}' (valid: E1..E{})", registry.len());
                return ExitCode::from(2);
            }
        }
    }
    for exp in registry {
        if wanted.is_empty() || wanted.iter().any(|w| w.eq_ignore_ascii_case(exp.id)) {
            println!("{}", (exp.run)().to_text());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_export(dir: Option<&String>) -> ExitCode {
    let path =
        std::path::PathBuf::from(dir.cloned().unwrap_or_else(|| "target/experiments".into()));
    match hinet::analysis::artifacts::export_all(&path) {
        Ok(written) => {
            println!(
                "wrote artifacts for {} experiments under {}",
                written.len(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::from(1)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn cmd_run(flags: &BTreeMap<String, String>) -> ExitCode {
    let n = flag_usize(flags, "n", 100);
    let k = flag_usize(flags, "k", 8);
    let alpha = flag_usize(flags, "alpha", 5);
    let l = flag_usize(flags, "l", 2);
    let theta = flag_usize(flags, "theta", (n / 3).max(1));
    let seed = flag_usize(flags, "seed", 42) as u64;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("alg1");
    let dynamics = flags.get("dynamics").map(String::as_str).unwrap_or("hinet");

    let t = required_phase_length(k, alpha, l);
    let assignment = round_robin_assignment(n, k);
    let budget = 4 * n + 4 * t;

    // RLNC runs on its own executor.
    if algorithm == "rlnc" {
        let mut provider: Box<dyn hinet::graph::trace::TopologyProvider> = match dynamics {
            "flat-1" | "hinet" => Box::new(OneIntervalGen::new(n, true, n / 5, seed)),
            "flat-t" => Box::new(TIntervalGen::new(n, t, BackboneKind::Path, n / 5, seed)),
            "waypoint" => Box::new(RandomWaypointGen::new(n, WaypointConfig::default(), seed)),
            "manhattan" => Box::new(ManhattanGen::new(n, ManhattanConfig::default(), seed)),
            "emdg" => Box::new(EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed)),
            other => {
                eprintln!("unknown dynamics '{other}'");
                return ExitCode::from(2);
            }
        };
        let r = hinet::core::netcode::run_rlnc(provider.as_mut(), &assignment, budget, seed);
        println!("algorithm: rlnc  dynamics: {dynamics}  n={n} k={k} seed={seed}");
        println!(
            "completed: {}  rounds: {:?}  coded packets: {}",
            r.completed(),
            r.completion_round,
            r.packets_sent
        );
        return ExitCode::SUCCESS;
    }

    let kind = match algorithm {
        "alg1" => AlgorithmKind::HiNetPhased(alg1_plan(k, alpha, l, theta)),
        "remark1" => AlgorithmKind::HiNetRemark1(PhasePlan {
            rounds_per_phase: t,
            phases: remark1_phases(theta, alpha),
        }),
        "alg2" => AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
        "alg2-mh" => AlgorithmKind::HiNetFullExchangeMH { rounds: n - 1 },
        "klo-phased" => AlgorithmKind::KloPhased(klo_plan(k, alpha, l, n)),
        "klo-flood" => AlgorithmKind::KloFlood { rounds: n - 1 },
        "gossip" => AlgorithmKind::Gossip {
            rounds: budget,
            seed,
        },
        "kactive" => AlgorithmKind::KActiveFlood {
            activity: n / 2,
            rounds: budget,
        },
        "delta" => AlgorithmKind::DeltaFlood { rounds: budget },
        other => {
            eprintln!("unknown algorithm '{other}'");
            return ExitCode::from(2);
        }
    };

    let mut provider: Box<dyn HierarchyProvider> = match dynamics {
        "hinet" => {
            let num_heads = (theta / 2).clamp(1, theta);
            Box::new(HiNetGen::new(HiNetConfig {
                n,
                num_heads,
                theta,
                l,
                t: if matches!(kind, AlgorithmKind::HiNetFullExchange { .. }) {
                    1
                } else {
                    t
                },
                reaffil_prob: 0.1,
                rotate_heads: true,
                noise_edges: n / 5,
                seed,
            }))
        }
        "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
            n,
            t,
            BackboneKind::Path,
            n / 5,
            seed,
        ))),
        "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
        "waypoint" => Box::new(ClusteredMobilityGen::new(
            RandomWaypointGen::new(n, WaypointConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "manhattan" => Box::new(ClusteredMobilityGen::new(
            ManhattanGen::new(n, ManhattanConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "emdg" => Box::new(ClusteredMobilityGen::new(
            EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
            ClusteringKind::GreedyDominating,
            true,
        )),
        other => {
            eprintln!("unknown dynamics '{other}'");
            return ExitCode::from(2);
        }
    };

    let report = run_algorithm(
        &kind,
        provider.as_mut(),
        &assignment,
        RunConfig {
            max_rounds: budget,
            ..RunConfig::default()
        },
    );
    println!(
        "algorithm: {}  dynamics: {dynamics}  n={n} k={k} α={alpha} L={l} θ={theta} seed={seed}",
        kind.label()
    );
    println!(
        "completed: {}  rounds: {}",
        report.completed(),
        report
            .completion_round
            .map_or("never".into(), |r| r.to_string())
    );
    println!(
        "tokens sent: {}  packets: {}  (heads {}, gateways {}, members {})",
        report.metrics.tokens_sent,
        report.metrics.packets_sent,
        report.metrics.tokens_by_role[0],
        report.metrics.tokens_by_role[1],
        report.metrics.tokens_by_role[2],
    );
    ExitCode::SUCCESS
}

fn cmd_audit(flags: &BTreeMap<String, String>) -> ExitCode {
    use hinet::cluster::audit::audit;
    use hinet::cluster::ctvg::CtvgTrace;

    let n = flag_usize(flags, "n", 60);
    let rounds = flag_usize(flags, "rounds", 36);
    let seed = flag_usize(flags, "seed", 42) as u64;
    let dynamics = flags.get("dynamics").map(String::as_str).unwrap_or("hinet");

    let mut provider: Box<dyn HierarchyProvider> = match dynamics {
        "hinet" => Box::new(HiNetGen::new(HiNetConfig {
            n,
            num_heads: (n / 8).max(1),
            theta: (n / 4).max(1),
            l: 2,
            t: 6,
            reaffil_prob: 0.15,
            rotate_heads: true,
            noise_edges: n / 5,
            seed,
        })),
        "flat-t" => Box::new(FlatProvider::new(TIntervalGen::new(
            n,
            6,
            BackboneKind::Path,
            n / 5,
            seed,
        ))),
        "flat-1" => Box::new(FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed))),
        "waypoint" => Box::new(ClusteredMobilityGen::new(
            RandomWaypointGen::new(n, WaypointConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "manhattan" => Box::new(ClusteredMobilityGen::new(
            ManhattanGen::new(n, ManhattanConfig::default(), seed),
            ClusteringKind::LowestId,
            true,
        )),
        "emdg" => Box::new(ClusteredMobilityGen::new(
            EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed),
            ClusteringKind::GreedyDominating,
            true,
        )),
        other => {
            eprintln!("unknown dynamics '{other}'");
            return ExitCode::from(2);
        }
    };
    let trace = CtvgTrace::capture(provider.as_mut(), rounds);
    println!("stability audit: dynamics={dynamics} n={n} rounds={rounds} seed={seed}\n");
    println!("{}", audit(&trace).to_text());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    };
    let (positional, flags) = parse_flags(&args[1..]);
    match command.as_str() {
        "tables" => {
            cmd_tables(&flags);
            ExitCode::SUCCESS
        }
        "experiments" => cmd_experiments(&positional),
        "export" => cmd_export(positional.first()),
        "run" => cmd_run(&flags),
        "audit" => cmd_audit(&flags),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{HELP}");
            ExitCode::from(2)
        }
    }
}
