//! Audit the stability properties (Definitions 2–8) of generated traces.
//!
//! For each dynamics generator, capture a trace and measure which model it
//! actually satisfies: per-round connectivity, the largest T-interval
//! connectivity (flat), the largest (T, L)-HiNet window, the minimal L,
//! and the churn statistics the cost model consumes.
//!
//! Run with: `cargo run --release --example stability_audit`

use hinet::analysis::report::Table;
use hinet::cluster::clustering::{ClusteringKind, GatewayPolicy, LccMobilityGen};
use hinet::cluster::ctvg::CtvgTrace;
use hinet::cluster::generators::{ClusteredMobilityGen, HiNetConfig, HiNetGen};
use hinet::cluster::reaffiliation::churn_stats;
use hinet::cluster::stability::{max_hinet_t, min_hinet_l};
use hinet::graph::generators::{ManhattanConfig, ManhattanGen, RandomWaypointGen, WaypointConfig};
use hinet::graph::verify::{is_always_connected, max_interval_connectivity};

fn audit(label: &str, trace: &CtvgTrace, table: &mut Table) {
    trace.validate().expect("hierarchy valid");
    let always = is_always_connected(trace.topology());
    let flat_t = max_interval_connectivity(trace.topology());
    let l = min_hinet_l(trace, 1);
    let hinet_t = l.and_then(|l| max_hinet_t(trace, l));
    let stats = churn_stats(trace);
    table.push_row(vec![
        label.into(),
        always.to_string(),
        flat_t.map_or("—".into(), |t| t.to_string()),
        l.map_or("—".into(), |l| l.to_string()),
        hinet_t.map_or("—".into(), |t| t.to_string()),
        stats.distinct_heads.to_string(),
        format!("{:.1}", stats.mean_members),
        format!("{:.2}", stats.mean_reaffiliations),
    ]);
}

fn main() {
    let rounds = 36;
    let mut table = Table::new(
        format!("Stability audit over {rounds}-round traces"),
        &[
            "generator",
            "1-interval conn.",
            "max flat T",
            "min L",
            "max HiNet T",
            "θ measured",
            "n_m",
            "n_r",
        ],
    );

    // Constructed (T, L)-HiNet, stable within windows of 6.
    let mut constructed = HiNetGen::new(HiNetConfig {
        n: 60,
        num_heads: 6,
        theta: 15,
        l: 2,
        t: 6,
        reaffil_prob: 0.15,
        rotate_heads: true,
        noise_edges: 10,
        seed: 1,
    });
    audit(
        "constructed (6, 2)-HiNet",
        &CtvgTrace::capture(&mut constructed, rounds),
        &mut table,
    );

    // Constructed (1, L)-HiNet: hierarchy may change every round.
    let mut volatile = HiNetGen::new(HiNetConfig {
        n: 60,
        num_heads: 6,
        theta: 15,
        l: 2,
        t: 1,
        reaffil_prob: 0.3,
        rotate_heads: true,
        noise_edges: 10,
        seed: 2,
    });
    audit(
        "constructed (1, 2)-HiNet",
        &CtvgTrace::capture(&mut volatile, rounds),
        &mut table,
    );

    // Emergent: slow mobility + lowest-ID clustering, sticky maintenance.
    let slow = RandomWaypointGen::new(
        60,
        WaypointConfig {
            radius: 0.3,
            min_speed: 0.001,
            max_speed: 0.008,
            ensure_connected: true,
        },
        3,
    );
    let mut emergent_slow = ClusteredMobilityGen::new(slow, ClusteringKind::LowestId, true);
    audit(
        "emergent, slow mobility (sticky lowest-ID)",
        &CtvgTrace::capture(&mut emergent_slow, rounds),
        &mut table,
    );

    // Emergent: fast mobility — stability collapses.
    let fast = RandomWaypointGen::new(
        60,
        WaypointConfig {
            radius: 0.3,
            min_speed: 0.05,
            max_speed: 0.15,
            ensure_connected: true,
        },
        4,
    );
    let mut emergent_fast = ClusteredMobilityGen::new(fast, ClusteringKind::HighestDegree, false);
    audit(
        "emergent, fast mobility (fresh highest-degree)",
        &CtvgTrace::capture(&mut emergent_fast, rounds),
        &mut table,
    );

    // Same fast mobility, but with LCC incremental maintenance.
    let fast2 = RandomWaypointGen::new(
        60,
        WaypointConfig {
            radius: 0.3,
            min_speed: 0.05,
            max_speed: 0.15,
            ensure_connected: true,
        },
        4,
    );
    let mut lcc = LccMobilityGen::new(fast2, GatewayPolicy::MinimalPairwise);
    audit(
        "emergent, fast mobility (LCC maintenance)",
        &CtvgTrace::capture(&mut lcc, rounds),
        &mut table,
    );

    // Manhattan-grid vehicular mobility with LCC.
    let city = ManhattanGen::new(
        60,
        ManhattanConfig {
            streets: 5,
            radius: 0.25,
            speed_blocks: 0.15,
            ensure_connected: true,
        },
        5,
    );
    let mut city_lcc = LccMobilityGen::new(city, GatewayPolicy::MinimalPairwise);
    audit(
        "Manhattan vehicular mobility (LCC maintenance)",
        &CtvgTrace::capture(&mut city_lcc, rounds),
        &mut table,
    );

    println!("{}", table.to_text());
    println!(
        "Constructed generators meet their declared (T, L) exactly, while emergent \
         hierarchies land in the (1, L) regime that Algorithm 2 targets. The \
         maintenance protocol matters enormously: under the same fast mobility, \
         fresh re-clustering churns the hierarchy orders of magnitude harder than \
         LCC repair (compare the n_r columns) — stability is produced by the \
         clustering layer, exactly as the paper's model assumes."
    );
}
