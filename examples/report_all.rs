//! Run every registered experiment (E1–E17) and print the full report —
//! the markdown form of this output is the body of EXPERIMENTS.md.
//!
//! Run with: `cargo run --release --example report_all [--markdown]`

use hinet::analysis::all_experiments;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    for exp in all_experiments() {
        let result = (exp.run)();
        if markdown {
            println!("{}", result.to_markdown());
        } else {
            println!("{}", result.to_text());
        }
    }
}
