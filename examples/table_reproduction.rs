//! Reproduce the paper's evaluation tables.
//!
//! Prints E1 (Table 2, closed forms), E2 (Table 3, paper vs formulas) and —
//! unless `--analytic-only` is passed — E3 (Table 3 executed on the
//! simulator, measured vs analytic).
//!
//! Run with: `cargo run --release --example table_reproduction`

use hinet::analysis::experiments::{e1_table2, e2_table3, e3_simulated_table3};

fn main() {
    let analytic_only = std::env::args().any(|a| a == "--analytic-only");

    println!("{}", e1_table2().to_text());
    println!("{}", e2_table3().to_text());
    if analytic_only {
        println!("(skipping simulated E3; drop --analytic-only to include it)");
    } else {
        println!("{}", e3_simulated_table3().to_text());
    }
}
