//! Run the parameter-sweep experiments (E5–E10) and print their tables.
//!
//! These are the "figures" the paper's analysis implies but never measured:
//! cost versus n₀, k, α, L and churn, plus the headline reduction grid.
//!
//! Run with: `cargo run --release --example sweeps [E5 E9 ...]`
//! With no arguments every sweep runs (takes a minute or two).

use hinet::analysis::all_experiments;

fn main() {
    let wanted: Vec<String> = std::env::args().skip(1).collect();
    let sweep_ids = ["E5", "E6", "E7", "E8", "E9", "E10"];
    for exp in all_experiments() {
        if !sweep_ids.contains(&exp.id) {
            continue;
        }
        if !wanted.is_empty() && !wanted.iter().any(|w| w.eq_ignore_ascii_case(exp.id)) {
            continue;
        }
        println!("{}", (exp.run)().to_text());
    }
}
