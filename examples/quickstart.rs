//! Quickstart: the Fig. 1 / Fig. 3 walkthrough.
//!
//! Builds a small clustered network shaped like the paper's Fig. 1 (two
//! clusters joined by a gateway), runs Algorithm 1 on it, and traces how a
//! token travels member → head → gateway → head → members, as the paper's
//! Fig. 3 illustrates.
//!
//! Run with: `cargo run --example quickstart`

use hinet::cluster::ctvg::{CtvgTrace, CtvgTraceProvider};
use hinet::cluster::hierarchy::{ClusterId, Hierarchy, Role};
use hinet::core::params::alg1_plan;
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::graph::NodeId;
use hinet::graph::trace::TvgTrace;
use hinet::graph::Graph;
use hinet::sim::engine::RunConfig;
use std::sync::Arc;

fn main() {
    // Fig. 1-like topology: cluster A = head 0 with members 1, 2;
    // gateway 3 on the path between the heads; cluster B = head 4 with
    // members 5, 6. Static here — the quickstart is about the algorithm's
    // mechanics, not the adversary.
    let n = 7;
    let graph = Graph::from_edges(n, [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (4, 6)]);

    let c0 = Some(ClusterId(NodeId(0)));
    let c4 = Some(ClusterId(NodeId(4)));
    let hierarchy = Hierarchy::new(
        vec![
            Role::Head,    // 0: head of cluster A
            Role::Member,  // 1
            Role::Member,  // 2
            Role::Gateway, // 3: forwards between the clusters
            Role::Head,    // 4: head of cluster B
            Role::Member,  // 5
            Role::Member,  // 6
        ],
        vec![c0, c0, c0, c0, c4, c4, c4],
    );
    hierarchy
        .validate(&graph)
        .expect("quickstart hierarchy is valid");
    println!(
        "network: n={n}, heads={:?}, L-hop head connectivity = {:?}",
        hierarchy.heads(),
        hierarchy.l_hop_connectivity(&graph)
    );

    // k = 3 tokens starting at members of cluster A and B.
    let mut assignment: Vec<Vec<hinet::sim::TokenId>> = vec![Vec::new(); n];
    assignment[1] = vec![hinet::sim::TokenId(0)]; // the Fig. 3 "token t" at node u
    assignment[5] = vec![hinet::sim::TokenId(1)];
    assignment[6] = vec![hinet::sim::TokenId(2)];
    let k = 3;

    // Static topology = ∞-interval stable; Theorem 1 applies with any α.
    // θ = 2 heads, α = 1, L = 2 → T = k + αL = 5, M = ⌈2/1⌉+1 = 3 phases.
    let plan = alg1_plan(k, 1, 2, hierarchy.heads().len());
    println!(
        "Algorithm 1 plan: T = {} rounds/phase, M = {} phases ({} rounds total)",
        plan.rounds_per_phase,
        plan.phases,
        plan.total_rounds()
    );

    let rounds = plan.total_rounds();
    let g = Arc::new(graph);
    let h = Arc::new(hierarchy);
    let trace = CtvgTrace::new(
        TvgTrace::new((0..rounds).map(|_| Arc::clone(&g)).collect()),
        (0..rounds).map(|_| Arc::clone(&h)).collect(),
    );
    let mut provider = CtvgTraceProvider::new(trace);

    let report = run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        RunConfig::new()
            .record_rounds(true)
            .record_messages(true)
            .validate_hierarchy(true),
    );

    println!();
    println!("completed: {}", report.completed());
    println!(
        "rounds to completion: {} (bound: {})",
        report
            .completion_round
            .expect("Theorem 1 guarantees completion"),
        plan.total_rounds()
    );
    println!(
        "tokens sent: {} (heads {}, gateways {}, members {})",
        report.metrics.tokens_sent,
        report.metrics.tokens_by_role[0],
        report.metrics.tokens_by_role[1],
        report.metrics.tokens_by_role[2]
    );
    println!();
    println!("per-round progression (informed nodes at round start / tokens sent):");
    for (r, m) in report.metrics.rounds.iter().enumerate() {
        println!(
            "  round {r:>2}: informed {} / 7, sent {}",
            m.informed_nodes, m.tokens_sent
        );
    }
    // The Fig. 3 walkthrough, reconstructed from the actual message log:
    // every transmission that carried token 0 (node 1's token), in order.
    println!();
    println!("the journey of token 0 (Fig. 3's token t), from the message log:");
    for m in report
        .metrics
        .log
        .iter()
        .filter(|m| m.tokens.contains(&hinet::sim::TokenId(0)))
    {
        let how = match m.to {
            None => "broadcast".to_string(),
            Some(t) => format!("unicast → node {t}"),
        };
        println!("  round {:>2}: node {} {how}", m.round, m.from);
    }
    println!();
    println!(
        "Member 1 pushed the token to head 0; head 0 broadcast it; gateway 3 \
         relayed it across the cluster boundary; head 4 broadcast it to members \
         5 and 6 — the member → head → gateway → head → members walk of Fig. 3."
    );
}
