//! Export every experiment's tables as markdown + CSV files.
//!
//! Run with: `cargo run --release --example export_results [output-dir]`
//! (default output: `target/experiments/`).

use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"));
    let written = hinet::analysis::artifacts::export_all(&dir).expect("export failed");
    let mut files = 0;
    for w in &written {
        files += 1 + w.csvs.len();
    }
    println!(
        "wrote {} files for {} experiments under {}",
        files,
        written.len(),
        dir.display()
    );
    for w in &written {
        println!("  {}", w.markdown.display());
    }
}
