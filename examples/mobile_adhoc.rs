//! Mobile ad hoc network scenario at the paper's Table 3 scale.
//!
//! Runs all four Table 2 rows — plus the Remark 1 variant — on constructed
//! (T, L)-HiNet / flat adversaries with the paper's parameters (n₀ = 100,
//! θ = 30, n_m ≈ 40, k = 8, α = 5, L = 2) and prints measured against
//! analytic costs.
//!
//! Run with: `cargo run --release --example mobile_adhoc`

use hinet::analysis::report::{fmt_pct, Table};
use hinet::analysis::scenarios;
use hinet::core::analysis::ModelParams;

fn main() {
    let p = ModelParams::table3();
    let p_1l = p.with_n_r(10);
    let seed = 424242;

    let mut rows = scenarios::run_all_rows(&p, &p_1l, seed);
    rows.push(scenarios::run_remark1(&p, seed));

    let mut table = Table::new(
        "MANET at Table 3 parameters — measured vs analytic",
        &[
            "network model",
            "analytic time",
            "measured time",
            "analytic comm",
            "measured comm",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.label.into(),
            r.analytic_time.to_string(),
            r.measured_time().to_string(),
            r.analytic_comm.to_string(),
            r.measured_comm().to_string(),
        ]);
    }
    println!("{}", table.to_text());

    let tl_reduction = 1.0 - rows[1].measured_comm() as f64 / rows[0].measured_comm() as f64;
    let ol_reduction = 1.0 - rows[3].measured_comm() as f64 / rows[2].measured_comm() as f64;
    println!(
        "measured communication reduction: {} in the (T, L) scenario, {} in the (1, L) scenario",
        fmt_pct(tl_reduction),
        fmt_pct(ol_reduction)
    );
    println!(
        "time: HiNet completes in {} vs KLO {} rounds under (k+αL)-interval dynamics",
        rows[1].measured_time(),
        rows[0].measured_time()
    );
}
