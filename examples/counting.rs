//! Counting and function computation over dynamic networks — the classic
//! *application* of k-token dissemination (Kuhn–Lynch–Oshman build their
//! counting/consensus results on exactly this primitive).
//!
//! Every node contributes one token encoding its identity (and, in the
//! second part, a sensor reading packed into the token id). After
//! dissemination completes, every node holds all n tokens and can locally
//! compute n (counting), the maximum reading (aggregation), or any other
//! function of the full input — with the hierarchical algorithm paying far
//! fewer transmissions than flooding for the same result.
//!
//! Run with: `cargo run --release --example counting`

use hinet::cluster::ctvg::FlatProvider;
use hinet::cluster::generators::{HiNetConfig, HiNetGen};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::OneIntervalGen;
use hinet::sim::engine::RunConfig;
use hinet::sim::TokenId;

fn main() {
    let n = 80;
    let seed = 7;

    // Each node's initial token is its own id → k = n.
    let ids: Vec<Vec<TokenId>> = (0..n).map(|u| vec![TokenId(u as u64)]).collect();

    // Hierarchical dissemination on a (1, L)-HiNet.
    let mut hinet = HiNetGen::new(HiNetConfig {
        n,
        num_heads: n / 6,
        theta: n / 3,
        l: 2,
        t: 1,
        reaffil_prob: 0.1,
        rotate_heads: true,
        noise_edges: n / 5,
        seed,
    });
    let alg2 = run_algorithm(
        &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
        &mut hinet,
        &ids,
        RunConfig::default(),
    );

    // Flat flooding on comparable worst-case dynamics.
    let mut flat = FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed));
    let flood = run_algorithm(
        &AlgorithmKind::KloFlood { rounds: n - 1 },
        &mut flat,
        &ids,
        RunConfig::default(),
    );

    println!("counting n over a dynamic network (every node's id is a token, k = n = {n})");
    println!();
    for (label, r) in [
        ("Algorithm 2 on (1,L)-HiNet", &alg2),
        ("KLO flooding (flat)", &flood),
    ] {
        assert!(r.completed(), "{label} must complete");
        println!(
            "  {label}: every node counted n = {} in {} rounds, {} tokens sent",
            r.k,
            r.completion_round.unwrap(),
            r.metrics.tokens_sent
        );
    }
    let saving = 1.0 - alg2.metrics.tokens_sent as f64 / flood.metrics.tokens_sent as f64;
    println!(
        "  hierarchy saves {:.1}% of transmissions for the identical result",
        saving * 100.0
    );

    // Aggregation: pack a sensor reading into the token id's high bits —
    // once dissemination completes, max/min/mean are local computations.
    println!();
    let readings: Vec<Vec<TokenId>> = (0..n)
        .map(|u| {
            // Deterministic pseudo-reading in 0..1000.
            let reading = (u as u64).wrapping_mul(2654435761) % 1000;
            vec![TokenId(reading << 32 | u as u64)]
        })
        .collect();
    let expected_max = readings.iter().flatten().map(|t| t.0 >> 32).max().unwrap();
    let mut hinet = HiNetGen::new(HiNetConfig {
        n,
        num_heads: n / 6,
        theta: n / 3,
        l: 2,
        t: 1,
        reaffil_prob: 0.1,
        rotate_heads: true,
        noise_edges: n / 5,
        seed,
    });
    let mut protocols = AlgorithmKind::HiNetFullExchange { rounds: n - 1 }.build(n);
    let report = hinet::sim::Engine::with_defaults().run(&mut hinet, &mut protocols, &readings);
    assert!(report.completed());
    // Every node can now compute the aggregate locally; check node 0.
    let node0_max = protocols[0]
        .known()
        .iter()
        .map(|t| t.0 >> 32)
        .max()
        .unwrap();
    println!(
        "aggregation: node 0 computed max sensor reading = {node0_max} (truth: {expected_max}) \
         after {} rounds",
        report.completion_round.unwrap()
    );
    assert_eq!(node0_max, expected_max);
}
