//! Wireless-sensor-field scenario: emergent clusters under mobility.
//!
//! The paper motivates communication efficiency with resource-constrained
//! WSN/MANET deployments. This example builds that scenario bottom-up: a
//! random-waypoint mobility field, a clustering protocol deriving the
//! hierarchy each round (with sticky maintenance), and four dissemination
//! algorithms racing on *identical* dynamics. No stability is constructed —
//! whatever (T, L) the trace happens to satisfy is measured and reported.
//!
//! Run with: `cargo run --release --example sensor_field`

use hinet::analysis::report::Table;
use hinet::cluster::clustering::ClusteringKind;
use hinet::cluster::ctvg::{CtvgTrace, CtvgTraceProvider, FlatProvider};
use hinet::cluster::generators::ClusteredMobilityGen;
use hinet::cluster::reaffiliation::churn_stats;
use hinet::cluster::stability::{max_hinet_t, min_hinet_l};
use hinet::core::runner::{run_algorithm, AlgorithmKind};
use hinet::graph::generators::{RandomWaypointGen, WaypointConfig};
use hinet::sim::engine::RunConfig;
use hinet::sim::token::round_robin_assignment;

fn field(seed: u64) -> RandomWaypointGen {
    RandomWaypointGen::new(
        80,
        WaypointConfig {
            radius: 0.22,
            min_speed: 0.002,
            max_speed: 0.015,
            ensure_connected: true,
        },
        seed,
    )
}

fn main() {
    let n = 80;
    let k = 10;
    let seed = 20260706;
    let assignment = round_robin_assignment(n, k);
    let rounds_budget = n - 1;

    // First, audit the emergent stability of the clustered trace.
    let mut clustered = ClusteredMobilityGen::new(field(seed), ClusteringKind::LowestId, true);
    let trace = CtvgTrace::capture(&mut clustered, rounds_budget);
    trace
        .validate()
        .expect("derived hierarchy valid every round");
    let stats = churn_stats(&trace);
    let min_l = min_hinet_l(&trace, 1);
    println!(
        "sensor field: n={n}, k={k}, {} rounds of random-waypoint mobility",
        rounds_budget
    );
    println!(
        "emergent hierarchy: θ_measured={} (distinct heads), max concurrent heads={}, \
         mean members/round={:.1}, re-affiliations/member={:.2}",
        stats.distinct_heads,
        stats.max_concurrent_heads,
        stats.mean_members,
        stats.mean_reaffiliations
    );
    println!(
        "emergent stability: largest T with (T, L)-HiNet = {:?} (L from per-round audit: {:?})",
        min_l.and_then(|l| max_hinet_t(&trace, l)),
        min_l
    );
    println!();

    // Race the algorithms on identical dynamics.
    let mut results = Table::new(
        "Dissemination on the sensor field (identical dynamics per row)",
        &["algorithm", "completed", "rounds", "tokens sent", "packets"],
    );
    let contenders: Vec<(&str, AlgorithmKind, bool)> = vec![
        (
            "Algorithm 2 over lowest-ID clusters",
            AlgorithmKind::HiNetFullExchange {
                rounds: rounds_budget,
            },
            true,
        ),
        (
            "KLO full flooding (flat)",
            AlgorithmKind::KloFlood {
                rounds: rounds_budget,
            },
            false,
        ),
        (
            "push gossip (flat)",
            AlgorithmKind::Gossip {
                rounds: rounds_budget * 4,
                seed,
            },
            false,
        ),
        (
            "k-active flooding (flat, activity=8)",
            AlgorithmKind::KActiveFlood {
                activity: 8,
                rounds: rounds_budget * 4,
            },
            false,
        ),
    ];
    for (label, kind, clustered_run) in contenders {
        let report = if clustered_run {
            let mut provider = CtvgTraceProvider::new(trace.clone());
            run_algorithm(
                &kind,
                &mut provider,
                &assignment,
                RunConfig::new().stop_on_completion(false),
            )
        } else {
            let mut provider = FlatProvider::new(field(seed));
            run_algorithm(
                &kind,
                &mut provider,
                &assignment,
                RunConfig::new().stop_on_completion(false),
            )
        };
        results.push_row(vec![
            label.into(),
            report.completed().to_string(),
            report
                .completion_round
                .map_or("—".into(), |r| r.to_string()),
            report.metrics.tokens_sent.to_string(),
            report.metrics.packets_sent.to_string(),
        ]);
    }

    // Network coding runs outside the token-payload protocol interface.
    let mut coded_field = field(seed);
    let rlnc = hinet::core::netcode::run_rlnc(
        &mut coded_field,
        &assignment,
        seed,
        hinet::sim::engine::RunConfig::new().max_rounds(rounds_budget),
    );
    results.push_row(vec![
        "RLNC network coding (flat)".into(),
        rlnc.completed().to_string(),
        rlnc.completion_round.map_or("—".into(), |r| r.to_string()),
        rlnc.packets_sent.to_string(),
        rlnc.packets_sent.to_string(),
    ]);
    println!("{}", results.to_text());
    println!(
        "The cluster hierarchy cuts token traffic by suppressing member broadcasts; \
         gossip and k-active flooding trade completeness guarantees for cheapness."
    );
}
