//! Cluster-based time-varying graphs (CTVG, Definition 1).
//!
//! A CTVG couples the topology trace (`V, E, Γ, ρ`) with the per-round
//! hierarchy functions (`C`, `I`). [`HierarchyProvider`] is the streaming
//! form consumed by the simulator; [`CtvgTrace`] the materialised form
//! consumed by the stability verifiers.

use crate::hierarchy::Hierarchy;
use hinet_graph::trace::{TopologyProvider, TvgTrace};
use hinet_graph::Graph;
use std::sync::Arc;

/// Streaming source of per-round `(topology, hierarchy)` pairs.
///
/// Like [`TopologyProvider`], `hierarchy_at` must be deterministic per round.
pub trait HierarchyProvider: TopologyProvider {
    /// Hierarchy in force during round `round`.
    fn hierarchy_at(&mut self, round: usize) -> Arc<Hierarchy>;
}

/// A finite, materialised CTVG trace.
#[derive(Clone, Debug)]
pub struct CtvgTrace {
    topology: TvgTrace,
    hierarchies: Vec<Arc<Hierarchy>>,
}

impl CtvgTrace {
    /// Couple a topology trace with per-round hierarchies.
    ///
    /// # Panics
    /// Panics if lengths differ or any hierarchy covers a different node
    /// count than the topology.
    pub fn new(topology: TvgTrace, hierarchies: Vec<Arc<Hierarchy>>) -> Self {
        assert_eq!(
            topology.len(),
            hierarchies.len(),
            "one hierarchy per round required"
        );
        assert!(
            hierarchies.iter().all(|h| h.n() == topology.n()),
            "hierarchy node count must match topology"
        );
        CtvgTrace {
            topology,
            hierarchies,
        }
    }

    /// Materialise the first `len` rounds of a provider.
    pub fn capture(provider: &mut dyn HierarchyProvider, len: usize) -> Self {
        assert!(len > 0);
        let mut graphs = Vec::with_capacity(len);
        let mut hierarchies = Vec::with_capacity(len);
        for r in 0..len {
            graphs.push(provider.graph_at(r));
            hierarchies.push(provider.hierarchy_at(r));
        }
        CtvgTrace {
            topology: TvgTrace::new(graphs),
            hierarchies,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.topology.n()
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// Underlying topology trace.
    pub fn topology(&self) -> &TvgTrace {
        &self.topology
    }

    /// Topology snapshot at `round`.
    pub fn graph(&self, round: usize) -> &Arc<Graph> {
        self.topology.graph(round)
    }

    /// Hierarchy at `round`.
    pub fn hierarchy(&self, round: usize) -> &Arc<Hierarchy> {
        &self.hierarchies[round]
    }

    /// Iterator over `(graph, hierarchy)` pairs in round order.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<Graph>, &Arc<Hierarchy>)> {
        self.topology.iter().zip(self.hierarchies.iter())
    }

    /// Validate every round's hierarchy against its graph.
    pub fn validate(&self) -> Result<(), (usize, crate::hierarchy::HierarchyError)> {
        for (r, (g, h)) in self.iter().enumerate() {
            h.validate(g).map_err(|e| (r, e))?;
        }
        Ok(())
    }
}

/// Replay a materialised CTVG trace as a provider (clamping past the end,
/// mirroring [`hinet_graph::trace::TraceProvider`]).
#[derive(Clone, Debug)]
pub struct CtvgTraceProvider {
    trace: CtvgTrace,
}

impl CtvgTraceProvider {
    /// Wrap a trace.
    pub fn new(trace: CtvgTrace) -> Self {
        CtvgTraceProvider { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &CtvgTrace {
        &self.trace
    }
}

impl TopologyProvider for CtvgTraceProvider {
    fn n(&self) -> usize {
        self.trace.n()
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        let idx = round.min(self.trace.len() - 1);
        Arc::clone(self.trace.graph(idx))
    }
}

impl HierarchyProvider for CtvgTraceProvider {
    fn hierarchy_at(&mut self, round: usize) -> Arc<Hierarchy> {
        let idx = round.min(self.trace.len() - 1);
        Arc::clone(self.trace.hierarchy(idx))
    }
}

/// Adapter giving any flat [`TopologyProvider`] a trivial hierarchy in
/// which **every node is its own cluster head**.
///
/// The flat baselines (Kuhn–Lynch–Oshman) predate clusters and ignore the
/// hierarchy entirely, but the engine's interface requires one; the
/// all-heads hierarchy is valid against every possible graph (it has no
/// member-adjacency obligations) and is role-neutral for protocols that
/// branch on roles, since `Head` is the broadcast-everything role in both
/// of the paper's algorithms.
#[derive(Clone, Debug)]
pub struct FlatProvider<P> {
    inner: P,
    hierarchy: Arc<Hierarchy>,
}

impl<P: TopologyProvider> FlatProvider<P> {
    /// Wrap a topology provider.
    pub fn new(inner: P) -> Self {
        use crate::hierarchy::{ClusterId, Role};
        use hinet_graph::graph::NodeId;
        let n = inner.n();
        let roles = vec![Role::Head; n];
        let cluster_of = (0..n)
            .map(|i| Some(ClusterId(NodeId::from_index(i))))
            .collect();
        FlatProvider {
            inner,
            hierarchy: Arc::new(Hierarchy::new(roles, cluster_of)),
        }
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: TopologyProvider> TopologyProvider for FlatProvider<P> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        self.inner.graph_at(round)
    }
}

impl<P: TopologyProvider> HierarchyProvider for FlatProvider<P> {
    fn hierarchy_at(&mut self, _round: usize) -> Arc<Hierarchy> {
        Arc::clone(&self.hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::single_cluster;
    use hinet_graph::graph::NodeId;

    fn star_trace(len: usize) -> CtvgTrace {
        let g = Arc::new(Graph::star(5));
        let h = Arc::new(single_cluster(5, NodeId(0)));
        let t = TvgTrace::new((0..len).map(|_| Arc::clone(&g)).collect());
        CtvgTrace::new(t, (0..len).map(|_| Arc::clone(&h)).collect())
    }

    #[test]
    fn accessors_and_validation() {
        let t = star_trace(4);
        assert_eq!(t.n(), 5);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.hierarchy(2).heads(), &[NodeId(0)]);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn validate_reports_round_of_failure() {
        let g_ok = Arc::new(Graph::star(4));
        let g_bad = Arc::new(Graph::path(4)); // node 3 not adjacent to 0
        let h = Arc::new(single_cluster(4, NodeId(0)));
        let t = TvgTrace::new(vec![Arc::clone(&g_ok), g_bad]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h), h]);
        let err = trace.validate().unwrap_err();
        assert_eq!(err.0, 1, "failure should be attributed to round 1");
    }

    #[test]
    #[should_panic(expected = "one hierarchy per round")]
    fn new_rejects_length_mismatch() {
        let g = Arc::new(Graph::star(5));
        let h = Arc::new(single_cluster(5, NodeId(0)));
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let _ = CtvgTrace::new(t, vec![h]);
    }

    #[test]
    fn provider_clamps() {
        let mut p = CtvgTraceProvider::new(star_trace(2));
        assert_eq!(p.n(), 5);
        assert!(Arc::ptr_eq(&p.hierarchy_at(1), &p.hierarchy_at(50)));
        assert!(Arc::ptr_eq(&p.graph_at(1), &p.graph_at(50)));
    }

    #[test]
    fn capture_roundtrips() {
        let mut p = CtvgTraceProvider::new(star_trace(3));
        let t = CtvgTrace::capture(&mut p, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn flat_provider_all_heads_and_always_valid() {
        use hinet_graph::trace::StaticProvider;
        let mut p = FlatProvider::new(StaticProvider::new(Graph::path(4)));
        assert_eq!(p.n(), 4);
        let h = p.hierarchy_at(0);
        assert_eq!(h.heads().len(), 4);
        let trace = CtvgTrace::capture(&mut p, 3);
        assert_eq!(trace.validate(), Ok(()));
    }
}
