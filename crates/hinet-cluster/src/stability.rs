//! Verifiers for the paper's stability definitions (Definitions 2–8).
//!
//! # Windowing contract
//!
//! Algorithm 1 runs in phases aligned to round `0, T, 2T, …`, and the
//! paper's stability quantifiers (`∀ i, j ∈ [0, T−1]`) describe one such
//! window. The two verifier families in this module differ **only** in how
//! they place windows, and every implementation (batch and the streaming
//! [`stream`] module) honours the same contract:
//!
//! * **Aligned** verifiers (`is_*_t_stable`, [`is_t_l_hinet`],
//!   [`trace_stability_windows`], [`max_hinet_t`], [`min_hinet_l`]) check
//!   the windows `[wT, min((w+1)T, len))`. A trailing partial window —
//!   when the trace length is not a multiple of `T` — **is checked**, not
//!   dropped: the paper's predicate constrains every phase an algorithm
//!   can start, including one the trace cuts short. Aligned verifiers
//!   accept any `t ≥ 1`, even `t > len` (one partial window).
//! * **Sliding** verifiers (`is_*_t_stable_sliding`,
//!   [`max_hierarchy_stability_sliding`]) check every offset `[s, s+T)`
//!   with `s ≤ len − T` — full windows only, and they require
//!   `1 ≤ t ≤ len`. Strictly stronger than aligned: a change on an
//!   aligned boundary breaks a sliding window but no aligned one.
//!
//! The implication lattice of Fig. 2 — Def 8 ⇒ Def 4 ⇒ (Def 2 ∧ Def 3),
//! Def 8 ⇒ Def 7 ⇒ (Def 5 ∧ Def 6) — is exercised by this module's tests
//! and by property tests at the workspace level (experiment E4);
//! `tests/prop_stream.rs` additionally pins the streaming verdicts to the
//! batch ones pointwise.

/// One-pass streaming verification (constant memory per round).
pub mod stream;

use crate::ctvg::CtvgTrace;
use crate::hierarchy::{ClusterId, Hierarchy};
use hinet_graph::traversal::connects_all;
use hinet_graph::Graph;

/// Whether two hierarchies have the same *structure* in the sense of
/// Definition 4: identical head sets and identical cluster membership
/// functions `I`. Role flips between member and gateway do not count —
/// the paper's `M_k` and `V_h` are both insensitive to them.
pub fn same_structure(a: &Hierarchy, b: &Hierarchy) -> bool {
    if a.n() != b.n() || a.heads() != b.heads() {
        return false;
    }
    (0..a.n()).all(|i| {
        let u = hinet_graph::graph::NodeId::from_index(i);
        a.cluster_of(u) == b.cluster_of(u)
    })
}

/// Definition 2 on one window: the head set is constant on rounds
/// `[start, start+len)`.
pub fn head_set_stable_in_window(trace: &CtvgTrace, start: usize, len: usize) -> bool {
    let first = trace.hierarchy(start).heads();
    (start + 1..start + len).all(|r| trace.hierarchy(r).heads() == first)
}

/// Definition 3 on one window: cluster `k`'s member set `M_k` is constant.
pub fn cluster_stable_in_window(trace: &CtvgTrace, k: ClusterId, start: usize, len: usize) -> bool {
    let first = trace.hierarchy(start).members_of(k);
    (start + 1..start + len).all(|r| trace.hierarchy(r).members_of(k) == first)
}

/// Definition 4 on one window: the whole hierarchy structure is constant.
pub fn hierarchy_stable_in_window(trace: &CtvgTrace, start: usize, len: usize) -> bool {
    let first = trace.hierarchy(start);
    (start + 1..start + len).all(|r| same_structure(trace.hierarchy(r), first))
}

/// Definition 5 on one window: there is a connected subgraph `Υ` containing
/// all heads that is present in **every** round of the window — equivalently
/// the window's edge-intersection connects all heads (possibly through
/// non-head nodes).
///
/// The head set used is the window's first round's (under Def 8 the head set
/// is constant anyway; for standalone use this is documented behaviour).
pub fn head_connectivity_in_window(trace: &CtvgTrace, start: usize, len: usize) -> bool {
    let heads = trace.hierarchy(start).heads().to_vec();
    if heads.len() <= 1 {
        return true;
    }
    let inter = trace.topology().window_intersection(start, len);
    connects_all(&inter, &heads)
}

/// Definition 6/7 on one window: within the stable subgraph (the window's
/// edge-intersection) the heads have L-hop connectivity at most `l`.
pub fn l_hop_in_window(trace: &CtvgTrace, start: usize, len: usize, l: usize) -> bool {
    let h = trace.hierarchy(start);
    let inter = trace.topology().window_intersection(start, len);
    match h.l_hop_connectivity(&inter) {
        Some(actual) => actual <= l,
        None => false,
    }
}

/// Iterate aligned windows `[wT, min((w+1)T, len))` of a trace — including
/// the trailing partial window (see the module-level windowing contract).
fn aligned_windows(trace_len: usize, t: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..trace_len.div_ceil(t)).map(move |w| {
        let start = w * t;
        let len = t.min(trace_len - start);
        (start, len)
    })
}

/// Definition 2, trace-wide (aligned windows of length `t`).
pub fn is_head_set_t_stable(trace: &CtvgTrace, t: usize) -> bool {
    assert!(t >= 1);
    aligned_windows(trace.len(), t).all(|(s, l)| head_set_stable_in_window(trace, s, l))
}

/// Definition 4, trace-wide (aligned windows of length `t`).
pub fn is_hierarchy_t_stable(trace: &CtvgTrace, t: usize) -> bool {
    assert!(t >= 1);
    aligned_windows(trace.len(), t).all(|(s, l)| hierarchy_stable_in_window(trace, s, l))
}

/// Definition 7, trace-wide: every aligned window of length `t` has a stable
/// head-connecting subgraph with L-hop connectivity ≤ `l`.
pub fn has_t_interval_l_hop_connectivity(trace: &CtvgTrace, t: usize, l: usize) -> bool {
    assert!(t >= 1);
    aligned_windows(trace.len(), t).all(|(s, len)| {
        head_connectivity_in_window(trace, s, len) && l_hop_in_window(trace, s, len, l)
    })
}

/// Definition 8: the full (T, L)-HiNet predicate — T-interval stable
/// hierarchy (Def 4) **and** T-interval L-hop cluster-head connectivity
/// (Def 7), over aligned windows.
pub fn is_t_l_hinet(trace: &CtvgTrace, t: usize, l: usize) -> bool {
    is_hierarchy_t_stable(trace, t) && has_t_interval_l_hop_connectivity(trace, t, l)
}

/// Whether the head set never changes across the whole trace — the
/// ∞-interval stable head set of Remark 1.
pub fn is_head_set_forever_stable(trace: &CtvgTrace) -> bool {
    head_set_stable_in_window(trace, 0, trace.len())
}

/// Verify every aligned window of length `t` against the definition
/// lattice and emit paired [`hinet_rt::obs::Event::StabilityWindow`]
/// open/close events into `tracer` (open at the window's first round,
/// close at its last, both carrying the verdict).
///
/// Definitions traced per window: 2 (head set), 4 (hierarchy structure),
/// 5 (head connectivity), 6 (L-hop ≤ `l`), 7 (5 ∧ 6), and 8 (4 ∧ 7).
/// Definition 3 is per-cluster rather than per-window and is omitted.
/// The trailing partial window is traced like any other (module-level
/// windowing contract); the streaming [`stream::StabilityStream`] emits a
/// byte-identical event sequence. Returns the number of windows in which
/// **Definition 8** held.
pub fn trace_stability_windows(
    trace: &CtvgTrace,
    t: usize,
    l: usize,
    tracer: &mut hinet_rt::obs::Tracer,
) -> usize {
    assert!(t >= 1);
    let mut hinet_windows = 0;
    for (start, len) in aligned_windows(trace.len(), t) {
        let def2 = head_set_stable_in_window(trace, start, len);
        let def4 = hierarchy_stable_in_window(trace, start, len);
        let def5 = head_connectivity_in_window(trace, start, len);
        let def6 = l_hop_in_window(trace, start, len, l);
        let def7 = def5 && def6;
        let def8 = def4 && def7;
        if def8 {
            hinet_windows += 1;
        }
        let last = (start + len - 1) as u64;
        for (def, held) in [
            (2u8, def2),
            (4, def4),
            (5, def5),
            (6, def6),
            (7, def7),
            (8, def8),
        ] {
            tracer.stability_window(start as u64, def, true, held);
            tracer.stability_window(last, def, false, held);
        }
    }
    hinet_windows
}

/// **Sliding-window** variant of Definition 2: `true` iff *every* window
/// of `t` consecutive rounds (all offsets) has a constant head set.
///
/// Strictly stronger than the aligned [`is_head_set_t_stable`]: a single
/// change between adjacent rounds caps the sliding stability at 1, whereas
/// aligned windows tolerate changes at their boundaries. The aligned form
/// is what phase-based algorithms need; the sliding form is the honest
/// answer to "how stable is this trace, full stop".
///
/// # Panics
/// Panics unless `1 ≤ t ≤ trace.len()` — sliding windows are always full,
/// unlike the aligned family's trailing partial window.
pub fn is_head_set_t_stable_sliding(trace: &CtvgTrace, t: usize) -> bool {
    assert!(t >= 1 && t <= trace.len());
    (0..=trace.len() - t).all(|s| head_set_stable_in_window(trace, s, t))
}

/// Sliding-window variant of Definition 4 (full windows only; panics
/// unless `1 ≤ t ≤ trace.len()`).
pub fn is_hierarchy_t_stable_sliding(trace: &CtvgTrace, t: usize) -> bool {
    assert!(t >= 1 && t <= trace.len());
    (0..=trace.len() - t).all(|s| hierarchy_stable_in_window(trace, s, t))
}

/// Largest sliding-window hierarchy stability: the maximum `t` such that
/// every window of `t` consecutive rounds has an unchanged hierarchy.
/// Equals `1 +` the minimum gap between consecutive hierarchy changes
/// (and the trace length if the hierarchy never changes).
pub fn max_hierarchy_stability_sliding(trace: &CtvgTrace) -> usize {
    let mut min_run = trace.len();
    let mut run = 1;
    for r in 1..trace.len() {
        if same_structure(trace.hierarchy(r), trace.hierarchy(r - 1)) {
            run += 1;
        } else {
            min_run = min_run.min(run);
            run = 1;
        }
    }
    min_run.min(run)
}

/// Largest `t` such that the trace is a (t, l)-HiNet (aligned windows), or
/// `None` if not even (1, l).
pub fn max_hinet_t(trace: &CtvgTrace, l: usize) -> Option<usize> {
    let mut best = None;
    for t in 1..=trace.len() {
        if is_t_l_hinet(trace, t, l) {
            best = Some(t);
        }
    }
    best
}

/// Smallest `l` such that the trace has (t, l)-HiNet connectivity for the
/// given `t`, or `None` if heads are not connectable in some window.
pub fn min_hinet_l(trace: &CtvgTrace, t: usize) -> Option<usize> {
    let mut worst: usize = 0;
    for (s, len) in aligned_windows(trace.len(), t) {
        let h = trace.hierarchy(s);
        let inter: Graph = trace.topology().window_intersection(s, len);
        match h.l_hop_connectivity(&inter) {
            Some(l) => worst = worst.max(l),
            None => return None,
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{single_cluster, Role};
    use hinet_graph::graph::NodeId;
    use hinet_graph::trace::TvgTrace;
    use std::sync::Arc;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Two-cluster fixture on 6 nodes: heads 0 and 3, gateway chain 2
    /// (head 0 - member 2 as gateway - head 3), members 1 and 4, 5.
    fn fixture_hierarchy() -> Hierarchy {
        let roles = vec![
            Role::Head,
            Role::Member,
            Role::Gateway,
            Role::Head,
            Role::Member,
            Role::Member,
        ];
        let c0 = Some(ClusterId(nid(0)));
        let c3 = Some(ClusterId(nid(3)));
        Hierarchy::new(roles, vec![c0, c0, c0, c3, c3, c3])
    }

    fn fixture_graph() -> Graph {
        Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (3, 5)])
    }

    fn constant_trace(len: usize) -> CtvgTrace {
        let g = Arc::new(fixture_graph());
        let h = Arc::new(fixture_hierarchy());
        let t = TvgTrace::new((0..len).map(|_| Arc::clone(&g)).collect());
        CtvgTrace::new(t, (0..len).map(|_| Arc::clone(&h)).collect())
    }

    #[test]
    fn constant_trace_is_hinet_for_all_t() {
        let trace = constant_trace(6);
        assert!(trace.validate().is_ok());
        for t in 1..=6 {
            assert!(is_t_l_hinet(&trace, t, 2), "t={t}");
        }
        assert!(is_head_set_forever_stable(&trace));
        assert_eq!(max_hinet_t(&trace, 2), Some(6));
        assert_eq!(min_hinet_l(&trace, 3), Some(2));
    }

    #[test]
    fn l_threshold_is_sharp() {
        let trace = constant_trace(4);
        assert!(!has_t_interval_l_hop_connectivity(&trace, 2, 1));
        assert!(has_t_interval_l_hop_connectivity(&trace, 2, 2));
    }

    #[test]
    fn membership_change_breaks_hierarchy_stability_but_not_head_stability() {
        let g = Arc::new(Graph::complete(6));
        let h1 = Arc::new(fixture_hierarchy());
        // Move node 1 from cluster 0 to cluster 3.
        let roles = vec![
            Role::Head,
            Role::Member,
            Role::Gateway,
            Role::Head,
            Role::Member,
            Role::Member,
        ];
        let c0 = Some(ClusterId(nid(0)));
        let c3 = Some(ClusterId(nid(3)));
        let h2 = Arc::new(Hierarchy::new(roles, vec![c0, c3, c0, c3, c3, c3]));
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![h1, h2]);
        assert!(is_head_set_t_stable(&trace, 2));
        assert!(!is_hierarchy_t_stable(&trace, 2));
        assert!(!cluster_stable_in_window(&trace, ClusterId(nid(0)), 0, 2));
        // Per-round (t = 1) everything is trivially stable.
        assert!(is_hierarchy_t_stable(&trace, 1));
    }

    #[test]
    fn head_change_breaks_head_stability() {
        let g = Arc::new(Graph::complete(4));
        let h1 = Arc::new(single_cluster(4, nid(0)));
        let h2 = Arc::new(single_cluster(4, nid(1)));
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![h1, h2]);
        assert!(!is_head_set_t_stable(&trace, 2));
        assert!(!is_hierarchy_t_stable(&trace, 2));
        assert!(!is_head_set_forever_stable(&trace));
    }

    #[test]
    fn definition_lattice_implications() {
        // Def 8 ⇒ Def 4 ⇒ Def 2 & Def 3; Def 8 ⇒ Def 7.
        let trace = constant_trace(4);
        let (t, l) = (2, 2);
        assert!(is_t_l_hinet(&trace, t, l));
        assert!(is_hierarchy_t_stable(&trace, t), "Def 8 ⇒ Def 4");
        assert!(is_head_set_t_stable(&trace, t), "Def 4 ⇒ Def 2");
        for &head in trace.hierarchy(0).heads() {
            assert!(
                cluster_stable_in_window(&trace, ClusterId(head), 0, t),
                "Def 4 ⇒ Def 3 for cluster {head}"
            );
        }
        assert!(
            has_t_interval_l_hop_connectivity(&trace, t, l),
            "Def 8 ⇒ Def 7"
        );
        assert!(head_connectivity_in_window(&trace, 0, t), "Def 7 ⇒ Def 5");
        assert!(l_hop_in_window(&trace, 0, t, l), "Def 7 ⇒ Def 6");
    }

    #[test]
    fn churning_backbone_breaks_head_connectivity() {
        // Round 0 connects heads through node 2; round 1 through node 1 —
        // each round connected, but no stable connecting subgraph.
        let h = Arc::new(fixture_hierarchy());
        let g0 = Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (3, 5)]);
        let g1 = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5)]);
        let t = TvgTrace::new(vec![Arc::new(g0), Arc::new(g1)]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h), h]);
        assert!(head_connectivity_in_window(&trace, 0, 1));
        assert!(head_connectivity_in_window(&trace, 1, 1));
        assert!(!head_connectivity_in_window(&trace, 0, 2));
        assert!(!is_t_l_hinet(&trace, 2, 3));
        assert!(is_t_l_hinet(&trace, 1, 2));
    }

    #[test]
    fn trailing_partial_window_checked() {
        // Length-5 trace with t=2: windows [0,2), [2,4), [4,5).
        let trace = constant_trace(5);
        assert!(is_t_l_hinet(&trace, 2, 2));
    }

    #[test]
    fn violation_only_in_trailing_partial_window_is_caught() {
        // Length 5 with t = 3: windows [0,3) and the partial [3,5). The
        // head set changes only at round 4 — inside the partial window —
        // so dropping it would wrongly certify the trace (regression for
        // the module-level windowing contract, mirrored by the streaming
        // verifier in `stream`).
        let g = Arc::new(Graph::complete(4));
        let h1 = Arc::new(single_cluster(4, nid(0)));
        let h2 = Arc::new(single_cluster(4, nid(1)));
        let hs = vec![
            Arc::clone(&h1),
            Arc::clone(&h1),
            Arc::clone(&h1),
            Arc::clone(&h1),
            h2,
        ];
        let t = TvgTrace::new((0..5).map(|_| Arc::clone(&g)).collect());
        let trace = CtvgTrace::new(t, hs);
        assert!(!is_head_set_t_stable(&trace, 3));
        assert!(!is_hierarchy_t_stable(&trace, 3));
        assert!(!is_t_l_hinet(&trace, 3, 1));
        // t = 4 still works: the change round (4) sits on its boundary.
        assert_eq!(max_hinet_t(&trace, 1), Some(4));

        // The streaming verifier agrees verdict-for-verdict.
        let mut s = stream::StabilityStream::new(3, 1).with_spectrum();
        let mut verdicts = s.push_chunk(trace.iter());
        let (last, report) = s.finish();
        verdicts.extend(last);
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].def8);
        assert!(!verdicts[1].def2 && !verdicts[1].def8);
        assert_eq!(report.max_hinet_t(1), Some(4));
        let v = report.violation.unwrap();
        assert_eq!((v.def, v.window_start, v.round), (2, 3, 4));
    }

    #[test]
    fn sliding_stability_stricter_than_aligned() {
        // Hierarchy changes exactly at round 2 of a 4-round trace: aligned
        // windows of length 2 are stable, sliding windows of length 2 are
        // not (the window [1, 3) straddles the change).
        let g = Arc::new(Graph::complete(4));
        let h1 = Arc::new(single_cluster(4, nid(0)));
        let h2 = Arc::new(single_cluster(4, nid(1)));
        let t = TvgTrace::new(vec![Arc::clone(&g), Arc::clone(&g), Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h1), h1, Arc::clone(&h2), h2]);
        assert!(
            is_hierarchy_t_stable(&trace, 2),
            "aligned: change on boundary"
        );
        assert!(!is_hierarchy_t_stable_sliding(&trace, 2));
        assert!(!is_head_set_t_stable_sliding(&trace, 2));
        assert!(is_head_set_t_stable_sliding(&trace, 1));
        assert_eq!(max_hierarchy_stability_sliding(&trace), 2);
    }

    #[test]
    fn sliding_stability_of_constant_trace_is_full_length() {
        let trace = constant_trace(5);
        assert_eq!(max_hierarchy_stability_sliding(&trace), 5);
        assert!(is_hierarchy_t_stable_sliding(&trace, 5));
    }

    #[test]
    fn stability_windows_are_traced_in_pairs() {
        use hinet_rt::obs::{Event, ObsConfig, Tracer};

        let trace = constant_trace(5); // t=2 → windows [0,2) [2,4) [4,5)
        let mut tracer = Tracer::new(ObsConfig::full());
        let held = trace_stability_windows(&trace, 2, 2, &mut tracer);
        assert_eq!(held, 3, "constant trace: Def 8 holds in every window");
        // 3 windows × 6 definitions × open+close.
        let events: Vec<_> = tracer.events().collect();
        assert_eq!(events.len(), 36);
        assert!(events
            .iter()
            .all(|e| matches!(e.event, Event::StabilityWindow { held: true, .. })));
        // Open/close rounds bracket the aligned windows.
        assert_eq!(events[0].round, 0);
        assert_eq!(events[1].round, 1);
        assert_eq!(events.last().unwrap().round, 4);

        // A trace with a churning backbone breaks Defs 5/7/8 but not 2/4.
        let h = Arc::new(fixture_hierarchy());
        let g0 = Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (3, 5)]);
        let g1 = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5)]);
        let t = TvgTrace::new(vec![Arc::new(g0), Arc::new(g1)]);
        let churny = CtvgTrace::new(t, vec![Arc::clone(&h), h]);
        let mut tracer = Tracer::new(ObsConfig::full());
        assert_eq!(trace_stability_windows(&churny, 2, 3, &mut tracer), 0);
        let broken: Vec<u8> = tracer
            .events()
            .filter_map(|e| match e.event {
                Event::StabilityWindow {
                    def,
                    open: true,
                    held: false,
                } => Some(def),
                _ => None,
            })
            .collect();
        assert_eq!(broken, vec![5, 6, 7, 8]);
    }

    #[test]
    fn single_head_trivially_connected() {
        let g = Arc::new(Graph::star(4));
        let h = Arc::new(single_cluster(4, nid(0)));
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h), h]);
        assert!(has_t_interval_l_hop_connectivity(&trace, 2, 0));
    }
}
