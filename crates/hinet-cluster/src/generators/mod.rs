//! CTVG trace generators.
//!
//! * [`HiNetGen`] — constructs hierarchies satisfying (T, L)-HiNet *by
//!   construction*: per aligned window of `T` rounds the head set, gateway
//!   backbone and member assignment are frozen; between windows members
//!   re-affiliate (and heads optionally rotate). `T = 1` yields the
//!   (1, L)-HiNet of Algorithm 2; `rotate_heads = false` yields the
//!   ∞-interval stable head set of Remark 1.
//! * [`ClusteredMobilityGen`] — derives the hierarchy per round by running a
//!   clustering algorithm over any underlying topology provider: stability
//!   becomes *emergent* rather than constructed, the realistic MANET/WSN
//!   scenario from the paper's introduction.

mod hinet;
mod mobility;

pub use hinet::{HiNetConfig, HiNetGen};
pub use mobility::ClusteredMobilityGen;
