//! Emergent hierarchy: clustering computed per round over any topology.

use crate::clustering::{cluster_scheme, ClusterScheme, ClusteringKind, GatewayPolicy};
use crate::ctvg::HierarchyProvider;
use crate::hierarchy::Hierarchy;
use hinet_graph::trace::TopologyProvider;
use hinet_graph::Graph;
use std::sync::Arc;

/// Wrap any [`TopologyProvider`] and derive the hierarchy each round with a
/// clustering algorithm.
///
/// Whereas [`super::HiNetGen`] *constructs* stability, here stability is
/// whatever the underlying dynamics allow — e.g. slow random-waypoint
/// mobility yields hierarchies that are stable for multiple rounds at a
/// stretch, and the stability verifiers can then measure the largest `T`
/// for which the trace happens to be a (T, L)-HiNet. This is the scenario
/// where the paper's assumption "a clustering protocol maintains the
/// hierarchy" is played out literally.
///
/// With `sticky = true` the previous round's clustering is kept whenever it
/// is still valid for the new snapshot (all members still adjacent to their
/// heads), modelling a maintenance protocol that only re-clusters on
/// violation — this dramatically increases hierarchy stability under mild
/// churn, which is exactly the effect cluster maintenance protocols exist
/// to produce.
pub struct ClusteredMobilityGen<P> {
    inner: P,
    scheme: ClusterScheme,
    sticky: bool,
    cache: Vec<Arc<Hierarchy>>,
}

impl<P: TopologyProvider> ClusteredMobilityGen<P> {
    /// Wrap `inner`, clustering each round with the 1-hop algorithm `kind`
    /// under the default (minimal-pairwise) gateway policy.
    pub fn new(inner: P, kind: ClusteringKind, sticky: bool) -> Self {
        Self::with_scheme(
            inner,
            ClusterScheme::OneHop(kind, GatewayPolicy::default()),
            sticky,
        )
    }

    /// Wrap `inner` with an explicit clustering scheme (including d-hop
    /// clusters for the multi-hop experiments).
    pub fn with_scheme(inner: P, scheme: ClusterScheme, sticky: bool) -> Self {
        ClusteredMobilityGen {
            inner,
            scheme,
            sticky,
            cache: Vec::new(),
        }
    }

    /// The wrapped provider.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn hierarchy_still_valid(h: &Hierarchy, g: &Graph) -> bool {
        h.validate(g).is_ok()
    }

    fn compute_to(&mut self, round: usize) {
        while self.cache.len() <= round {
            let r = self.cache.len();
            let g = self.inner.graph_at(r);
            let reuse = if self.sticky && r > 0 {
                let prev = &self.cache[r - 1];
                Self::hierarchy_still_valid(prev, &g)
            } else {
                false
            };
            let h = if reuse {
                Arc::clone(&self.cache[r - 1])
            } else {
                Arc::new(cluster_scheme(self.scheme, &g))
            };
            self.cache.push(h);
        }
    }
}

impl<P: TopologyProvider> TopologyProvider for ClusteredMobilityGen<P> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        self.inner.graph_at(round)
    }
}

impl<P: TopologyProvider> HierarchyProvider for ClusteredMobilityGen<P> {
    fn hierarchy_at(&mut self, round: usize) -> Arc<Hierarchy> {
        self.compute_to(round);
        Arc::clone(&self.cache[round])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctvg::CtvgTrace;
    use crate::reaffiliation::churn_stats;
    use hinet_graph::generators::{RandomWaypointGen, WaypointConfig};
    use hinet_graph::trace::StaticProvider;

    fn slow_field() -> RandomWaypointGen {
        RandomWaypointGen::new(
            30,
            WaypointConfig {
                radius: 0.35,
                min_speed: 0.001,
                max_speed: 0.01,
                ensure_connected: true,
            },
            7,
        )
    }

    #[test]
    fn derived_hierarchy_validates_every_round() {
        let mut g = ClusteredMobilityGen::new(slow_field(), ClusteringKind::LowestId, false);
        let trace = CtvgTrace::capture(&mut g, 20);
        assert_eq!(trace.validate(), Ok(()));
    }

    #[test]
    fn static_topology_gives_static_hierarchy() {
        let inner = StaticProvider::new(hinet_graph::Graph::cycle(9));
        let mut g = ClusteredMobilityGen::new(inner, ClusteringKind::LowestId, false);
        let trace = CtvgTrace::capture(&mut g, 5);
        let s = churn_stats(&trace);
        assert_eq!(s.total_reaffiliations, 0);
        assert_eq!(s.head_set_changes, 0);
    }

    #[test]
    fn sticky_mode_reduces_churn() {
        let mut fresh =
            ClusteredMobilityGen::new(slow_field(), ClusteringKind::HighestDegree, false);
        let mut sticky =
            ClusteredMobilityGen::new(slow_field(), ClusteringKind::HighestDegree, true);
        let tf = CtvgTrace::capture(&mut fresh, 40);
        let ts = CtvgTrace::capture(&mut sticky, 40);
        let (sf, ss) = (churn_stats(&tf), churn_stats(&ts));
        assert!(
            ss.head_set_changes <= sf.head_set_changes,
            "sticky {} vs fresh {}",
            ss.head_set_changes,
            sf.head_set_changes
        );
        assert_eq!(ts.validate(), Ok(()));
    }

    #[test]
    fn deterministic_replay() {
        let mut a = ClusteredMobilityGen::new(slow_field(), ClusteringKind::LowestId, true);
        let mut b = ClusteredMobilityGen::new(slow_field(), ClusteringKind::LowestId, true);
        for r in 0..10 {
            assert_eq!(a.hierarchy_at(r).heads(), b.hierarchy_at(r).heads());
        }
    }
}
