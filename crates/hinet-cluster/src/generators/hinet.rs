//! The (T, L)-HiNet trace generator.

use crate::ctvg::HierarchyProvider;
use crate::hierarchy::{ClusterId, Hierarchy, Role};
use hinet_graph::graph::{Graph, GraphBuilder, NodeId};
use hinet_graph::rng::{mix, stream_rng, Rng, SliceRandom};
use hinet_graph::trace::TopologyProvider;
use std::sync::Arc;

/// Configuration of [`HiNetGen`].
#[derive(Clone, Copy, Debug)]
pub struct HiNetConfig {
    /// Total nodes `n₀`.
    pub n: usize,
    /// Simultaneous cluster heads per round.
    pub num_heads: usize,
    /// Size of the head-capable pool — the paper's `θ` (nodes `0..theta`
    /// may serve as heads). Must satisfy `num_heads ≤ theta ≤ n`.
    pub theta: usize,
    /// Hop bound `L` between backbone-adjacent heads: consecutive heads are
    /// joined by a chain of `L − 1` gateway nodes.
    pub l: usize,
    /// Stability window `T`: hierarchy and backbone are frozen within each
    /// aligned window of `t` rounds. `t = 1` gives a (1, L)-HiNet.
    pub t: usize,
    /// Probability that a member re-affiliates to a different head at a
    /// window boundary.
    pub reaffil_prob: f64,
    /// Rotate the head set at each window boundary (drawing `num_heads`
    /// from the pool `0..theta`). `false` gives Remark 1's ∞-stable heads.
    pub rotate_heads: bool,
    /// Extra random edges per round (churning topology noise that never
    /// carries any guarantee).
    pub noise_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HiNetConfig {
    /// A small, valid default mirroring the paper's Table 3 proportions.
    pub fn example() -> Self {
        HiNetConfig {
            n: 100,
            num_heads: 12,
            theta: 30,
            l: 2,
            t: 18,
            reaffil_prob: 0.1,
            rotate_heads: true,
            noise_edges: 20,
            seed: 0,
        }
    }

    /// Gateway nodes required by the backbone.
    pub fn gateways_needed(&self) -> usize {
        self.num_heads.saturating_sub(1) * (self.l - 1)
    }

    fn validate(&self) {
        assert!(self.n >= 1, "need at least one node");
        assert!(self.num_heads >= 1, "need at least one head");
        assert!(
            self.num_heads <= self.theta && self.theta <= self.n,
            "need num_heads ≤ theta ≤ n, got {} ≤ {} ≤ {}",
            self.num_heads,
            self.theta,
            self.n
        );
        assert!(self.l >= 1, "L must be at least 1");
        assert!(self.t >= 1, "T must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.reaffil_prob),
            "reaffil_prob outside [0,1]"
        );
        assert!(
            self.num_heads + self.gateways_needed() <= self.n,
            "n={} too small for {} heads with L={} backbone ({} gateways needed)",
            self.n,
            self.num_heads,
            self.l,
            self.gateways_needed()
        );
    }
}

/// Frozen state of one aligned window.
#[derive(Clone, Debug)]
struct WindowState {
    hierarchy: Arc<Hierarchy>,
    /// Hierarchy edges (backbone chains + member stars) present in every
    /// round of the window.
    base_graph: Arc<Graph>,
}

/// Generator of (T, L)-HiNet traces.
///
/// Per aligned window `w` (rounds `[wT, (w+1)T)`):
///
/// 1. **Heads** — `num_heads` nodes from the pool `0..theta`; fixed when
///    `rotate_heads` is off, re-drawn per window otherwise.
/// 2. **Backbone** — heads are arranged in a line; consecutive heads are
///    joined by a fresh chain of `L − 1` gateway nodes, so backbone-adjacent
///    heads sit at distance exactly `L`, realising Definition 6's L-hop
///    head connectivity inside the stable subgraph `Υ`.
/// 3. **Members** — every remaining node holds an edge to its assigned
///    head. At window boundaries each member re-affiliates with probability
///    `reaffil_prob` (and necessarily when its head or gateway role
///    disappears under rotation).
/// 4. **Noise** — `noise_edges` random extra edges are re-drawn every round
///    and carry no guarantee.
///
/// The produced trace is therefore a (T, L)-HiNet by construction (aligned
/// windows), every round's snapshot is connected, and the hierarchy
/// validates against its graph — all three facts are re-checked by this
/// module's tests through the independent verifiers.
#[derive(Clone, Debug)]
pub struct HiNetGen {
    cfg: HiNetConfig,
    /// Persistent member assignment (head per node), evolved per window.
    assignment: Vec<NodeId>,
    windows: Vec<WindowState>,
}

impl HiNetGen {
    /// Build a generator; panics on invalid configuration (see
    /// [`HiNetConfig`] field docs).
    pub fn new(cfg: HiNetConfig) -> Self {
        cfg.validate();
        HiNetGen {
            cfg,
            assignment: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HiNetConfig {
        &self.cfg
    }

    fn heads_for_window(&self, w: usize) -> Vec<NodeId> {
        let cfg = &self.cfg;
        if !cfg.rotate_heads || cfg.theta == cfg.num_heads {
            return (0..cfg.num_heads).map(NodeId::from_index).collect();
        }
        let mut pool: Vec<NodeId> = (0..cfg.theta).map(NodeId::from_index).collect();
        let mut rng = stream_rng(cfg.seed, mix(0x4ead, w as u64));
        pool.shuffle(&mut rng);
        let mut heads: Vec<NodeId> = pool.into_iter().take(cfg.num_heads).collect();
        heads.sort_unstable();
        heads
    }

    fn compute_window(&mut self, w: usize) {
        debug_assert_eq!(self.windows.len(), w);
        let cfg = self.cfg;
        let n = cfg.n;
        let heads = self.heads_for_window(w);
        let is_head: Vec<bool> = {
            let mut v = vec![false; n];
            for &h in &heads {
                v[h.index()] = true;
            }
            v
        };

        // Gateways: lowest-id non-head nodes, assigned chain by chain. The
        // chain between heads[i] and heads[i+1] takes L−1 of them and is
        // clustered under heads[i] (the left end).
        let chains = heads.len().saturating_sub(1);
        let per_chain = cfg.l - 1;
        let mut gateway_pool: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|u| !is_head[u.index()])
            .take(chains * per_chain)
            .collect();
        debug_assert_eq!(gateway_pool.len(), chains * per_chain);

        let mut roles = vec![Role::Member; n];
        let mut cluster = vec![None::<ClusterId>; n];
        for &h in &heads {
            roles[h.index()] = Role::Head;
            cluster[h.index()] = Some(ClusterId(h));
        }

        let mut b = GraphBuilder::new(n);
        // Backbone chains.
        let mut pool_iter = gateway_pool.drain(..);
        for i in 0..chains {
            let (left, right) = (heads[i], heads[i + 1]);
            let mut prev = left;
            for _ in 0..per_chain {
                let gw = pool_iter.next().expect("pool sized exactly");
                roles[gw.index()] = Role::Gateway;
                cluster[gw.index()] = Some(ClusterId(left));
                b.add_edge(prev, gw);
                prev = gw;
            }
            b.add_edge(prev, right);
        }
        drop(pool_iter);

        // Member assignment evolution.
        let mut rng = stream_rng(cfg.seed, mix(0x3e3e, w as u64));
        if self.assignment.is_empty() {
            self.assignment = vec![NodeId(0); n];
            for u in 0..n {
                self.assignment[u] = heads[rng.random_range(0..heads.len())];
            }
        } else {
            for u in 0..n {
                let cur = self.assignment[u];
                let invalid = !is_head[cur.index()];
                let moved = cfg.reaffil_prob > 0.0 && rng.random_bool(cfg.reaffil_prob);
                if invalid || moved {
                    let mut pick = heads[rng.random_range(0..heads.len())];
                    if heads.len() > 1 {
                        while pick == cur {
                            pick = heads[rng.random_range(0..heads.len())];
                        }
                    }
                    self.assignment[u] = pick;
                }
            }
        }

        // Member stars (heads and gateways already clustered above).
        for u in (0..n).map(NodeId::from_index) {
            if roles[u.index()] == Role::Member {
                let head = self.assignment[u.index()];
                cluster[u.index()] = Some(ClusterId(head));
                b.add_edge(u, head);
            }
        }

        let hierarchy = Arc::new(Hierarchy::new(roles, cluster));
        let base_graph = Arc::new(b.build());
        self.windows.push(WindowState {
            hierarchy,
            base_graph,
        });
    }

    fn window(&mut self, w: usize) -> &WindowState {
        while self.windows.len() <= w {
            let next = self.windows.len();
            self.compute_window(next);
        }
        &self.windows[w]
    }
}

impl TopologyProvider for HiNetGen {
    fn n(&self) -> usize {
        self.cfg.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        let w = round / self.cfg.t;
        let cfg = self.cfg;
        let base = Arc::clone(&self.window(w).base_graph);
        if cfg.noise_edges == 0 || cfg.n < 2 {
            return base;
        }
        let mut b = GraphBuilder::new(cfg.n);
        b.add_graph(&base);
        let mut rng = stream_rng(cfg.seed, mix(0x0153, round as u64));
        for _ in 0..cfg.noise_edges {
            let u = rng.random_range(0..cfg.n);
            let mut v = rng.random_range(0..cfg.n - 1);
            if v >= u {
                v += 1;
            }
            b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
        }
        Arc::new(b.build())
    }
}

impl HierarchyProvider for HiNetGen {
    fn hierarchy_at(&mut self, round: usize) -> Arc<Hierarchy> {
        let w = round / self.cfg.t;
        Arc::clone(&self.window(w).hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctvg::CtvgTrace;
    use crate::reaffiliation::churn_stats;
    use crate::stability::{is_head_set_forever_stable, is_t_l_hinet, min_hinet_l};
    use hinet_graph::verify::is_always_connected;

    fn cfg() -> HiNetConfig {
        HiNetConfig {
            n: 40,
            num_heads: 5,
            theta: 12,
            l: 3,
            t: 4,
            reaffil_prob: 0.2,
            rotate_heads: true,
            noise_edges: 6,
            seed: 42,
        }
    }

    #[test]
    fn trace_validates_and_is_connected() {
        let mut g = HiNetGen::new(cfg());
        let trace = CtvgTrace::capture(&mut g, 24);
        assert_eq!(trace.validate(), Ok(()));
        assert!(is_always_connected(trace.topology()));
    }

    #[test]
    fn trace_is_t_l_hinet_by_construction() {
        let mut g = HiNetGen::new(cfg());
        let trace = CtvgTrace::capture(&mut g, 24);
        assert!(is_t_l_hinet(&trace, 4, 3));
    }

    #[test]
    fn l_hop_is_exactly_l_without_noise() {
        let mut c = cfg();
        c.noise_edges = 0;
        c.reaffil_prob = 0.0;
        let mut g = HiNetGen::new(c);
        let trace = CtvgTrace::capture(&mut g, 8);
        assert_eq!(min_hinet_l(&trace, 4), Some(3));
    }

    #[test]
    fn stable_heads_when_rotation_off() {
        let mut c = cfg();
        c.rotate_heads = false;
        let mut g = HiNetGen::new(c);
        let trace = CtvgTrace::capture(&mut g, 20);
        assert!(is_head_set_forever_stable(&trace));
        let s = churn_stats(&trace);
        assert_eq!(s.distinct_heads, 5);
        assert_eq!(s.head_set_changes, 0);
    }

    #[test]
    fn rotation_changes_heads_across_windows() {
        let mut g = HiNetGen::new(cfg());
        let trace = CtvgTrace::capture(&mut g, 24);
        let s = churn_stats(&trace);
        assert!(
            s.distinct_heads > 5,
            "rotation should use more than one window's heads, got {}",
            s.distinct_heads
        );
        assert!(s.distinct_heads <= 12, "heads only from the θ pool");
    }

    #[test]
    fn reaffiliations_scale_with_probability() {
        let mut quiet = cfg();
        quiet.reaffil_prob = 0.0;
        quiet.rotate_heads = false;
        let mut busy = cfg();
        busy.reaffil_prob = 0.9;
        busy.rotate_heads = false;
        let tq = CtvgTrace::capture(&mut HiNetGen::new(quiet), 20);
        let tb = CtvgTrace::capture(&mut HiNetGen::new(busy), 20);
        let (sq, sb) = (churn_stats(&tq), churn_stats(&tb));
        assert_eq!(sq.total_reaffiliations, 0);
        assert!(sb.total_reaffiliations > 0);
    }

    #[test]
    fn t_equals_one_gives_per_round_hinet() {
        let mut c = cfg();
        c.t = 1;
        let mut g = HiNetGen::new(c);
        let trace = CtvgTrace::capture(&mut g, 10);
        assert_eq!(trace.validate(), Ok(()));
        assert!(is_t_l_hinet(&trace, 1, 3));
        assert!(is_always_connected(trace.topology()));
    }

    #[test]
    fn deterministic_replay() {
        let mut a = HiNetGen::new(cfg());
        let mut b = HiNetGen::new(cfg());
        for r in 0..12 {
            assert_eq!(*a.graph_at(r), *b.graph_at(r), "round {r}");
            assert_eq!(
                a.hierarchy_at(r).heads(),
                b.hierarchy_at(r).heads(),
                "round {r}"
            );
        }
    }

    #[test]
    fn l_equals_one_heads_adjacent() {
        let mut c = cfg();
        c.l = 1;
        c.noise_edges = 0;
        let mut g = HiNetGen::new(c);
        let trace = CtvgTrace::capture(&mut g, 4);
        assert_eq!(trace.validate(), Ok(()));
        assert_eq!(min_hinet_l(&trace, 4), Some(1));
        assert_eq!(trace.hierarchy(0).gateway_count(), 0);
    }

    #[test]
    fn single_head_star() {
        let c = HiNetConfig {
            n: 10,
            num_heads: 1,
            theta: 1,
            l: 1,
            t: 3,
            reaffil_prob: 0.0,
            rotate_heads: false,
            noise_edges: 0,
            seed: 1,
        };
        let mut g = HiNetGen::new(c);
        let trace = CtvgTrace::capture(&mut g, 6);
        assert_eq!(trace.validate(), Ok(()));
        assert_eq!(trace.hierarchy(0).heads().len(), 1);
        assert!(is_always_connected(trace.topology()));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_insufficient_nodes_for_backbone() {
        let c = HiNetConfig {
            n: 6,
            num_heads: 4,
            theta: 4,
            l: 4,
            t: 2,
            reaffil_prob: 0.0,
            rotate_heads: false,
            noise_edges: 0,
            seed: 0,
        };
        let _ = HiNetGen::new(c);
    }
}
