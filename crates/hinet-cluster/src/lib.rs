//! # hinet-cluster
//!
//! Cluster-hierarchy substrate for the (T, L)-HiNet reproduction.
//!
//! The paper assumes "the existence of such hierarchy" maintained by an
//! external clustering protocol; this crate *is* that protocol layer:
//!
//! * [`hierarchy::Hierarchy`] — the `C` (role) and `I` (cluster id) functions
//!   of the CTVG model for one round, with invariant validation.
//! * [`ctvg::CtvgTrace`] / [`ctvg::HierarchyProvider`] — cluster-based
//!   time-varying graphs: a topology trace plus the per-round hierarchy
//!   (Definition 1 of the paper).
//! * [`clustering`] — concrete clustering algorithms (lowest-ID,
//!   highest-degree, greedy dominating-set backbone) that derive a hierarchy
//!   from a plain snapshot, for emergent-stability scenarios.
//! * [`stability`] — verifiers for the paper's Definitions 2–8: stable head
//!   set, stable clusters, stable hierarchy, T-interval head connectivity,
//!   L-hop head connectivity, and the full (T, L)-HiNet predicate.
//! * [`generators`] — trace generators that construct hierarchies satisfying
//!   each stability class *by construction* ((T, L)-HiNet, (1, L)-HiNet,
//!   ∞-stable head set), plus a clustered-mobility generator where stability
//!   is emergent.
//! * [`reaffiliation`] — churn statistics (`n_m`, `n_r`, `θ`) extracted from
//!   traces, feeding the paper's analytical cost model.
//! * [`audit`] — one-call stability report combining all of the above.
//!
//! # Example
//!
//! Cluster a snapshot and verify the paper's structural invariants:
//!
//! ```
//! use hinet_cluster::clustering::{backbone_connects_heads, cluster, ClusteringKind};
//! use hinet_graph::Graph;
//!
//! let g = Graph::cycle(12);
//! let h = cluster(ClusteringKind::LowestId, &g);
//! assert_eq!(h.validate(&g), Ok(()));           // members adjacent to heads
//! assert!(backbone_connects_heads(&g, &h));     // gateways bridge all heads
//! assert!(h.l_hop_connectivity(&g).unwrap() <= 3); // paper: L ≤ 3 for 1-hop
//! ```

pub mod audit;
pub mod clustering;
pub mod ctvg;
pub mod generators;
pub mod hierarchy;
pub mod reaffiliation;
pub mod stability;

pub use ctvg::{CtvgTrace, HierarchyProvider};
pub use hierarchy::{ClusterId, Hierarchy, HierarchyError, Role};
