//! Churn statistics over CTVG traces.
//!
//! The paper's cost model is parameterised by measured quantities: `θ` (the
//! number of nodes that can be cluster head), `n_m` (average members per
//! round) and `n_r` (average re-affiliations per member). This module
//! extracts all three from a concrete trace so measured simulator costs can
//! be compared against the analytic formulas *with the trace's own
//! parameters*, not just the paper's example numbers.

use crate::ctvg::CtvgTrace;
use hinet_graph::graph::NodeId;

/// Summary churn statistics of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnStats {
    /// Number of distinct nodes that were ever a head — the measured `θ`.
    pub distinct_heads: usize,
    /// Maximum simultaneous head count over the trace.
    pub max_concurrent_heads: usize,
    /// Average number of `Role::Member` nodes per round — the measured `n_m`.
    pub mean_members: f64,
    /// Average number of cluster re-affiliations per ever-non-head node —
    /// the measured `n_r`.
    pub mean_reaffiliations: f64,
    /// Total re-affiliation events (a non-head node's cluster differing from
    /// its cluster in the previous round).
    pub total_reaffiliations: usize,
    /// Rounds in which the head set changed relative to the previous round.
    pub head_set_changes: usize,
}

/// Compute churn statistics for a trace.
pub fn churn_stats(trace: &CtvgTrace) -> ChurnStats {
    let n = trace.n();
    let rounds = trace.len();
    let mut ever_head = vec![false; n];
    let mut max_concurrent_heads = 0;
    let mut member_rounds = 0usize;
    let mut reaff = vec![0usize; n];
    let mut head_set_changes = 0;
    for r in 0..rounds {
        let h = trace.hierarchy(r);
        max_concurrent_heads = max_concurrent_heads.max(h.heads().len());
        for &u in h.heads() {
            ever_head[u.index()] = true;
        }
        member_rounds += h.member_count();
        if r > 0 {
            let prev = trace.hierarchy(r - 1);
            if prev.heads() != h.heads() {
                head_set_changes += 1;
            }
            for i in 0..n {
                let u = NodeId::from_index(i);
                // A re-affiliation is a *non-head* node changing cluster.
                if !h.is_head(u) && prev.cluster_of(u) != h.cluster_of(u) {
                    reaff[i] += 1;
                }
            }
        }
    }
    let distinct_heads = ever_head.iter().filter(|&&b| b).count();
    let non_heads = n - distinct_heads;
    let total_reaffiliations: usize = reaff.iter().sum();
    ChurnStats {
        distinct_heads,
        max_concurrent_heads,
        mean_members: member_rounds as f64 / rounds as f64,
        mean_reaffiliations: if non_heads == 0 {
            0.0
        } else {
            total_reaffiliations as f64 / non_heads as f64
        },
        total_reaffiliations,
        head_set_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctvg::CtvgTrace;
    use crate::hierarchy::{ClusterId, Hierarchy, Role};
    use hinet_graph::trace::TvgTrace;
    use hinet_graph::Graph;
    use std::sync::Arc;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn hier(assign: &[usize], heads: &[usize]) -> Arc<Hierarchy> {
        let n = assign.len();
        let mut roles = vec![Role::Member; n];
        for &h in heads {
            roles[h] = Role::Head;
        }
        let cluster_of = assign.iter().map(|&a| Some(ClusterId(nid(a)))).collect();
        Arc::new(Hierarchy::new(roles, cluster_of))
    }

    #[test]
    fn static_trace_zero_churn() {
        let g = Arc::new(Graph::complete(4));
        let h = hier(&[0, 0, 0, 0], &[0]);
        let t = TvgTrace::new(vec![Arc::clone(&g), Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h), Arc::clone(&h), h]);
        let s = churn_stats(&trace);
        assert_eq!(s.distinct_heads, 1);
        assert_eq!(s.max_concurrent_heads, 1);
        assert_eq!(s.mean_members, 3.0);
        assert_eq!(s.total_reaffiliations, 0);
        assert_eq!(s.mean_reaffiliations, 0.0);
        assert_eq!(s.head_set_changes, 0);
    }

    #[test]
    fn reaffiliation_counted_once_per_move() {
        let g = Arc::new(Graph::complete(4));
        // Node 2 moves from cluster 0 to cluster 1 between rounds.
        let h0 = hier(&[0, 1, 0, 1], &[0, 1]);
        let h1 = hier(&[0, 1, 1, 1], &[0, 1]);
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![h0, h1]);
        let s = churn_stats(&trace);
        assert_eq!(s.total_reaffiliations, 1);
        assert_eq!(s.distinct_heads, 2);
        assert_eq!(s.mean_reaffiliations, 0.5, "1 move / 2 never-head nodes");
        assert_eq!(s.head_set_changes, 0);
    }

    #[test]
    fn head_rotation_counted() {
        let g = Arc::new(Graph::complete(3));
        let h0 = hier(&[0, 0, 0], &[0]);
        let h1 = hier(&[1, 1, 1], &[1]);
        let t = TvgTrace::new(vec![Arc::clone(&g), g]);
        let trace = CtvgTrace::new(t, vec![h0, h1]);
        let s = churn_stats(&trace);
        assert_eq!(s.distinct_heads, 2);
        assert_eq!(s.max_concurrent_heads, 1);
        assert_eq!(s.head_set_changes, 1);
        // In round 1 node 1 is head (exempt); nodes 0 and 2 both moved from
        // cluster 0 to cluster 1 and are non-heads, so both count.
        assert_eq!(s.total_reaffiliations, 2);
    }
}
