//! Clustering algorithms: derive a [`Hierarchy`] from a topology snapshot.
//!
//! The paper leaves cluster construction to an external protocol; these are
//! three classic such protocols, used by the emergent-stability scenarios
//! (clustered mobility) and the examples. All produce **1-hop clusters**
//! (every member adjacent to its head), matching the paper's system model,
//! and mark as gateways the members with a neighbor in a different cluster.
//!
//! * [`lowest_id`] — Lin–Gerla lowest-ID clustering: heads are a maximal
//!   independent set chosen greedily by ascending node id.
//! * [`highest_degree`] — degree-based clustering (Gerla–Tsai): same greedy
//!   sweep ordered by descending degree (id as tie-break).
//! * [`greedy_dominating`] — greedy minimum-dominating-set approximation:
//!   repeatedly pick the node covering the most uncovered nodes; heads may
//!   be adjacent (a WCDS-style backbone with fewer heads on dense graphs).
//! * [`dhop_lowest_id`] — multi-hop (d-hop) clusters with in-cluster
//!   parent chains (the paper's §VI future work).
//! * [`LccMaintainer`] / [`LccMobilityGen`] — Least-Cluster-Change
//!   incremental maintenance: repair instead of re-cluster, massively
//!   reducing hierarchy churn under the same physical dynamics.
//!
//! Gateway designation is policy-driven ([`GatewayPolicy`]): either every
//! boundary member, or (default) only the canonically smallest boundary
//! edge per adjacent cluster pair — the designated-gateway scheme that
//! keeps members silent and the backbone thin.

mod degree;
mod dhop;
mod dominating;
mod lowest;
mod maintenance;

pub use degree::highest_degree;
pub use dhop::dhop_lowest_id;
pub use dominating::greedy_dominating;
pub use lowest::lowest_id;
pub use maintenance::{re_elect, LccMaintainer, LccMobilityGen};

use crate::hierarchy::{ClusterId, Hierarchy, Role};
use hinet_graph::graph::NodeId;
use hinet_graph::Graph;
use std::collections::BTreeMap;

/// Which clustering algorithm to run (dynamic selection in experiment
/// configs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusteringKind {
    /// [`lowest_id`].
    LowestId,
    /// [`highest_degree`].
    HighestDegree,
    /// [`greedy_dominating`].
    GreedyDominating,
}

/// How boundary members are promoted to gateways.
///
/// In a 1-hop clustering every member sits one hop from its head, so a
/// head-to-head relay path `head_A – g_A – g_B – head_B` needs at most two
/// gateways per adjacent cluster pair (the paper: in 1-hop networks
/// "the value of L is not more than three").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GatewayPolicy {
    /// Every member with a neighbor in a different cluster becomes a
    /// gateway. Simple and robust, but on dense graphs nearly all boundary
    /// members are promoted and the hierarchy degenerates toward flooding.
    AllBoundary,
    /// Per adjacent cluster pair, only the endpoints of the canonically
    /// smallest boundary edge are promoted — the designated-gateway scheme
    /// real clustering protocols (e.g. CGSR) use. The head backbone stays
    /// connected (see [`backbone_connects_heads`]) while almost all
    /// boundary members remain silent members.
    #[default]
    MinimalPairwise,
}

/// A full clustering scheme: algorithm family plus gateway policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterScheme {
    /// Classic 1-hop clustering (every member adjacent to its head).
    OneHop(ClusteringKind, GatewayPolicy),
    /// d-hop clustering via [`dhop_lowest_id`] — members up to `d` hops
    /// from their head, reached through in-cluster parent chains.
    DHop {
        /// Cluster radius in hops (≥ 1).
        d: usize,
        /// Gateway designation policy.
        policy: GatewayPolicy,
    },
}

/// Run a full clustering scheme.
pub fn cluster_scheme(scheme: ClusterScheme, g: &Graph) -> Hierarchy {
    match scheme {
        ClusterScheme::OneHop(kind, policy) => cluster_with_policy(kind, g, policy),
        ClusterScheme::DHop { d, policy } => dhop_lowest_id(g, d, policy),
    }
}

/// Run the selected algorithm with the default (minimal-pairwise) gateway
/// policy.
pub fn cluster(kind: ClusteringKind, g: &Graph) -> Hierarchy {
    cluster_with_policy(kind, g, GatewayPolicy::default())
}

/// Run the selected algorithm with an explicit gateway policy.
pub fn cluster_with_policy(kind: ClusteringKind, g: &Graph, policy: GatewayPolicy) -> Hierarchy {
    let (heads, assignment) = match kind {
        ClusteringKind::LowestId => lowest_id(g),
        ClusteringKind::HighestDegree => highest_degree(g),
        ClusteringKind::GreedyDominating => greedy_dominating(g),
    };
    assemble(g, &heads, &assignment, policy)
}

/// Shared tail of all algorithms: given the elected `heads` (sorted) and an
/// assignment of every node to an adjacent head, build the hierarchy and
/// promote boundary members to [`Role::Gateway`] per the policy.
pub(crate) fn assemble(
    g: &Graph,
    heads: &[NodeId],
    assignment: &[NodeId],
    policy: GatewayPolicy,
) -> Hierarchy {
    let n = g.n();
    debug_assert_eq!(assignment.len(), n);
    let mut roles = vec![Role::Member; n];
    for &h in heads {
        roles[h.index()] = Role::Head;
        debug_assert_eq!(assignment[h.index()], h, "head must be assigned to itself");
    }
    match policy {
        GatewayPolicy::AllBoundary => {
            for u in g.nodes() {
                if roles[u.index()] != Role::Member {
                    continue;
                }
                let my = assignment[u.index()];
                if g.neighbors(u).iter().any(|&v| assignment[v.index()] != my) {
                    roles[u.index()] = Role::Gateway;
                }
            }
        }
        GatewayPolicy::MinimalPairwise => {
            // For each unordered cluster pair keep the lexicographically
            // smallest boundary edge; promote its non-head endpoints.
            let mut designated: BTreeMap<(NodeId, NodeId), (NodeId, NodeId)> = BTreeMap::new();
            for u in g.nodes() {
                let cu = assignment[u.index()];
                for &v in g.neighbors(u) {
                    if u >= v {
                        continue;
                    }
                    let cv = assignment[v.index()];
                    if cu == cv {
                        continue;
                    }
                    let pair = if cu < cv { (cu, cv) } else { (cv, cu) };
                    designated.entry(pair).or_insert((u, v));
                }
            }
            for (u, v) in designated.into_values() {
                for node in [u, v] {
                    if roles[node.index()] == Role::Member {
                        roles[node.index()] = Role::Gateway;
                    }
                }
            }
        }
    }
    let cluster_of = assignment.iter().map(|&h| Some(ClusterId(h))).collect();
    Hierarchy::new(roles, cluster_of)
}

/// Whether all heads are mutually reachable through the backbone alone
/// (the subgraph induced by heads and gateways) — the structural property
/// that lets HiNet algorithms keep members silent. Holds for
/// [`GatewayPolicy::MinimalPairwise`] whenever `g` is connected: the
/// cluster-adjacency graph of a connected graph is connected, and each
/// adjacent pair is bridged by its designated gateway edge.
pub fn backbone_connects_heads(g: &Graph, h: &Hierarchy) -> bool {
    let heads = h.heads();
    if heads.len() <= 1 {
        return true;
    }
    let n = g.n();
    let on_backbone = |u: NodeId| -> bool { matches!(h.role(u), Role::Head | Role::Gateway) };
    let mut seen = vec![false; n];
    let mut queue = vec![heads[0]];
    seen[heads[0].index()] = true;
    let mut head_count = 1;
    let mut cursor = 0;
    while cursor < queue.len() {
        let u = queue[cursor];
        cursor += 1;
        for &v in g.neighbors(u) {
            if !seen[v.index()] && on_backbone(v) {
                seen[v.index()] = true;
                if h.is_head(v) {
                    head_count += 1;
                }
                queue.push(v);
            }
        }
    }
    head_count == heads.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared battery: every algorithm must produce a valid 1-hop hierarchy
    /// on a range of shapes.
    fn check_valid_on(kind: ClusteringKind, g: &Graph) {
        let h = cluster(kind, g);
        h.validate(g)
            .unwrap_or_else(|e| panic!("{kind:?} on n={}: {e}", g.n()));
        // 1-hop property: every non-head is adjacent to its head.
        for u in g.nodes() {
            if !h.is_head(u) {
                let head = h.head_of(u).expect("clustered");
                assert!(
                    g.has_edge(u, head),
                    "{kind:?}: node {u} not adjacent to head {head}"
                );
            }
        }
    }

    #[test]
    fn all_algorithms_valid_on_shapes() {
        let shapes = [
            Graph::complete(8),
            Graph::path(9),
            Graph::cycle(7),
            Graph::star(10),
            Graph::empty(5),
            Graph::from_edges(6, [(0, 1), (2, 3), (4, 5)]),
        ];
        for g in &shapes {
            for kind in [
                ClusteringKind::LowestId,
                ClusteringKind::HighestDegree,
                ClusteringKind::GreedyDominating,
            ] {
                check_valid_on(kind, g);
            }
        }
    }

    #[test]
    fn isolated_nodes_become_their_own_heads() {
        let g = Graph::empty(4);
        for kind in [
            ClusteringKind::LowestId,
            ClusteringKind::HighestDegree,
            ClusteringKind::GreedyDominating,
        ] {
            let h = cluster(kind, &g);
            assert_eq!(h.heads().len(), 4, "{kind:?}");
        }
    }

    #[test]
    fn complete_graph_single_cluster() {
        let g = Graph::complete(6);
        for kind in [
            ClusteringKind::LowestId,
            ClusteringKind::HighestDegree,
            ClusteringKind::GreedyDominating,
        ] {
            let h = cluster(kind, &g);
            assert_eq!(h.heads().len(), 1, "{kind:?}");
            assert_eq!(h.gateway_count(), 0, "{kind:?}: one cluster, no gateways");
        }
    }

    #[test]
    fn gateways_appear_between_clusters() {
        // Path of 7 under lowest-ID: heads {0, 2, 4, 6}; members 1, 3, 5
        // sit on cluster boundaries and must be designated gateways.
        let g = Graph::path(7);
        let h = cluster(ClusteringKind::LowestId, &g);
        assert!(h.gateway_count() > 0);
    }

    #[test]
    fn minimal_policy_designates_fewer_gateways_than_all_boundary() {
        // Dense-ish ring of rings: plenty of boundary members.
        let mut edges = Vec::new();
        let n = 24u32;
        for u in 0..n {
            edges.push((u, (u + 1) % n));
            edges.push((u, (u + 2) % n));
        }
        let g = Graph::from_edges(n as usize, edges);
        let all = cluster_with_policy(ClusteringKind::LowestId, &g, GatewayPolicy::AllBoundary);
        let min = cluster_with_policy(ClusteringKind::LowestId, &g, GatewayPolicy::MinimalPairwise);
        assert!(
            min.gateway_count() < all.gateway_count(),
            "minimal {} vs all-boundary {}",
            min.gateway_count(),
            all.gateway_count()
        );
        assert!(min.member_count() > all.member_count());
    }

    #[test]
    fn backbone_connected_under_both_policies() {
        for g in [
            Graph::path(13),
            Graph::cycle(11),
            Graph::complete(8),
            Graph::star(9),
        ] {
            for policy in [GatewayPolicy::AllBoundary, GatewayPolicy::MinimalPairwise] {
                for kind in [
                    ClusteringKind::LowestId,
                    ClusteringKind::HighestDegree,
                    ClusteringKind::GreedyDominating,
                ] {
                    let h = cluster_with_policy(kind, &g, policy);
                    assert!(
                        backbone_connects_heads(&g, &h),
                        "{kind:?}/{policy:?} on n={}",
                        g.n()
                    );
                }
            }
        }
    }

    #[test]
    fn backbone_check_detects_missing_gateways() {
        // Two clusters with NO gateways: backbone disconnected.
        use crate::hierarchy::Role;
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let roles = vec![Role::Head, Role::Member, Role::Member, Role::Head];
        let c0 = Some(ClusterId(NodeId(0)));
        let c3 = Some(ClusterId(NodeId(3)));
        let h = Hierarchy::new(roles, vec![c0, c0, c3, c3]);
        assert!(!backbone_connects_heads(&g, &h));
    }

    #[test]
    fn backbone_trivially_connected_for_single_head() {
        let g = Graph::star(5);
        let h = cluster(ClusteringKind::LowestId, &g);
        assert!(backbone_connects_heads(&g, &h));
    }
}
