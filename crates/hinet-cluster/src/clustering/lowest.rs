//! Lowest-ID clustering (Lin & Gerla).

use hinet_graph::graph::NodeId;
use hinet_graph::Graph;

/// Lowest-ID clustering: sweep nodes in ascending id; every still-undecided
/// node becomes a head and captures its undecided neighbors as members.
///
/// Because a node is only undecided when none of its smaller-id neighbors
/// became a head, the resulting head set is a maximal independent set and
/// every head has the lowest id in its cluster — the classic Lin–Gerla
/// invariant. Decided nodes keep their first (lowest-id) head, modelling the
/// "first heard claim wins" radio protocol.
///
/// Returns `(heads, assignment)` for `assemble` (private to this module tree).
pub fn lowest_id(g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = g.n();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut heads = Vec::new();
    for u in g.nodes() {
        if assignment[u.index()].is_some() {
            continue;
        }
        heads.push(u);
        assignment[u.index()] = Some(u);
        for &v in g.neighbors(u) {
            if assignment[v.index()].is_none() {
                assignment[v.index()] = Some(u);
            }
        }
    }
    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("all decided"))
        .collect();
    (heads, assignment)
}

#[cfg(test)]
mod tests {
    use super::super::{cluster, ClusteringKind};
    use super::*;
    use crate::hierarchy::Role;

    fn run(g: &Graph) -> crate::hierarchy::Hierarchy {
        cluster(ClusteringKind::LowestId, g)
    }

    #[test]
    fn heads_form_independent_set() {
        let g = Graph::cycle(9);
        let h = run(&g);
        for &a in h.heads() {
            for &b in h.heads() {
                if a != b {
                    assert!(!g.has_edge(a, b), "heads {a} and {b} adjacent");
                }
            }
        }
    }

    #[test]
    fn head_has_lowest_id_in_cluster() {
        let g = Graph::from_edges(6, [(0, 3), (3, 1), (1, 4), (4, 2), (2, 5)]);
        let h = run(&g);
        for u in g.nodes() {
            let head = h.head_of(u).unwrap();
            assert!(
                head <= u,
                "cluster head {head} should not exceed member {u}"
            );
        }
    }

    #[test]
    fn star_clusters_around_hub() {
        let g = Graph::star(6);
        let h = run(&g);
        assert_eq!(h.heads(), &[NodeId(0)]);
        assert_eq!(h.member_count(), 5);
        assert_eq!(h.role(NodeId(3)), Role::Member);
    }

    #[test]
    fn deterministic() {
        let g = Graph::cycle(11);
        assert_eq!(run(&g), run(&g));
    }
}
