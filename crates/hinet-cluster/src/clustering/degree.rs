//! Highest-degree clustering (Gerla & Tsai).

use hinet_graph::graph::NodeId;
use hinet_graph::Graph;

/// Highest-degree clustering: sweep nodes in descending degree (ascending id
/// as tie-break); every still-undecided node becomes a head and captures its
/// undecided neighbors.
///
/// High-degree heads yield fewer clusters on dense graphs than lowest-ID,
/// at the price of less stable head sets under mobility (degree fluctuates
/// faster than identity) — the classic trade-off this family of protocols
/// explores, and a useful contrast in the emergent-stability experiments.
///
/// Returns `(heads, assignment)` for `assemble` (private to this module tree).
pub fn highest_degree(g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = g.n();
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut heads = Vec::new();
    for u in order {
        if assignment[u.index()].is_some() {
            continue;
        }
        heads.push(u);
        assignment[u.index()] = Some(u);
        for &v in g.neighbors(u) {
            if assignment[v.index()].is_none() {
                assignment[v.index()] = Some(u);
            }
        }
    }
    heads.sort_unstable();
    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("all decided"))
        .collect();
    (heads, assignment)
}

#[cfg(test)]
mod tests {
    use super::super::{cluster, ClusteringKind};
    use super::*;

    fn run(g: &Graph) -> crate::hierarchy::Hierarchy {
        cluster(ClusteringKind::HighestDegree, g)
    }

    #[test]
    fn hub_of_star_wins() {
        // In a star with high-id hub the hub must still be elected.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            edges.push((u, 5));
        }
        let g = Graph::from_edges(6, edges);
        let h = run(&g);
        assert_eq!(h.heads(), &[NodeId(5)]);
    }

    #[test]
    fn heads_form_independent_set() {
        let g = Graph::cycle(10);
        let h = run(&g);
        for &a in h.heads() {
            for &b in h.heads() {
                if a != b {
                    assert!(!g.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    fn fewer_or_equal_heads_than_lowest_id_on_dense_core() {
        // Two hubs covering many leaves; degree-based should find ≤ heads.
        let mut edges = Vec::new();
        for u in 2..12u32 {
            edges.push((0, u));
            edges.push((1, u));
        }
        let g = Graph::from_edges(12, edges);
        let hd = run(&g);
        let li = cluster(ClusteringKind::LowestId, &g);
        assert!(hd.heads().len() <= li.heads().len());
    }

    #[test]
    fn deterministic() {
        let g = Graph::cycle(13);
        assert_eq!(run(&g), run(&g));
    }
}
