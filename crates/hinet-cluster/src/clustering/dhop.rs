//! d-hop clustering — multi-hop clusters (the paper's §VI future work).

use super::GatewayPolicy;
use crate::hierarchy::{ClusterId, Hierarchy, Role};
use hinet_graph::graph::NodeId;
use hinet_graph::Graph;
use std::collections::BTreeMap;

/// Lowest-ID d-hop clustering: sweep nodes in ascending id; every
/// still-uncovered node becomes a head and captures, wave by wave, all
/// still-uncovered nodes within `d` hops **through other captured nodes**
/// (the truncated BFS expands only via nodes joining this cluster, so
/// every member's parent chain stays inside the cluster by construction).
///
/// `d = 1` degenerates to the classic lowest-ID clustering. Larger `d`
/// yields far fewer heads — the trade the paper's future-work section
/// raises: a thinner backbone at the price of multi-hop member–head
/// paths, which the multi-hop dissemination variant
/// (`hinet_core::algorithms::HiNetFullExchangeMH`) must then bridge.
///
/// Gateways: as in the 1-hop algorithms, per adjacent cluster pair the
/// canonically smallest boundary edge's endpoints are designated
/// ([`GatewayPolicy::MinimalPairwise`]); with `AllBoundary` every node with
/// a foreign neighbor is promoted.
///
/// # Panics
/// Panics if `d == 0`.
pub fn dhop_lowest_id(g: &Graph, d: usize, policy: GatewayPolicy) -> Hierarchy {
    assert!(d >= 1, "cluster radius must be at least 1");
    let n = g.n();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heads = Vec::new();

    for u in g.nodes() {
        if assignment[u.index()].is_some() {
            continue;
        }
        heads.push(u);
        assignment[u.index()] = Some(u);
        // Truncated BFS from u through freshly captured nodes only.
        let mut frontier = vec![u];
        for _depth in 0..d {
            let mut next = Vec::new();
            for &x in &frontier {
                for &v in g.neighbors(x) {
                    if assignment[v.index()].is_none() {
                        assignment[v.index()] = Some(u);
                        parent[v.index()] = Some(x);
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
    }

    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("every node decided"))
        .collect();

    let mut roles = vec![Role::Member; n];
    for &h in &heads {
        roles[h.index()] = Role::Head;
    }
    match policy {
        GatewayPolicy::AllBoundary => {
            for u in g.nodes() {
                if roles[u.index()] != Role::Member {
                    continue;
                }
                let my = assignment[u.index()];
                if g.neighbors(u).iter().any(|&v| assignment[v.index()] != my) {
                    roles[u.index()] = Role::Gateway;
                }
            }
        }
        GatewayPolicy::MinimalPairwise => {
            let mut designated: BTreeMap<(NodeId, NodeId), (NodeId, NodeId)> = BTreeMap::new();
            for u in g.nodes() {
                let cu = assignment[u.index()];
                for &v in g.neighbors(u) {
                    if u >= v {
                        continue;
                    }
                    let cv = assignment[v.index()];
                    if cu == cv {
                        continue;
                    }
                    let pair = if cu < cv { (cu, cv) } else { (cv, cu) };
                    designated.entry(pair).or_insert((u, v));
                }
            }
            for (u, v) in designated.into_values() {
                for node in [u, v] {
                    if roles[node.index()] == Role::Member {
                        roles[node.index()] = Role::Gateway;
                    }
                }
            }
        }
    }

    let cluster_of = assignment.iter().map(|&h| Some(ClusterId(h))).collect();
    Hierarchy::with_parents(roles, cluster_of, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_matches_one_hop_semantics() {
        let g = Graph::path(7);
        let h = dhop_lowest_id(&g, 1, GatewayPolicy::MinimalPairwise);
        assert_eq!(h.validate(&g), Ok(()));
        // Same head set as classic lowest-ID on a path: {0, 2, 4, 6}.
        assert_eq!(h.heads(), &[NodeId(0), NodeId(2), NodeId(4), NodeId(6)]);
        // d = 1 never produces a deeper-than-1 member.
        for u in g.nodes() {
            assert!(h.depth_of(u).unwrap() <= 1);
        }
    }

    #[test]
    fn d2_on_path_uses_fewer_heads() {
        let g = Graph::path(15);
        let h1 = dhop_lowest_id(&g, 1, GatewayPolicy::MinimalPairwise);
        let h2 = dhop_lowest_id(&g, 2, GatewayPolicy::MinimalPairwise);
        let h3 = dhop_lowest_id(&g, 3, GatewayPolicy::MinimalPairwise);
        assert!(h2.heads().len() < h1.heads().len());
        assert!(h3.heads().len() <= h2.heads().len());
        for h in [&h2, &h3] {
            assert_eq!(h.validate(&g), Ok(()));
        }
    }

    #[test]
    fn depth_bounded_by_d() {
        for d in 1..=4 {
            let g = Graph::path(20);
            let h = dhop_lowest_id(&g, d, GatewayPolicy::MinimalPairwise);
            assert_eq!(h.validate(&g), Ok(()));
            for u in g.nodes() {
                let depth = h.depth_of(u).unwrap();
                assert!(depth <= d, "d={d}: node {u} at depth {depth}");
            }
        }
    }

    #[test]
    fn parent_chain_stays_in_cluster() {
        let g = Graph::cycle(17);
        let h = dhop_lowest_id(&g, 3, GatewayPolicy::AllBoundary);
        assert_eq!(h.validate(&g), Ok(()));
        for u in g.nodes() {
            if !h.is_head(u) {
                let p = h.parent_of(u).unwrap();
                assert_eq!(h.cluster_of(p), h.cluster_of(u));
                assert!(g.has_edge(u, p));
            }
        }
    }

    #[test]
    fn single_cluster_when_d_covers_graph() {
        let g = Graph::path(5);
        let h = dhop_lowest_id(&g, 4, GatewayPolicy::MinimalPairwise);
        assert_eq!(h.heads(), &[NodeId(0)]);
        assert_eq!(h.gateway_count(), 0);
        assert_eq!(h.depth_of(NodeId(4)), Some(4));
    }

    #[test]
    fn star_is_one_cluster_at_any_d() {
        let g = Graph::star(9);
        for d in 1..=3 {
            let h = dhop_lowest_id(&g, d, GatewayPolicy::MinimalPairwise);
            assert_eq!(h.heads().len(), 1);
            assert_eq!(h.validate(&g), Ok(()));
        }
    }

    #[test]
    #[should_panic(expected = "radius must be at least 1")]
    fn zero_radius_rejected() {
        let _ = dhop_lowest_id(&Graph::path(3), 0, GatewayPolicy::MinimalPairwise);
    }

    #[test]
    fn deterministic() {
        let g = Graph::cycle(23);
        assert_eq!(
            dhop_lowest_id(&g, 2, GatewayPolicy::MinimalPairwise),
            dhop_lowest_id(&g, 2, GatewayPolicy::MinimalPairwise)
        );
    }
}
