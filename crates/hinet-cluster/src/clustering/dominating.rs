//! Greedy dominating-set clustering (WCDS-style backbone).

use hinet_graph::graph::NodeId;
use hinet_graph::Graph;

/// Greedy minimum-dominating-set clustering: repeatedly elect the node whose
/// closed neighborhood covers the most still-uncovered nodes (ascending id
/// as tie-break); stop when every node is covered; then assign every
/// non-head to its lowest-id adjacent head.
///
/// This is the ln(n)-approximation greedy for dominating sets, the core of
/// the weakly-connected-dominating-set (WCDS) clustering the paper cites
/// ([12, 13]) as the way to "delicately control" `L`. Unlike the greedy-MIS
/// sweeps, elected heads may be adjacent, so dense graphs get markedly fewer
/// clusters.
///
/// Returns `(heads, assignment)` for `assemble` (private to this module tree).
pub fn greedy_dominating(g: &Graph) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = g.n();
    let mut covered = vec![false; n];
    let mut uncovered_left = n;
    let mut heads: Vec<NodeId> = Vec::new();
    let mut is_head = vec![false; n];
    while uncovered_left > 0 {
        // Pick the node covering the most uncovered (closed neighborhood).
        let mut best: Option<(usize, NodeId)> = None;
        for u in g.nodes() {
            if is_head[u.index()] {
                continue;
            }
            let mut gain = usize::from(!covered[u.index()]);
            for &v in g.neighbors(u) {
                gain += usize::from(!covered[v.index()]);
            }
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bu)) => gain > bg || (gain == bg && u < bu),
            };
            if better {
                best = Some((gain, u));
            }
        }
        let (_, h) = best.expect("some node must cover the uncovered");
        is_head[h.index()] = true;
        heads.push(h);
        if !covered[h.index()] {
            covered[h.index()] = true;
            uncovered_left -= 1;
        }
        for &v in g.neighbors(h) {
            if !covered[v.index()] {
                covered[v.index()] = true;
                uncovered_left -= 1;
            }
        }
    }
    heads.sort_unstable();
    // Assignment: each non-head joins its lowest-id adjacent head.
    let mut assignment: Vec<NodeId> = Vec::with_capacity(n);
    for u in g.nodes() {
        if is_head[u.index()] {
            assignment.push(u);
        } else {
            let head = g
                .neighbors(u)
                .iter()
                .copied()
                .find(|&v| is_head[v.index()])
                .expect("dominating set covers every node");
            assignment.push(head);
        }
    }
    (heads, assignment)
}

#[cfg(test)]
mod tests {
    use super::super::{cluster, ClusteringKind};
    use super::*;

    fn run(g: &Graph) -> crate::hierarchy::Hierarchy {
        cluster(ClusteringKind::GreedyDominating, g)
    }

    #[test]
    fn dominating_property_holds() {
        for g in [Graph::path(12), Graph::cycle(9), Graph::complete(7)] {
            let h = run(&g);
            for u in g.nodes() {
                let head = h.head_of(u).unwrap();
                assert!(u == head || g.has_edge(u, head));
            }
        }
    }

    #[test]
    fn star_needs_one_head() {
        let h = run(&Graph::star(20));
        assert_eq!(h.heads(), &[NodeId(0)]);
    }

    #[test]
    fn path_uses_roughly_n_over_3_heads() {
        let (heads, _) = greedy_dominating(&Graph::path(12));
        // Optimal dominating set of P12 has 4 nodes; greedy stays close.
        assert!(heads.len() <= 6, "got {} heads", heads.len());
        assert!(heads.len() >= 4);
    }

    #[test]
    fn double_star_two_heads() {
        // Hubs 0 and 1 joined by an edge, each with 6 leaves.
        let mut edges = vec![(0u32, 1u32)];
        for u in 2..8u32 {
            edges.push((0, u));
        }
        for u in 8..14u32 {
            edges.push((1, u));
        }
        let g = Graph::from_edges(14, edges);
        let h = run(&g);
        assert_eq!(h.heads(), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn deterministic() {
        let g = Graph::cycle(15);
        assert_eq!(run(&g), run(&g));
    }
}
