//! Least-Cluster-Change (LCC) hierarchy maintenance.

use super::{assemble, GatewayPolicy};
use crate::hierarchy::Hierarchy;
use hinet_graph::graph::NodeId;
use hinet_graph::Graph;

/// Incremental cluster maintenance in the style of Chiang et al.'s
/// Least Cluster Change: instead of re-clustering from scratch each round
/// (which reshuffles heads globally on any perturbation), the hierarchy is
/// *repaired* locally:
///
/// 1. **Head clash** — when two heads become neighbors, the higher-id one
///    abdicates and joins the lower (lowest-ID semantics).
/// 2. **Orphan repair** — a non-head that lost adjacency to its head joins
///    the lowest-id adjacent head, or declares itself head if none is in
///    range (processing orphans in ascending id, so a later orphan can
///    join a head created moments earlier).
/// 3. **Gateway re-designation** — gateways are recomputed with the given
///    policy over the repaired assignment.
///
/// The payoff is exactly what the paper's stability model wants more of:
/// far fewer head-set changes and member re-affiliations per round than
/// fresh re-clustering, i.e. a larger effective `T` for the same physical
/// dynamics. Measured in the stability experiments and asserted in this
/// module's tests.
#[derive(Clone, Debug, Default)]
pub struct LccMaintainer {
    /// Head flags and assignment carried across rounds.
    state: Option<(Vec<bool>, Vec<NodeId>)>,
    policy: GatewayPolicy,
}

impl LccMaintainer {
    /// New maintainer with the given gateway policy.
    pub fn new(policy: GatewayPolicy) -> Self {
        LccMaintainer {
            state: None,
            policy,
        }
    }

    /// Advance to the next topology snapshot, returning the repaired
    /// hierarchy. The first call bootstraps with lowest-ID clustering.
    pub fn step(&mut self, g: &Graph) -> Hierarchy {
        let n = g.n();
        let (mut is_head, mut assignment) = match self.state.take() {
            Some((h, a)) if a.len() == n => (h, a),
            _ => {
                let (heads, assignment) = super::lowest_id(g);
                let mut is_head = vec![false; n];
                for &h in &heads {
                    is_head[h.index()] = true;
                }
                (is_head, assignment)
            }
        };

        // 1. Head clashes: ascending id; a head abdicates if a lower-id
        //    node that is still a head is now its neighbor.
        for u in g.nodes() {
            if !is_head[u.index()] {
                continue;
            }
            if let Some(&winner) = g
                .neighbors(u)
                .iter()
                .find(|v| v.index() < u.index() && is_head[v.index()])
            {
                is_head[u.index()] = false;
                assignment[u.index()] = winner;
            }
        }

        // 2. Orphan repair in ascending id.
        for u in g.nodes() {
            if is_head[u.index()] {
                assignment[u.index()] = u;
                continue;
            }
            let head = assignment[u.index()];
            let attached = is_head[head.index()] && g.has_edge(u, head);
            if attached {
                continue;
            }
            match g.neighbors(u).iter().copied().find(|v| is_head[v.index()]) {
                Some(h) => assignment[u.index()] = h,
                None => {
                    is_head[u.index()] = true;
                    assignment[u.index()] = u;
                }
            }
        }

        let heads: Vec<NodeId> = g.nodes().filter(|u| is_head[u.index()]).collect();
        let hierarchy = assemble(g, &heads, &assignment, self.policy);
        self.state = Some((is_head, assignment));
        hierarchy
    }
}

/// Repair a hierarchy after node crashes: given per-node `down` flags,
/// re-elect so that no *live* node depends on a crashed head.
///
/// This is the LCC orphan-repair pass specialised for the fault plane's
/// head-assassination scenarios:
///
/// * live heads keep their role; crashed heads are deposed;
/// * a live node whose head is crashed (or no longer adjacent) joins the
///   lowest-id adjacent live head, or promotes itself if none is in range
///   (ascending id, so later orphans can join heads created moments
///   earlier);
/// * crashed nodes keep their affiliation while their head stays live, and
///   otherwise become inert singleton clusters (they neither send nor
///   receive while down, so no live node ever joins them);
/// * gateways are re-designated over the repaired assignment with `policy`.
///
/// Deterministic: same `(g, h, down)` always yields the same hierarchy.
///
/// # Panics
/// Panics if `down.len() != g.n()` or the hierarchy covers a different
/// node count.
pub fn re_elect(g: &Graph, h: &Hierarchy, down: &[bool], policy: GatewayPolicy) -> Hierarchy {
    let n = g.n();
    assert_eq!(down.len(), n, "one down flag per node");
    assert_eq!(h.n(), n, "hierarchy and graph must cover the same nodes");

    let mut is_head = vec![false; n];
    for u in g.nodes() {
        if !down[u.index()] && h.is_head(u) {
            is_head[u.index()] = true;
        }
    }

    let mut assignment: Vec<NodeId> = g.nodes().collect();
    for u in g.nodes() {
        let i = u.index();
        if is_head[i] {
            continue; // assigned to itself already
        }
        // The node's current head, if it is still a live, adjacent head.
        let live_head = h
            .head_of(u)
            .filter(|&x| !down[x.index()] && is_head[x.index()] && g.has_edge(u, x));
        if down[i] {
            match live_head {
                Some(x) => assignment[i] = x,
                // Inert singleton: down nodes never send, and live nodes
                // never join a down head (the `!down` guard below).
                None => is_head[i] = true,
            }
            continue;
        }
        match live_head.or_else(|| {
            g.neighbors(u)
                .iter()
                .copied()
                .find(|v| !down[v.index()] && is_head[v.index()])
        }) {
            Some(x) => assignment[i] = x,
            None => is_head[i] = true,
        }
    }

    let heads: Vec<NodeId> = g.nodes().filter(|u| is_head[u.index()]).collect();
    assemble(g, &heads, &assignment, policy)
}

/// Provider adapter: LCC maintenance over any topology provider.
pub struct LccMobilityGen<P> {
    inner: P,
    maintainer: LccMaintainer,
    cache: Vec<std::sync::Arc<Hierarchy>>,
}

impl<P: hinet_graph::trace::TopologyProvider> LccMobilityGen<P> {
    /// Maintain a lowest-ID hierarchy over `inner` with LCC repair.
    pub fn new(inner: P, policy: GatewayPolicy) -> Self {
        LccMobilityGen {
            inner,
            maintainer: LccMaintainer::new(policy),
            cache: Vec::new(),
        }
    }
}

impl<P: hinet_graph::trace::TopologyProvider> hinet_graph::trace::TopologyProvider
    for LccMobilityGen<P>
{
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn graph_at(&mut self, round: usize) -> std::sync::Arc<Graph> {
        self.inner.graph_at(round)
    }
}

impl<P: hinet_graph::trace::TopologyProvider> crate::ctvg::HierarchyProvider for LccMobilityGen<P> {
    fn hierarchy_at(&mut self, round: usize) -> std::sync::Arc<Hierarchy> {
        while self.cache.len() <= round {
            let r = self.cache.len();
            let g = self.inner.graph_at(r);
            let h = self.maintainer.step(&g);
            debug_assert_eq!(h.validate(&g), Ok(()), "LCC repair must stay valid");
            self.cache.push(std::sync::Arc::new(h));
        }
        std::sync::Arc::clone(&self.cache[round])
    }
}

#[cfg(test)]
mod tests {
    use super::super::{cluster, ClusteringKind};
    use super::*;
    use crate::ctvg::CtvgTrace;
    use crate::generators::ClusteredMobilityGen;
    use crate::reaffiliation::churn_stats;
    use hinet_graph::generators::{RandomWaypointGen, WaypointConfig};

    #[test]
    fn bootstrap_matches_lowest_id() {
        let g = Graph::path(9);
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        let h = m.step(&g);
        let fresh = cluster(ClusteringKind::LowestId, &g);
        assert_eq!(h.heads(), fresh.heads());
        assert_eq!(h.validate(&g), Ok(()));
    }

    #[test]
    fn static_graph_keeps_hierarchy_fixed() {
        let g = Graph::cycle(12);
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        let h0 = m.step(&g);
        for _ in 0..5 {
            let h = m.step(&g);
            assert_eq!(h.heads(), h0.heads());
        }
    }

    #[test]
    fn head_clash_demotes_higher_id() {
        // Two disjoint stars whose heads then become adjacent.
        let apart = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let together = Graph::from_edges(4, [(0, 1), (2, 3), (0, 2)]);
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        let h = m.step(&apart);
        assert_eq!(h.heads(), &[NodeId(0), NodeId(2)]);
        let h = m.step(&together);
        // Head 2 abdicates to head 0; node 3's only neighbor (2) is no
        // longer a head, so orphan repair promotes 3.
        assert_eq!(h.heads(), &[NodeId(0), NodeId(3)]);
        assert_eq!(h.head_of(NodeId(2)), Some(NodeId(0)));
        assert_eq!(h.validate(&together), Ok(()));
    }

    #[test]
    fn orphan_joins_adjacent_head() {
        let before = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
        let h = m.step(&before);
        // Lowest-ID on a path of 3: head 0 captures 1; node 2 (not
        // adjacent to 0) becomes its own head.
        assert_eq!(h.heads(), &[NodeId(0), NodeId(2)]);
        // Now 2 moves adjacent to 0: the head clash demotes 2 into 0's
        // cluster and only head 0 remains.
        let after = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let h = m.step(&after);
        assert_eq!(h.heads(), &[NodeId(0)]);
        assert_eq!(h.head_of(NodeId(2)), Some(NodeId(0)));
        assert_eq!(h.validate(&after), Ok(()));
    }

    #[test]
    fn lcc_is_stabler_than_fresh_reclustering() {
        let field = || {
            RandomWaypointGen::new(
                40,
                WaypointConfig {
                    radius: 0.3,
                    min_speed: 0.005,
                    max_speed: 0.03,
                    ensure_connected: true,
                },
                13,
            )
        };
        let mut fresh = ClusteredMobilityGen::new(field(), ClusteringKind::LowestId, false);
        let mut lcc = LccMobilityGen::new(field(), GatewayPolicy::MinimalPairwise);
        let tf = CtvgTrace::capture(&mut fresh, 40);
        let tl = CtvgTrace::capture(&mut lcc, 40);
        assert_eq!(tl.validate(), Ok(()));
        let (sf, sl) = (churn_stats(&tf), churn_stats(&tl));
        assert!(
            sl.head_set_changes <= sf.head_set_changes,
            "LCC {} vs fresh {}",
            sl.head_set_changes,
            sf.head_set_changes
        );
        assert!(
            sl.total_reaffiliations <= sf.total_reaffiliations,
            "LCC {} vs fresh {}",
            sl.total_reaffiliations,
            sf.total_reaffiliations
        );
    }

    #[test]
    fn re_elect_with_nobody_down_changes_nothing() {
        let g = Graph::path(9);
        let h = cluster(ClusteringKind::LowestId, &g);
        let r = re_elect(&g, &h, &vec![false; 9], GatewayPolicy::MinimalPairwise);
        assert_eq!(r.heads(), h.heads());
        for u in g.nodes() {
            assert_eq!(r.head_of(u), h.head_of(u));
            assert_eq!(r.role(u), h.role(u));
        }
    }

    #[test]
    fn crashed_head_is_deposed_and_members_rehomed() {
        // Star: head 0, members 1..=4. Kill the head.
        let g = Graph::star(5);
        let h = cluster(ClusteringKind::LowestId, &g);
        assert_eq!(h.heads(), &[NodeId(0)]);
        let mut down = vec![false; 5];
        down[0] = true;
        let r = re_elect(&g, &h, &down, GatewayPolicy::MinimalPairwise);
        // Leaves are only adjacent to the dead hub, so each self-promotes.
        for u in 1..5 {
            assert!(r.is_head(NodeId(u)), "leaf {u} must self-promote");
        }
        // The crashed ex-head is parked as an inert singleton.
        assert!(r.is_head(NodeId(0)));
        assert_eq!(r.head_of(NodeId(0)), Some(NodeId(0)));
        assert_eq!(r.validate(&g), Ok(()));
    }

    #[test]
    fn orphans_join_live_adjacent_head_after_crash() {
        // Path 0-1-2: lowest-ID gives heads {0, 2}, member 1 under 0.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let h = cluster(ClusteringKind::LowestId, &g);
        assert_eq!(h.head_of(NodeId(1)), Some(NodeId(0)));
        let down = vec![true, false, false];
        let r = re_elect(&g, &h, &down, GatewayPolicy::MinimalPairwise);
        assert_eq!(
            r.head_of(NodeId(1)),
            Some(NodeId(2)),
            "orphan joins the surviving head"
        );
        assert_eq!(r.validate(&g), Ok(()));
    }

    #[test]
    fn live_nodes_never_join_a_down_singleton() {
        // Path 0-1-2-3, heads {0, 2}. Crash both heads: 1 and 3 must end
        // up under live heads (each other or themselves), never under a
        // crashed node.
        let g = Graph::path(4);
        let h = cluster(ClusteringKind::LowestId, &g);
        let down = vec![true, false, true, false];
        let r = re_elect(&g, &h, &down, GatewayPolicy::MinimalPairwise);
        for u in [NodeId(1), NodeId(3)] {
            let head = r.head_of(u).expect("clustered");
            assert!(!down[head.index()], "live node {u} joined down head {head}");
        }
        assert_eq!(r.validate(&g), Ok(()));
    }

    #[test]
    fn repaired_hierarchy_always_valid_under_churn() {
        let field = RandomWaypointGen::new(
            30,
            WaypointConfig {
                radius: 0.28,
                min_speed: 0.02,
                max_speed: 0.1,
                ensure_connected: true,
            },
            21,
        );
        let mut lcc = LccMobilityGen::new(field, GatewayPolicy::AllBoundary);
        let trace = CtvgTrace::capture(&mut lcc, 30);
        assert_eq!(trace.validate(), Ok(()));
    }
}
