//! One-call stability audit of a CTVG trace.
//!
//! Pulls together the model predicates (Definitions 2–8), the flat-network
//! baselines (per-round and T-interval connectivity), the churn statistics
//! and the topology dynamics into a single report — what the
//! `stability_audit` example and the CLI `audit` subcommand print.

use crate::ctvg::CtvgTrace;
use crate::reaffiliation::{churn_stats, ChurnStats};
use crate::stability::{
    is_head_set_forever_stable, max_hierarchy_stability_sliding, max_hinet_t, min_hinet_l,
};
use hinet_graph::metrics::{trace_stats, TraceStats};
use hinet_graph::verify::{is_always_connected, max_interval_connectivity};

/// The full audit result.
#[derive(Clone, Debug)]
pub struct StabilityReport {
    /// Whether every snapshot is connected (1-interval connectivity).
    pub always_connected: bool,
    /// Largest flat T-interval connectivity (sliding windows), `None` if
    /// some round is disconnected.
    pub max_flat_t: Option<usize>,
    /// Minimal per-round L-hop head connectivity, `None` if heads are
    /// unreachable in some round.
    pub min_l: Option<usize>,
    /// Largest `T` such that the trace is a (T, min_l)-HiNet (aligned
    /// windows), `None` when `min_l` is undefined or no `T` works.
    pub max_hinet_t: Option<usize>,
    /// Largest sliding-window hierarchy stability.
    pub max_sliding_hierarchy_t: usize,
    /// Whether the head set never changes (Remark 1's precondition).
    pub heads_forever_stable: bool,
    /// Churn statistics (`θ`, `n_m`, `n_r`, …).
    pub churn: ChurnStats,
    /// Topology dynamics (density, churn rate, edge persistence).
    pub topology: TraceStats,
}

/// Audit a trace.
///
/// # Panics
/// Panics if any round's hierarchy fails validation — an invalid CTVG has
/// no meaningful stability properties to report.
pub fn audit(trace: &CtvgTrace) -> StabilityReport {
    if let Err((round, e)) = trace.validate() {
        panic!("cannot audit an invalid CTVG: round {round}: {e}");
    }
    let min_l = min_hinet_l(trace, 1);
    StabilityReport {
        always_connected: is_always_connected(trace.topology()),
        max_flat_t: max_interval_connectivity(trace.topology()),
        min_l,
        max_hinet_t: min_l.and_then(|l| max_hinet_t(trace, l)),
        max_sliding_hierarchy_t: max_hierarchy_stability_sliding(trace),
        heads_forever_stable: is_head_set_forever_stable(trace),
        churn: churn_stats(trace),
        topology: trace_stats(trace.topology()),
    }
}

impl StabilityReport {
    /// Render as indented plain text.
    pub fn to_text(&self) -> String {
        let opt = |v: Option<usize>| v.map_or("—".to_string(), |x| x.to_string());
        format!(
            "connectivity:\n\
             \x20 1-interval connected: {}\n\
             \x20 max flat T-interval (sliding): {}\n\
             hierarchy:\n\
             \x20 min L-hop head connectivity: {}\n\
             \x20 max (T, L)-HiNet window (aligned): {}\n\
             \x20 max hierarchy stability (sliding): {}\n\
             \x20 head set ∞-stable: {}\n\
             churn:\n\
             \x20 θ measured (distinct heads): {}\n\
             \x20 max concurrent heads: {}\n\
             \x20 mean members/round (n_m): {:.1}\n\
             \x20 re-affiliations/member (n_r): {:.2}\n\
             \x20 head-set changes: {}\n\
             topology:\n\
             \x20 mean edges: {:.1} (density {:.3})\n\
             \x20 edge persistence: {:.2}\n\
             \x20 relative churn: {:.2}\n",
            self.always_connected,
            opt(self.max_flat_t),
            opt(self.min_l),
            opt(self.max_hinet_t),
            self.max_sliding_hierarchy_t,
            self.heads_forever_stable,
            self.churn.distinct_heads,
            self.churn.max_concurrent_heads,
            self.churn.mean_members,
            self.churn.mean_reaffiliations,
            self.churn.head_set_changes,
            self.topology.mean_edges,
            self.topology.mean_density,
            self.topology.edge_persistence,
            self.topology.relative_churn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{HiNetConfig, HiNetGen};

    fn constructed(t: usize, rotate: bool, seed: u64) -> CtvgTrace {
        let mut gen = HiNetGen::new(HiNetConfig {
            n: 30,
            num_heads: 4,
            theta: 8,
            l: 2,
            t,
            reaffil_prob: 0.1,
            rotate_heads: rotate,
            noise_edges: 5,
            seed,
        });
        CtvgTrace::capture(&mut gen, 3 * t.max(2))
    }

    #[test]
    fn audit_of_constructed_hinet_matches_declaration() {
        let trace = constructed(4, true, 1);
        let r = audit(&trace);
        assert!(r.always_connected);
        assert!(r.min_l.unwrap() <= 2);
        assert!(r.max_hinet_t.unwrap() >= 4, "declared window honoured");
        assert!(!r.heads_forever_stable, "rotation on");
        assert_eq!(r.churn.max_concurrent_heads, 4);
    }

    #[test]
    fn audit_detects_forever_stable_heads() {
        let trace = constructed(3, false, 2);
        let r = audit(&trace);
        assert!(r.heads_forever_stable);
        assert_eq!(r.churn.distinct_heads, 4);
    }

    #[test]
    fn report_renders_all_sections() {
        let trace = constructed(2, true, 3);
        let text = audit(&trace).to_text();
        for needle in ["connectivity:", "hierarchy:", "churn:", "topology:", "n_m"] {
            assert!(text.contains(needle), "missing '{needle}'");
        }
    }

    #[test]
    #[should_panic(expected = "cannot audit an invalid CTVG")]
    fn audit_rejects_invalid_trace() {
        use crate::hierarchy::single_cluster;
        use hinet_graph::graph::NodeId;
        use hinet_graph::trace::TvgTrace;
        use hinet_graph::Graph;
        use std::sync::Arc;
        // Member 3 not adjacent to head 0 on a path.
        let g = Arc::new(Graph::path(4));
        let h = Arc::new(single_cluster(4, NodeId(0)));
        let trace = CtvgTrace::new(TvgTrace::new(vec![g]), vec![h]);
        let _ = audit(&trace);
    }
}
