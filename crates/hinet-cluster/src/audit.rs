//! One-call stability audit of a CTVG trace.
//!
//! Pulls together the model predicates (Definitions 2–8), the flat-network
//! baselines (per-round and T-interval connectivity), the churn statistics
//! and the topology dynamics into a single report — what the
//! `stability_audit` example and the CLI `audit` subcommand print.

use crate::ctvg::CtvgTrace;
use crate::hierarchy::Hierarchy;
use crate::reaffiliation::{churn_stats, ChurnStats};
use crate::stability::stream::StabilityStream;
use crate::stability::{
    is_head_set_forever_stable, max_hierarchy_stability_sliding, max_hinet_t, min_hinet_l,
};
use hinet_graph::csr::CsrGraph;
use hinet_graph::graph::{Graph, NodeId};
use hinet_graph::metrics::{snapshot_stats, trace_stats, TraceStats};
use hinet_graph::verify::{is_always_connected, max_interval_connectivity};
use std::sync::Arc;

/// The full audit result.
#[derive(Clone, Debug, PartialEq)]
pub struct StabilityReport {
    /// Whether every snapshot is connected (1-interval connectivity).
    pub always_connected: bool,
    /// Largest flat T-interval connectivity (sliding windows), `None` if
    /// some round is disconnected.
    pub max_flat_t: Option<usize>,
    /// Minimal per-round L-hop head connectivity, `None` if heads are
    /// unreachable in some round.
    pub min_l: Option<usize>,
    /// Largest `T` such that the trace is a (T, min_l)-HiNet (aligned
    /// windows), `None` when `min_l` is undefined or no `T` works.
    pub max_hinet_t: Option<usize>,
    /// Largest sliding-window hierarchy stability.
    pub max_sliding_hierarchy_t: usize,
    /// Whether the head set never changes (Remark 1's precondition).
    pub heads_forever_stable: bool,
    /// Churn statistics (`θ`, `n_m`, `n_r`, …).
    pub churn: ChurnStats,
    /// Topology dynamics (density, churn rate, edge persistence).
    pub topology: TraceStats,
}

/// Audit a trace.
///
/// # Panics
/// Panics if any round's hierarchy fails validation — an invalid CTVG has
/// no meaningful stability properties to report.
pub fn audit(trace: &CtvgTrace) -> StabilityReport {
    if let Err((round, e)) = trace.validate() {
        panic!("cannot audit an invalid CTVG: round {round}: {e}");
    }
    let min_l = min_hinet_l(trace, 1);
    StabilityReport {
        always_connected: is_always_connected(trace.topology()),
        max_flat_t: max_interval_connectivity(trace.topology()),
        min_l,
        max_hinet_t: min_l.and_then(|l| max_hinet_t(trace, l)),
        max_sliding_hierarchy_t: max_hierarchy_stability_sliding(trace),
        heads_forever_stable: is_head_set_forever_stable(trace),
        churn: churn_stats(trace),
        topology: trace_stats(trace.topology()),
    }
}

impl StabilityReport {
    /// Render as indented plain text.
    pub fn to_text(&self) -> String {
        let opt = |v: Option<usize>| v.map_or("—".to_string(), |x| x.to_string());
        format!(
            "connectivity:\n\
             \x20 1-interval connected: {}\n\
             \x20 max flat T-interval (sliding): {}\n\
             hierarchy:\n\
             \x20 min L-hop head connectivity: {}\n\
             \x20 max (T, L)-HiNet window (aligned): {}\n\
             \x20 max hierarchy stability (sliding): {}\n\
             \x20 head set ∞-stable: {}\n\
             churn:\n\
             \x20 θ measured (distinct heads): {}\n\
             \x20 max concurrent heads: {}\n\
             \x20 mean members/round (n_m): {:.1}\n\
             \x20 re-affiliations/member (n_r): {:.2}\n\
             \x20 head-set changes: {}\n\
             topology:\n\
             \x20 mean edges: {:.1} (density {:.3})\n\
             \x20 edge persistence: {:.2}\n\
             \x20 relative churn: {:.2}\n",
            self.always_connected,
            opt(self.max_flat_t),
            opt(self.min_l),
            opt(self.max_hinet_t),
            self.max_sliding_hierarchy_t,
            self.heads_forever_stable,
            self.churn.distinct_heads,
            self.churn.max_concurrent_heads,
            self.churn.mean_members,
            self.churn.mean_reaffiliations,
            self.churn.head_set_changes,
            self.topology.mean_edges,
            self.topology.mean_density,
            self.topology.edge_persistence,
            self.topology.relative_churn,
        )
    }
}

/// One-pass streaming equivalent of [`audit`]: push rounds as they are
/// produced and get the **same** [`StabilityReport`] without materialising
/// a [`CtvgTrace`].
///
/// Built on [`StabilityStream`] (in spectrum mode, configured at `t = 1`,
/// so `min_l` and `max_hinet_t` fall out of the stream summary) plus
/// streaming mirrors of the flat-connectivity, churn and topology passes.
/// The flat T-interval answer uses a per-round bottleneck: with each
/// surviving edge's *age* (rounds of continuous presence, off the stream's
/// present-since map) the largest age threshold at which the snapshot is
/// spanned equals the longest window ending this round whose intersection
/// is connected — `max_flat_t` is the minimum of those bottlenecks over
/// rounds they actually constrain.
///
/// Retained state is `O(n + m)` — independent of the horizon; see
/// [`StreamingAudit::peak_state_bytes`].
///
/// # Panics
/// [`push`](Self::push) panics (with [`audit`]'s message) if a round's
/// hierarchy fails validation; [`finish`](Self::finish) expects at least
/// one pushed round, like `audit` on a non-empty trace.
pub struct StreamingAudit {
    stream: StabilityStream,
    round: usize,
    always_connected: bool,
    flat_dead: bool,
    flat_min: Option<usize>,
    ever_head: Vec<bool>,
    max_concurrent_heads: usize,
    member_rounds: usize,
    reaff: Vec<usize>,
    head_set_changes: usize,
    prev_h: Option<Arc<Hierarchy>>,
    sum_edges: f64,
    sum_density: f64,
    sum_clustering: f64,
    churn_total: usize,
    persistence_sum: f64,
    persistence_count: usize,
    prev_g: Option<Arc<Graph>>,
}

impl Default for StreamingAudit {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingAudit {
    /// Start an empty streaming audit.
    pub fn new() -> Self {
        StreamingAudit {
            stream: StabilityStream::new(1, 0).with_spectrum(),
            round: 0,
            always_connected: true,
            flat_dead: false,
            flat_min: None,
            ever_head: Vec::new(),
            max_concurrent_heads: 0,
            member_rounds: 0,
            reaff: Vec::new(),
            head_set_changes: 0,
            prev_h: None,
            sum_edges: 0.0,
            sum_density: 0.0,
            sum_clustering: 0.0,
            churn_total: 0,
            persistence_sum: 0.0,
            persistence_count: 0,
            prev_g: None,
        }
    }

    /// Consume one round of the dynamics.
    pub fn push(&mut self, g: &Arc<Graph>, h: &Arc<Hierarchy>) {
        let round = self.round;
        if let Err(e) = h.validate(g) {
            panic!("cannot audit an invalid CTVG: round {round}: {e}");
        }
        self.stream.push(g, h);

        // Flat-network baselines.
        self.always_connected &= CsrGraph::from(&**g).is_connected();
        let a = flat_bottleneck(g.n(), self.stream.edge_ages(), round);
        if a == 0 {
            self.flat_dead = true;
        } else if a < round + 1 {
            self.flat_min = Some(self.flat_min.map_or(a, |m| m.min(a)));
        }

        // Churn statistics (mirrors `reaffiliation::churn_stats`).
        let n = g.n();
        if self.ever_head.len() < n {
            self.ever_head.resize(n, false);
            self.reaff.resize(n, 0);
        }
        self.max_concurrent_heads = self.max_concurrent_heads.max(h.heads().len());
        for &u in h.heads() {
            self.ever_head[u.index()] = true;
        }
        self.member_rounds += h.member_count();
        if let Some(prev) = &self.prev_h {
            if prev.heads() != h.heads() {
                self.head_set_changes += 1;
            }
            for i in 0..n {
                let u = NodeId::from_index(i);
                if !h.is_head(u) && prev.cluster_of(u) != h.cluster_of(u) {
                    self.reaff[i] += 1;
                }
            }
        }

        // Topology dynamics (mirrors `metrics::trace_stats`).
        let s = snapshot_stats(g);
        self.sum_edges += s.m as f64;
        self.sum_density += s.density;
        self.sum_clustering += s.clustering_coefficient;
        if let Some(prev) = &self.prev_g {
            self.churn_total += prev.edge_distance(g);
            if prev.m() != 0 {
                let kept = prev.intersect(g).m();
                self.persistence_sum += kept as f64 / prev.m() as f64;
                self.persistence_count += 1;
            }
        }

        self.prev_h = Some(Arc::clone(h));
        self.prev_g = Some(Arc::clone(g));
        self.round = round + 1;
    }

    /// Rounds consumed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Deterministic high-water estimate of retained state, in bytes (the
    /// inner stream's peak plus this pass's own `O(n)` accumulators).
    pub fn peak_state_bytes(&self) -> usize {
        self.stream.peak_state_bytes()
            + std::mem::size_of::<Self>()
            + self.ever_head.len()
            + self.reaff.len() * std::mem::size_of::<usize>()
    }

    /// Summarise into the same [`StabilityReport`] the batch [`audit`]
    /// computes from a materialised trace.
    pub fn finish(self) -> StabilityReport {
        let rounds = self.round;
        let (_, sr) = self.stream.finish();
        let min_l = sr.min_hinet_l;
        let distinct_heads = self.ever_head.iter().filter(|&&b| b).count();
        let non_heads = self.ever_head.len() - distinct_heads;
        let total_reaffiliations: usize = self.reaff.iter().sum();
        let mean_edges = self.sum_edges / rounds as f64;
        let mean_churn = if rounds < 2 {
            0.0
        } else {
            self.churn_total as f64 / (rounds - 1) as f64
        };
        StabilityReport {
            always_connected: self.always_connected,
            max_flat_t: if self.flat_dead {
                None
            } else {
                Some(self.flat_min.unwrap_or(rounds))
            },
            min_l,
            max_hinet_t: min_l.and_then(|l| sr.max_hinet_t(l)),
            max_sliding_hierarchy_t: sr.max_sliding_hierarchy_t,
            heads_forever_stable: sr.heads_forever_stable,
            churn: ChurnStats {
                distinct_heads,
                max_concurrent_heads: self.max_concurrent_heads,
                mean_members: self.member_rounds as f64 / rounds as f64,
                mean_reaffiliations: if non_heads == 0 {
                    0.0
                } else {
                    total_reaffiliations as f64 / non_heads as f64
                },
                total_reaffiliations,
                head_set_changes: self.head_set_changes,
            },
            topology: TraceStats {
                rounds,
                mean_edges,
                mean_density: self.sum_density / rounds as f64,
                mean_clustering: self.sum_clustering / rounds as f64,
                mean_churn,
                relative_churn: if mean_edges == 0.0 {
                    0.0
                } else {
                    mean_churn / mean_edges
                },
                edge_persistence: if self.persistence_count == 0 {
                    1.0
                } else {
                    self.persistence_sum / self.persistence_count as f64
                },
            },
        }
    }
}

/// Largest age threshold `a` such that the edges continuously present for
/// the last `a` rounds span a connected graph on all `n` nodes at round
/// `f` (ages off the stream's present-since map) — `0` when even the full
/// snapshot is disconnected, `f + 1` when the round is unconstrained.
fn flat_bottleneck(
    n: usize,
    ages: &std::collections::BTreeMap<(u32, u32), u32>,
    f: usize,
) -> usize {
    if n <= 1 {
        return f + 1;
    }
    let mut edges: Vec<(usize, u32, u32)> = ages
        .iter()
        .map(|(&(u, v), &ps)| (f - ps as usize + 1, u, v))
        .collect();
    edges.sort_unstable_by(|a, b| b.0.cmp(&a.0));
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut components = n;
    for (age, u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            components -= 1;
            if components == 1 {
                return age;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{HiNetConfig, HiNetGen};

    fn constructed(t: usize, rotate: bool, seed: u64) -> CtvgTrace {
        let mut gen = HiNetGen::new(HiNetConfig {
            n: 30,
            num_heads: 4,
            theta: 8,
            l: 2,
            t,
            reaffil_prob: 0.1,
            rotate_heads: rotate,
            noise_edges: 5,
            seed,
        });
        CtvgTrace::capture(&mut gen, 3 * t.max(2))
    }

    #[test]
    fn audit_of_constructed_hinet_matches_declaration() {
        let trace = constructed(4, true, 1);
        let r = audit(&trace);
        assert!(r.always_connected);
        assert!(r.min_l.unwrap() <= 2);
        assert!(r.max_hinet_t.unwrap() >= 4, "declared window honoured");
        assert!(!r.heads_forever_stable, "rotation on");
        assert_eq!(r.churn.max_concurrent_heads, 4);
    }

    #[test]
    fn audit_detects_forever_stable_heads() {
        let trace = constructed(3, false, 2);
        let r = audit(&trace);
        assert!(r.heads_forever_stable);
        assert_eq!(r.churn.distinct_heads, 4);
    }

    #[test]
    fn report_renders_all_sections() {
        let trace = constructed(2, true, 3);
        let text = audit(&trace).to_text();
        for needle in ["connectivity:", "hierarchy:", "churn:", "topology:", "n_m"] {
            assert!(text.contains(needle), "missing '{needle}'");
        }
    }

    #[test]
    fn streaming_audit_matches_batch_exactly() {
        // Same report, field for field (floats included — both sides
        // accumulate in the same order), across rotation and stability
        // regimes and horizon lengths that are not multiples of t.
        for (t, rotate, seed) in [(4, true, 1), (3, false, 2), (2, true, 3), (5, true, 7)] {
            let trace = constructed(t, rotate, seed);
            let batch = audit(&trace);
            let mut sa = StreamingAudit::new();
            for (g, h) in trace.iter() {
                sa.push(g, h);
            }
            assert!(sa.peak_state_bytes() > 0);
            assert_eq!(sa.rounds(), trace.len());
            assert_eq!(sa.finish(), batch, "t={t} rotate={rotate} seed={seed}");
        }
    }

    #[test]
    fn streaming_audit_matches_batch_on_disconnected_rounds() {
        use crate::hierarchy::{ClusterId, Role};
        use hinet_graph::trace::TvgTrace;
        // Two valid clusters that lose their interconnection in the middle
        // round: max_flat_t and min_l must be None on both sides.
        let c0 = Some(ClusterId(NodeId(0)));
        let c2 = Some(ClusterId(NodeId(2)));
        let h = Arc::new(Hierarchy::new(
            vec![Role::Head, Role::Member, Role::Head, Role::Member],
            vec![c0, c0, c2, c2],
        ));
        let good = Arc::new(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let split = Arc::new(Graph::from_edges(4, [(0, 1), (2, 3)]));
        let t = TvgTrace::new(vec![Arc::clone(&good), split, good]);
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h), Arc::clone(&h), h]);
        let batch = audit(&trace);
        let mut sa = StreamingAudit::new();
        for (g, hh) in trace.iter() {
            sa.push(g, hh);
        }
        assert_eq!(sa.finish(), batch);
    }

    #[test]
    #[should_panic(expected = "cannot audit an invalid CTVG")]
    fn streaming_audit_rejects_invalid_round() {
        use crate::hierarchy::single_cluster;
        let g = Arc::new(Graph::path(4));
        let h = Arc::new(single_cluster(4, NodeId(0)));
        let mut sa = StreamingAudit::new();
        sa.push(&g, &h);
    }

    #[test]
    #[should_panic(expected = "cannot audit an invalid CTVG")]
    fn audit_rejects_invalid_trace() {
        use crate::hierarchy::single_cluster;
        use hinet_graph::graph::NodeId;
        use hinet_graph::trace::TvgTrace;
        use hinet_graph::Graph;
        use std::sync::Arc;
        // Member 3 not adjacent to head 0 on a path.
        let g = Arc::new(Graph::path(4));
        let h = Arc::new(single_cluster(4, NodeId(0)));
        let trace = CtvgTrace::new(TvgTrace::new(vec![g]), vec![h]);
        let _ = audit(&trace);
    }
}
