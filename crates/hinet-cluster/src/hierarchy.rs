//! The per-round cluster hierarchy: the `C` and `I` functions of CTVG.

use hinet_graph::graph::NodeId;
use hinet_graph::Graph;
use std::fmt;

/// Identifier of a cluster. Following the paper, "the node ID of \[the\]
/// cluster head is used as the cluster ID".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub NodeId);

impl ClusterId {
    /// The head node of this cluster.
    #[inline]
    pub fn head(self) -> NodeId {
        self.0
    }
}

impl fmt::Debug for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0 .0)
    }
}

/// Node status in the hierarchy — the codomain of the CTVG function `C`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// Cluster head (`h`).
    Head,
    /// Gateway (`g`): forwards packets between clusters along the head
    /// backbone.
    Gateway,
    /// Ordinary cluster member (`m`).
    Member,
}

/// Violations detected by [`Hierarchy::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HierarchyError {
    /// A node in `heads` does not have `Role::Head`, or vice versa.
    RoleHeadMismatch(NodeId),
    /// A head's own cluster id is not itself.
    HeadClusterSelf(NodeId),
    /// A node references a cluster whose head is not in the head set.
    DanglingCluster(NodeId, ClusterId),
    /// A member is not adjacent to its cluster head in the round's graph.
    MemberNotAdjacent(NodeId, ClusterId),
    /// A gateway or member has no cluster assignment.
    MissingCluster(NodeId),
    /// Multi-hop: a node's parent edge is absent from the round's graph.
    ParentNotAdjacent(NodeId, NodeId),
    /// Multi-hop: a node's parent belongs to a different cluster.
    ParentOutsideCluster(NodeId, NodeId),
    /// Multi-hop: a node's parent chain never reaches its head.
    BrokenParentChain(NodeId),
    /// Structure sizes disagree with the graph's node count.
    SizeMismatch {
        /// Nodes in the hierarchy.
        hierarchy: usize,
        /// Nodes in the graph.
        graph: usize,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::RoleHeadMismatch(u) => write!(f, "role/head-set mismatch at {u}"),
            HierarchyError::HeadClusterSelf(u) => write!(f, "head {u} not in its own cluster"),
            HierarchyError::DanglingCluster(u, c) => {
                write!(f, "{u} references cluster {c:?} with no head")
            }
            HierarchyError::MemberNotAdjacent(u, c) => {
                write!(f, "member {u} not adjacent to head of {c:?}")
            }
            HierarchyError::MissingCluster(u) => write!(f, "{u} has no cluster"),
            HierarchyError::ParentNotAdjacent(u, p) => {
                write!(f, "{u}'s parent {p} is not a neighbor")
            }
            HierarchyError::ParentOutsideCluster(u, p) => {
                write!(f, "{u}'s parent {p} is in a different cluster")
            }
            HierarchyError::BrokenParentChain(u) => {
                write!(f, "{u}'s parent chain never reaches its head")
            }
            HierarchyError::SizeMismatch { hierarchy, graph } => {
                write!(f, "hierarchy over {hierarchy} nodes, graph has {graph}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// One round's cluster-based hierarchy: roles (`C`) and cluster membership
/// (`I`) for every node.
///
/// Invariants (checked by [`Hierarchy::validate`] against the round's graph):
///
/// 1. `heads` is sorted, duplicate-free, and agrees with `Role::Head`.
/// 2. Every head belongs to its own cluster.
/// 3. Every referenced cluster id is a head.
/// 4. Every **member** is adjacent to its cluster head (the paper: "the
///    members of a cluster are neighbors of the cluster head").
/// 5. Gateways have a cluster assignment but are *not* required to be
///    adjacent to their head: for `L > 3` the backbone chains between heads
///    are longer than one hop, so intermediate gateways may sit several hops
///    from every head. (For the paper's 1-hop clusters, `L ≤ 3` and gateways
///    happen to be adjacent too.)
#[derive(Clone, PartialEq, Eq)]
pub struct Hierarchy {
    roles: Vec<Role>,
    cluster_of: Vec<Option<ClusterId>>,
    heads: Vec<NodeId>,
    /// Next hop toward the cluster head, for multi-hop clusters. `None`
    /// entries mean "the head itself is the parent" (the 1-hop case).
    parent: Vec<Option<NodeId>>,
    /// Whether any node's parent differs from its head (d-hop clusters,
    /// the paper's §VI future work). Switches [`Hierarchy::validate`] from
    /// member–head adjacency to parent-chain validation.
    multi_hop: bool,
}

impl fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hierarchy")
            .field("n", &self.roles.len())
            .field("heads", &self.heads.len())
            .finish()
    }
}

impl Hierarchy {
    /// Build a hierarchy from per-node roles and cluster assignments.
    ///
    /// The head set is derived from `roles`. Structural invariants that do
    /// not need the graph (1–3 above) are enforced here; graph-dependent
    /// ones are checked by [`Hierarchy::validate`].
    ///
    /// # Panics
    /// Panics if `roles` and `cluster_of` lengths differ, a head is not its
    /// own cluster, or a cluster id is not a head.
    pub fn new(roles: Vec<Role>, cluster_of: Vec<Option<ClusterId>>) -> Self {
        assert_eq!(
            roles.len(),
            cluster_of.len(),
            "roles/cluster length mismatch"
        );
        let heads: Vec<NodeId> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Role::Head)
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        for &h in &heads {
            assert_eq!(
                cluster_of[h.index()],
                Some(ClusterId(h)),
                "head {h} must be in its own cluster"
            );
        }
        for (i, c) in cluster_of.iter().enumerate() {
            if let Some(c) = c {
                assert!(
                    heads.binary_search(&c.head()).is_ok(),
                    "node {i} references non-head cluster {c:?}"
                );
            }
        }
        let n = roles.len();
        Hierarchy {
            roles,
            cluster_of,
            heads,
            parent: vec![None; n],
            multi_hop: false,
        }
    }

    /// Build a **multi-hop** hierarchy: `parent[u]` is `u`'s next hop
    /// toward its head (must be `None` for heads, `Some` for everyone
    /// clustered). Member–head adjacency is *not* required; instead
    /// [`Hierarchy::validate`] checks that each parent edge exists, stays
    /// within the cluster, and that parent chains reach the head without
    /// cycles.
    ///
    /// # Panics
    /// Panics on the same structural violations as [`Hierarchy::new`], or
    /// if a head has a parent / a clustered non-head lacks one.
    pub fn with_parents(
        roles: Vec<Role>,
        cluster_of: Vec<Option<ClusterId>>,
        parent: Vec<Option<NodeId>>,
    ) -> Self {
        let mut h = Hierarchy::new(roles, cluster_of);
        assert_eq!(parent.len(), h.n(), "parent/roles length mismatch");
        for u in (0..h.n()).map(NodeId::from_index) {
            match (h.roles[u.index()], parent[u.index()]) {
                (Role::Head, Some(p)) => panic!("head {u} must not have a parent (got {p})"),
                (Role::Head, None) => {}
                (_, None) if h.cluster_of[u.index()].is_some() => {
                    panic!("clustered non-head {u} needs a parent")
                }
                _ => {}
            }
        }
        h.multi_hop = parent
            .iter()
            .enumerate()
            .any(|(i, p)| matches!(p, Some(p) if Some(*p) != h.cluster_of[i].map(ClusterId::head)));
        h.parent = parent;
        h
    }

    /// Whether this hierarchy has multi-hop clusters.
    pub fn is_multi_hop(&self) -> bool {
        self.multi_hop
    }

    /// `u`'s next hop toward its head: the explicit parent if one was set,
    /// otherwise the head itself (1-hop case). `None` for heads and
    /// unclustered nodes.
    pub fn parent_of(&self, u: NodeId) -> Option<NodeId> {
        if self.roles[u.index()] == Role::Head {
            return None;
        }
        self.parent[u.index()].or_else(|| self.head_of(u))
    }

    /// Hop distance from `u` to its head along the parent chain (0 for a
    /// head). `None` for unclustered nodes or broken chains.
    pub fn depth_of(&self, u: NodeId) -> Option<usize> {
        if self.is_head(u) {
            return Some(0);
        }
        self.cluster_of(u)?;
        let mut cur = u;
        for depth in 1..=self.n() {
            let p = self.parent_of(cur)?;
            if self.is_head(p) {
                return Some(depth);
            }
            cur = p;
        }
        None
    }

    /// Number of nodes covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.roles.len()
    }

    /// Sorted set of cluster heads — `V_h` in the paper.
    #[inline]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// Role of `u` — the CTVG function `C`.
    #[inline]
    pub fn role(&self, u: NodeId) -> Role {
        self.roles[u.index()]
    }

    /// Cluster of `u` — the CTVG function `I` (or `None` if unclustered).
    #[inline]
    pub fn cluster_of(&self, u: NodeId) -> Option<ClusterId> {
        self.cluster_of[u.index()]
    }

    /// The head node `u` reports to (`None` if unclustered). For a head this
    /// is itself.
    #[inline]
    pub fn head_of(&self, u: NodeId) -> Option<NodeId> {
        self.cluster_of[u.index()].map(ClusterId::head)
    }

    /// Whether `u` is a cluster head.
    #[inline]
    pub fn is_head(&self, u: NodeId) -> bool {
        self.roles[u.index()] == Role::Head
    }

    /// Member set `M_k` of cluster `k` (every node assigned to `k`,
    /// including the head itself and gateways assigned to `k`), sorted.
    pub fn members_of(&self, k: ClusterId) -> Vec<NodeId> {
        (0..self.n())
            .map(NodeId::from_index)
            .filter(|&u| self.cluster_of[u.index()] == Some(k))
            .collect()
    }

    /// Number of nodes with [`Role::Member`].
    pub fn member_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == Role::Member).count()
    }

    /// Number of nodes with [`Role::Gateway`].
    pub fn gateway_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == Role::Gateway).count()
    }

    /// Validate graph-dependent invariants against the round's topology.
    ///
    /// For 1-hop hierarchies this enforces member–head adjacency (the
    /// paper's system model); for multi-hop hierarchies (built via
    /// [`Hierarchy::with_parents`]) it instead enforces that every
    /// clustered non-head's parent edge is present, stays inside the
    /// cluster, and that the parent chain reaches the head.
    pub fn validate(&self, g: &Graph) -> Result<(), HierarchyError> {
        if g.n() != self.n() {
            return Err(HierarchyError::SizeMismatch {
                hierarchy: self.n(),
                graph: g.n(),
            });
        }
        for u in (0..self.n()).map(NodeId::from_index) {
            match self.roles[u.index()] {
                Role::Head => {
                    if self.heads.binary_search(&u).is_err() {
                        return Err(HierarchyError::RoleHeadMismatch(u));
                    }
                    if self.cluster_of[u.index()] != Some(ClusterId(u)) {
                        return Err(HierarchyError::HeadClusterSelf(u));
                    }
                }
                Role::Member | Role::Gateway => {
                    let Some(c) = self.cluster_of[u.index()] else {
                        return Err(HierarchyError::MissingCluster(u));
                    };
                    if self.heads.binary_search(&c.head()).is_err() {
                        return Err(HierarchyError::DanglingCluster(u, c));
                    }
                    if self.multi_hop {
                        let p = self
                            .parent_of(u)
                            .ok_or(HierarchyError::BrokenParentChain(u))?;
                        if !g.has_edge(u, p) {
                            return Err(HierarchyError::ParentNotAdjacent(u, p));
                        }
                        if self.cluster_of[p.index()] != Some(c) {
                            return Err(HierarchyError::ParentOutsideCluster(u, p));
                        }
                        if self.depth_of(u).is_none() {
                            return Err(HierarchyError::BrokenParentChain(u));
                        }
                    } else if self.roles[u.index()] == Role::Member && !g.has_edge(u, c.head()) {
                        return Err(HierarchyError::MemberNotAdjacent(u, c));
                    }
                }
            }
        }
        Ok(())
    }

    /// The L-hop cluster-head connectivity of this hierarchy in graph `g`
    /// (Definition 6): the smallest `L` such that the graph on heads with
    /// "within distance `L` of each other" edges is connected. `None` if the
    /// heads cannot be mutually reached at all, `Some(0)` for ≤1 head.
    ///
    /// Computed as the bottleneck (minimax) spanning value over pairwise head
    /// distances: sort candidate head pairs by BFS distance and union-find
    /// until the head set is connected; the last distance added is `L`.
    pub fn l_hop_connectivity(&self, g: &Graph) -> Option<usize> {
        let h = self.heads.len();
        if h <= 1 {
            return Some(0);
        }
        // Pairwise head distances via BFS from each head.
        let csr = hinet_graph::CsrGraph::from(g);
        let mut pairs: Vec<(u32, usize, usize)> = Vec::with_capacity(h * (h - 1) / 2);
        for (i, &hi) in self.heads.iter().enumerate() {
            let dist = csr.bfs(hi);
            for (j, &hj) in self.heads.iter().enumerate().skip(i + 1) {
                let d = dist[hj.index()];
                if d != u32::MAX {
                    pairs.push((d, i, j));
                }
            }
        }
        pairs.sort_unstable();
        // Union-find over head indices.
        let mut parent: Vec<usize> = (0..h).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut components = h;
        for (d, i, j) in pairs {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                components -= 1;
                if components == 1 {
                    return Some(d as usize);
                }
            }
        }
        None
    }
}

/// Size/shape summary of one hierarchy, for experiment reports.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchySummary {
    /// Number of clusters (= heads).
    pub clusters: usize,
    /// Gateway count.
    pub gateways: usize,
    /// Member count.
    pub members: usize,
    /// Smallest cluster size (counting the head).
    pub min_cluster: usize,
    /// Largest cluster size.
    pub max_cluster: usize,
    /// Mean cluster size.
    pub mean_cluster: f64,
    /// Maximum member depth (1 for 1-hop hierarchies).
    pub max_depth: usize,
}

impl Hierarchy {
    /// Compute the [`HierarchySummary`].
    pub fn summary(&self) -> HierarchySummary {
        let mut sizes: Vec<usize> = Vec::with_capacity(self.heads.len());
        for &h in &self.heads {
            sizes.push(self.members_of(ClusterId(h)).len());
        }
        let (min_cluster, max_cluster) = sizes
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &s| (lo.min(s), hi.max(s)));
        let total: usize = sizes.iter().sum();
        let max_depth = (0..self.n())
            .filter_map(|i| self.depth_of(NodeId::from_index(i)))
            .max()
            .unwrap_or(0);
        HierarchySummary {
            clusters: self.heads.len(),
            gateways: self.gateway_count(),
            members: self.member_count(),
            min_cluster: if sizes.is_empty() { 0 } else { min_cluster },
            max_cluster,
            mean_cluster: if sizes.is_empty() {
                0.0
            } else {
                total as f64 / sizes.len() as f64
            },
            max_depth,
        }
    }
}

/// Convenience: build the hierarchy of a single cluster spanning the whole
/// star around `head` (used in tests and the quickstart example).
pub fn single_cluster(n: usize, head: NodeId) -> Hierarchy {
    let mut roles = vec![Role::Member; n];
    roles[head.index()] = Role::Head;
    let cluster_of = vec![Some(ClusterId(head)); n];
    Hierarchy::new(roles, cluster_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Fig-1-style network: two clusters with a gateway chain between heads.
    /// Heads: 0 and 4. Members: 1,2 → 0; 5,6 → 4. Gateway: 3 (cluster 0).
    fn two_cluster_fixture() -> (Graph, Hierarchy) {
        let g = Graph::from_edges(7, [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (4, 6)]);
        let roles = vec![
            Role::Head,    // 0
            Role::Member,  // 1
            Role::Member,  // 2
            Role::Gateway, // 3
            Role::Head,    // 4
            Role::Member,  // 5
            Role::Member,  // 6
        ];
        let c0 = Some(ClusterId(nid(0)));
        let c4 = Some(ClusterId(nid(4)));
        let cluster_of = vec![c0, c0, c0, c0, c4, c4, c4];
        (g, Hierarchy::new(roles, cluster_of))
    }

    #[test]
    fn fixture_is_valid() {
        let (g, h) = two_cluster_fixture();
        assert_eq!(h.validate(&g), Ok(()));
        assert_eq!(h.heads(), &[nid(0), nid(4)]);
        assert_eq!(h.member_count(), 4);
        assert_eq!(h.gateway_count(), 1);
        assert_eq!(h.head_of(nid(5)), Some(nid(4)));
        assert_eq!(h.head_of(nid(3)), Some(nid(0)));
        assert!(h.is_head(nid(0)));
        assert!(!h.is_head(nid(3)));
    }

    #[test]
    fn members_of_lists_cluster() {
        let (_, h) = two_cluster_fixture();
        assert_eq!(
            h.members_of(ClusterId(nid(0))),
            vec![nid(0), nid(1), nid(2), nid(3)]
        );
        assert_eq!(
            h.members_of(ClusterId(nid(4))),
            vec![nid(4), nid(5), nid(6)]
        );
    }

    #[test]
    fn l_hop_connectivity_through_gateway() {
        let (g, h) = two_cluster_fixture();
        // Heads 0 and 4 are at distance 2 through gateway 3.
        assert_eq!(h.l_hop_connectivity(&g), Some(2));
    }

    #[test]
    fn l_hop_zero_for_single_head() {
        let h = single_cluster(5, nid(0));
        let g = Graph::star(5);
        assert_eq!(h.validate(&g), Ok(()));
        assert_eq!(h.l_hop_connectivity(&g), Some(0));
    }

    #[test]
    fn l_hop_none_when_heads_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let roles = vec![Role::Head, Role::Member, Role::Head, Role::Member];
        let cluster_of = vec![
            Some(ClusterId(nid(0))),
            Some(ClusterId(nid(0))),
            Some(ClusterId(nid(2))),
            Some(ClusterId(nid(2))),
        ];
        let h = Hierarchy::new(roles, cluster_of);
        assert_eq!(h.validate(&g), Ok(()));
        assert_eq!(h.l_hop_connectivity(&g), None);
    }

    #[test]
    fn validate_rejects_nonadjacent_member() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let roles = vec![Role::Head, Role::Member, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let h = Hierarchy::new(roles, vec![c0, c0, c0]);
        assert_eq!(
            h.validate(&g),
            Err(HierarchyError::MemberNotAdjacent(nid(2), ClusterId(nid(0))))
        );
    }

    #[test]
    fn validate_rejects_missing_cluster() {
        let g = Graph::path(3);
        let roles = vec![Role::Head, Role::Member, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let h = Hierarchy::new(roles, vec![c0, c0, None]);
        assert_eq!(h.validate(&g), Err(HierarchyError::MissingCluster(nid(2))));
    }

    #[test]
    fn validate_rejects_size_mismatch() {
        let h = single_cluster(3, nid(0));
        let g = Graph::star(4);
        assert!(matches!(
            h.validate(&g),
            Err(HierarchyError::SizeMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "must be in its own cluster")]
    fn new_rejects_head_outside_own_cluster() {
        let roles = vec![Role::Head, Role::Head];
        let c0 = Some(ClusterId(nid(0)));
        let _ = Hierarchy::new(roles, vec![c0, c0]);
    }

    #[test]
    #[should_panic(expected = "references non-head cluster")]
    fn new_rejects_dangling_cluster() {
        let roles = vec![Role::Head, Role::Member];
        let _ = Hierarchy::new(
            roles,
            vec![Some(ClusterId(nid(0))), Some(ClusterId(nid(1)))],
        );
    }

    #[test]
    fn summary_of_two_cluster_fixture() {
        let (_, h) = two_cluster_fixture();
        let s = h.summary();
        assert_eq!(s.clusters, 2);
        assert_eq!(s.gateways, 1);
        assert_eq!(s.members, 4);
        assert_eq!(s.min_cluster, 3);
        assert_eq!(s.max_cluster, 4);
        assert!((s.mean_cluster - 3.5).abs() < 1e-12);
        assert_eq!(s.max_depth, 1);
    }

    /// 2-hop cluster: head 0, member 1 adjacent, member 2 behind 1.
    fn two_hop_fixture() -> (Graph, Hierarchy) {
        let g = Graph::path(3);
        let roles = vec![Role::Head, Role::Member, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let parent = vec![None, Some(nid(0)), Some(nid(1))];
        (g, Hierarchy::with_parents(roles, vec![c0, c0, c0], parent))
    }

    #[test]
    fn multi_hop_hierarchy_validates() {
        let (g, h) = two_hop_fixture();
        assert!(h.is_multi_hop());
        assert_eq!(h.validate(&g), Ok(()));
        assert_eq!(h.parent_of(nid(1)), Some(nid(0)));
        assert_eq!(h.parent_of(nid(2)), Some(nid(1)));
        assert_eq!(h.parent_of(nid(0)), None);
        assert_eq!(h.depth_of(nid(0)), Some(0));
        assert_eq!(h.depth_of(nid(1)), Some(1));
        assert_eq!(h.depth_of(nid(2)), Some(2));
    }

    #[test]
    fn one_hop_parent_defaults_to_head() {
        let h = single_cluster(4, nid(0));
        assert!(!h.is_multi_hop());
        assert_eq!(h.parent_of(nid(3)), Some(nid(0)));
        assert_eq!(h.depth_of(nid(3)), Some(1));
    }

    #[test]
    fn multi_hop_rejects_missing_parent_edge() {
        // Parent chain declares 2 → 1 but the edge 1–2 is absent.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let roles = vec![Role::Head, Role::Member, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let parent = vec![None, Some(nid(0)), Some(nid(1))];
        let h = Hierarchy::with_parents(roles, vec![c0, c0, c0], parent);
        assert_eq!(
            h.validate(&g),
            Err(HierarchyError::ParentNotAdjacent(nid(2), nid(1)))
        );
    }

    #[test]
    fn multi_hop_rejects_cross_cluster_parent() {
        let g = Graph::path(4);
        let roles = vec![Role::Head, Role::Member, Role::Member, Role::Head];
        let c0 = Some(ClusterId(nid(0)));
        let c3 = Some(ClusterId(nid(3)));
        // Node 2 is in cluster 3 but its parent 1 is in cluster 0.
        let parent = vec![None, Some(nid(0)), Some(nid(1)), None];
        let h = Hierarchy::with_parents(roles, vec![c0, c0, c3, c3], parent);
        assert_eq!(
            h.validate(&g),
            Err(HierarchyError::ParentOutsideCluster(nid(2), nid(1)))
        );
    }

    #[test]
    fn multi_hop_detects_parent_cycle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let roles = vec![Role::Head, Role::Member, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        // 1 and 2 point at each other: chain never reaches head 0.
        let parent = vec![None, Some(nid(2)), Some(nid(1))];
        let h = Hierarchy::with_parents(roles, vec![c0, c0, c0], parent);
        assert_eq!(h.depth_of(nid(1)), None);
        assert_eq!(
            h.validate(&g),
            Err(HierarchyError::BrokenParentChain(nid(1)))
        );
    }

    #[test]
    #[should_panic(expected = "must not have a parent")]
    fn with_parents_rejects_head_parent() {
        let roles = vec![Role::Head, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let _ = Hierarchy::with_parents(roles, vec![c0, c0], vec![Some(nid(1)), Some(nid(0))]);
    }

    #[test]
    #[should_panic(expected = "needs a parent")]
    fn with_parents_rejects_orphan_member() {
        let roles = vec![Role::Head, Role::Member];
        let c0 = Some(ClusterId(nid(0)));
        let _ = Hierarchy::with_parents(roles, vec![c0, c0], vec![None, None]);
    }

    #[test]
    fn gateway_need_not_be_adjacent_to_head() {
        // Backbone chain: head 0 - gw 1 - gw 2 - head 3 (L = 3).
        let g = Graph::path(4);
        let roles = vec![Role::Head, Role::Gateway, Role::Gateway, Role::Head];
        let cluster_of = vec![
            Some(ClusterId(nid(0))),
            Some(ClusterId(nid(0))),
            Some(ClusterId(nid(3))),
            Some(ClusterId(nid(3))),
        ];
        let h = Hierarchy::new(roles, cluster_of);
        assert_eq!(h.validate(&g), Ok(()));
        assert_eq!(h.l_hop_connectivity(&g), Some(3));
    }
}
