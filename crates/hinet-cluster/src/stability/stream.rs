//! One-pass streaming verification of the stability definitions.
//!
//! The batch verifiers in [`crate::stability`] recompute every aligned
//! window from a fully materialised [`crate::ctvg::CtvgTrace`]; at
//! million-node × long-horizon scale the trace no longer fits in memory.
//! [`StabilityStream`](crate::stability::stream::StabilityStream) consumes
//! a dynamics trace **one round at a time** and
//! maintains Definitions 2–8 online:
//!
//! * **Defs 2/3/4** (head set / membership / hierarchy stability) —
//!   run-length tracking against the window's first hierarchy, plus a
//!   gcd-of-change-rounds summary that answers Def 4 for *every* `T` at
//!   once (an aligned window contains no hierarchy change iff `T` divides
//!   every change round).
//! * **Defs 5/6/7** (stable head-connecting subgraph, L-hop bound) — an
//!   incrementally maintained edge-intersection over the open window (the
//!   same "carry the stable subgraph forward" idiom as the LCC maintenance
//!   in [`LccMaintainer`](crate::clustering::LccMaintainer)), evaluated
//!   with the window's
//!   first-round head set exactly as the batch verifiers do.
//! * **Def 8** — the conjunction, per aligned window.
//!
//! Verdicts are *pointwise identical* to the batch verifiers — per window,
//! per definition, including the trailing partial window (see the
//! windowing contract on [`crate::stability`]) — which the differential
//! property plane (`tests/prop_stream.rs`) pins across generated, fuzzed
//! and fault-perturbed traces, under arbitrary chunk boundaries.
//!
//! # Memory model
//!
//! Per-round state is the open window's edge-intersection (only shrinks
//! within a window), two `Arc` hierarchy handles and `O(1)` counters —
//! independent of the horizon. The optional **spectrum** mode
//! ([`with_spectrum`](crate::stability::stream::StabilityStream::with_spectrum))
//! adds an `edge → present-since` map
//! (bounded by the current snapshot's edge count) and 5 bytes per candidate
//! `T`, and answers `max_hinet_t` for *any* `L` at end-of-stream without a
//! second pass.
//! [`peak_state_bytes`](crate::stability::stream::StabilityStream::peak_state_bytes)
//! reports the
//! deterministic high-water estimate of all retained state (this is what
//! the ci long-horizon smoke gates; it is an estimate of live state, not
//! allocator RSS).

use crate::hierarchy::Hierarchy;
use crate::stability::same_structure;
use hinet_graph::graph::{Graph, GraphBuilder, NodeId};
use hinet_graph::traversal::connects_all;
use hinet_rt::obs::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Verdict for one aligned window, mirroring one iteration of
/// [`crate::stability::trace_stability_windows`].
///
/// `def3` is the whole-mapping membership verdict (every cluster's member
/// set unchanged), which the batch side expresses per cluster via
/// [`crate::stability::cluster_stable_in_window`]; it is carried here so
/// the implication lattice (Def 4 ⇒ Def 2 ∧ Def 3) is checkable on the
/// streaming path, but like the batch tracer it is not emitted as an
/// event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowVerdict {
    /// First round of the window.
    pub start: usize,
    /// Window length (equal to the configured `t` except for a trailing
    /// partial window).
    pub len: usize,
    /// Definition 2: head set constant over the window.
    pub def2: bool,
    /// Definition 3: every cluster's member set constant over the window.
    pub def3: bool,
    /// Definition 4: hierarchy structure constant over the window.
    pub def4: bool,
    /// Definition 5: the window's edge-intersection connects all heads.
    pub def5: bool,
    /// Definition 6: L-hop head connectivity of the intersection ≤ `l`.
    pub def6: bool,
    /// Definition 7: Def 5 ∧ Def 6.
    pub def7: bool,
    /// Definition 8: Def 4 ∧ Def 7 — the full (T, L)-HiNet predicate.
    pub def8: bool,
    /// Measured L-hop head connectivity of the window's intersection
    /// (`None` when the heads are not mutually reachable in it).
    pub l_hop: Option<usize>,
}

impl WindowVerdict {
    /// Emit this verdict as paired `stability_window` open/close events,
    /// byte-compatible with the batch
    /// [`crate::stability::trace_stability_windows`] (defs 2, 4, 5, 6, 7, 8;
    /// open at the window's first round, close at its last, both carrying
    /// the verdict).
    pub fn emit_into(&self, tracer: &mut Tracer) {
        let last = (self.start + self.len - 1) as u64;
        for (def, held) in [
            (2u8, self.def2),
            (4, self.def4),
            (5, self.def5),
            (6, self.def6),
            (7, self.def7),
            (8, self.def8),
        ] {
            tracer.stability_window(self.start as u64, def, true, held);
            tracer.stability_window(last, def, false, held);
        }
    }
}

/// The first definition violation observed on the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The smallest violated paper definition (2, 4, 5 or 6).
    pub def: u8,
    /// First round of the violating window.
    pub window_start: usize,
    /// Round at which the violation was detected. Defs 2/4 are detected at
    /// the exact round the hierarchy deviates; Defs 5/6 at the exact round
    /// the window's intersection breaks when the connectivity certificate
    /// is enabled ([`StabilityStream::with_certificate`]), otherwise at the
    /// window's last round.
    pub round: usize,
}

/// `max_hinet_t` answers for every candidate `T`, built in spectrum mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpectrumReport {
    len: usize,
    change_gcd: u64,
    /// Indexed by `t - 1`: worst window L-hop value for `t`, `None` when
    /// some window's intersection disconnects the heads.
    worst: Vec<Option<u32>>,
}

impl SpectrumReport {
    /// Largest `t ≤ len` such that the streamed trace was a (t, l)-HiNet
    /// over aligned windows, or `None` if not even (1, l) — the streaming
    /// answer to [`crate::stability::max_hinet_t`].
    pub fn max_t_for(&self, l: usize) -> Option<usize> {
        (1..=self.len).rev().find(|&t| {
            (self.change_gcd == 0 || self.change_gcd % t as u64 == 0)
                && matches!(self.worst.get(t - 1), Some(Some(w)) if *w as usize <= l)
        })
    }
}

/// End-of-stream summary.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Rounds consumed.
    pub rounds: usize,
    /// Aligned windows closed (including a trailing partial window).
    pub windows: usize,
    /// Windows in which Definition 8 held — the batch
    /// [`crate::stability::trace_stability_windows`] return value.
    pub hinet_windows: usize,
    /// Smallest `l` making the trace a (t, l)-HiNet for the configured `t`
    /// — the streaming answer to [`crate::stability::min_hinet_l`].
    pub min_hinet_l: Option<usize>,
    /// Largest sliding-window hierarchy stability — the streaming answer
    /// to [`crate::stability::max_hierarchy_stability_sliding`].
    pub max_sliding_hierarchy_t: usize,
    /// Whether the head set never changed (Remark 1's precondition).
    pub heads_forever_stable: bool,
    /// First observed definition violation, if any.
    pub violation: Option<Violation>,
    /// Deterministic high-water estimate of retained state, in bytes.
    pub peak_state_bytes: usize,
    /// Per-`T` spectrum (present only in spectrum mode).
    pub spectrum: Option<SpectrumReport>,
}

impl StreamReport {
    /// Largest `t` such that the trace was a (t, l)-HiNet, answered from
    /// the spectrum. Returns `None` when the stream ran without
    /// [`StabilityStream::with_spectrum`] or when no `t` works.
    pub fn max_hinet_t(&self, l: usize) -> Option<usize> {
        self.spectrum.as_ref().and_then(|s| s.max_t_for(l))
    }
}

/// State of the currently open aligned window.
struct WindowState {
    start: usize,
    first: Arc<Hierarchy>,
    inter: Graph,
    /// Intersection edge count after the previous round, for certificate
    /// shrink detection.
    last_m: usize,
    def2: bool,
    def3: bool,
    def4: bool,
}

/// Incremental one-pass verifier for Definitions 2–8 over aligned windows.
///
/// Feed rounds with [`push`](Self::push) (or [`push_chunk`](Self::push_chunk)
/// — chunk boundaries never change verdicts); each window close returns a
/// [`WindowVerdict`] equal to the batch verifiers' answer for that window,
/// and [`finish`](Self::finish) closes the trailing partial window and
/// returns the [`StreamReport`].
///
/// ```
/// use hinet_cluster::hierarchy::single_cluster;
/// use hinet_cluster::stability::stream::StabilityStream;
/// use hinet_graph::graph::{Graph, NodeId};
/// use std::sync::Arc;
///
/// let g = Arc::new(Graph::star(5));
/// let h = Arc::new(single_cluster(5, NodeId(0)));
/// let mut stream = StabilityStream::new(2, 1);
/// let mut verdicts = Vec::new();
/// for _ in 0..5 {
///     verdicts.extend(stream.push(&g, &h));
/// }
/// let (last, report) = stream.finish();
/// verdicts.extend(last); // trailing partial window [4, 5)
/// assert_eq!(verdicts.len(), 3);
/// assert!(verdicts.iter().all(|v| v.def8));
/// assert_eq!(report.hinet_windows, 3);
/// assert_eq!(report.min_hinet_l, Some(0));
/// ```
pub struct StabilityStream {
    t: usize,
    l: usize,
    spectrum_on: bool,
    certificate: bool,
    n: Option<usize>,
    round: usize,
    prev: Option<Arc<Hierarchy>>,
    first_heads: Option<Vec<NodeId>>,
    heads_forever: bool,
    min_run: Option<usize>,
    run: usize,
    change_gcd: u64,
    last_change: usize,
    win: Option<WindowState>,
    windows: usize,
    hinet_windows: usize,
    min_l_worst: usize,
    min_l_dead: bool,
    violation: Option<Violation>,
    present_since: BTreeMap<(u32, u32), u32>,
    worst: Vec<Option<u32>>,
    peak_state_bytes: usize,
}

impl StabilityStream {
    /// Start a stream verifying aligned windows of length `t` against an
    /// L-hop bound of `l`.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, l: usize) -> Self {
        assert!(t >= 1);
        StabilityStream {
            t,
            l,
            spectrum_on: false,
            certificate: false,
            n: None,
            round: 0,
            prev: None,
            first_heads: None,
            heads_forever: true,
            min_run: None,
            run: 1,
            change_gcd: 0,
            last_change: 0,
            win: None,
            windows: 0,
            hinet_windows: 0,
            min_l_worst: 0,
            min_l_dead: false,
            violation: None,
            present_since: BTreeMap::new(),
            worst: Vec::new(),
            peak_state_bytes: 0,
        }
    }

    /// Additionally maintain the per-`T` spectrum so
    /// [`StreamReport::max_hinet_t`] is answerable for **any** `l` at
    /// end-of-stream. Costs an `edge → present-since` map plus
    /// `O(d(f))` window evaluations at round `f` (scheduled on the
    /// divisors of `f + 1`, pruned by the change-round gcd).
    pub fn with_spectrum(mut self) -> Self {
        self.spectrum_on = true;
        self
    }

    /// Additionally re-check head connectivity whenever the open window's
    /// intersection loses edges, so Def 5/6 violations are pinned to the
    /// exact round the stable subgraph broke (the fault-plane oracle mode)
    /// instead of the window's close. Verdicts are unaffected —
    /// connectivity only degrades as an intersection shrinks, so the
    /// early answer and the close answer agree.
    pub fn with_certificate(mut self) -> Self {
        self.certificate = true;
        self
    }

    /// Rounds consumed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// First observed definition violation, if any (available mid-stream —
    /// this is what the engine's runtime oracle polls).
    pub fn violation(&self) -> Option<Violation> {
        self.violation
    }

    /// Deterministic high-water estimate of retained state, in bytes.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_state_bytes
    }

    /// Edge → first-round-of-current-presence map (spectrum mode only);
    /// shared with the streaming audit's flat-connectivity pass.
    pub(crate) fn edge_ages(&self) -> &BTreeMap<(u32, u32), u32> {
        &self.present_since
    }

    /// Consume one round. Returns the window verdict when this round
    /// closes an aligned window (always, for `t = 1`).
    ///
    /// # Panics
    /// Panics if the node count differs from earlier rounds.
    pub fn push(&mut self, g: &Arc<Graph>, h: &Arc<Hierarchy>) -> Option<WindowVerdict> {
        let round = self.round;
        match self.n {
            Some(n) => assert_eq!(g.n(), n, "node count changed mid-stream"),
            None => self.n = Some(g.n()),
        }

        // Trace-wide trackers: sliding run lengths, change-round gcd,
        // ∞-stable head set.
        if round == 0 {
            self.first_heads = Some(h.heads().to_vec());
        } else {
            let prev = self.prev.as_ref().expect("round > 0 has a predecessor");
            if same_structure(prev, h) {
                self.run += 1;
            } else {
                self.min_run = Some(self.min_run.map_or(self.run, |m| m.min(self.run)));
                self.run = 1;
                self.change_gcd = gcd(self.change_gcd, round as u64);
                self.last_change = round;
            }
            if self.heads_forever
                && h.heads() != self.first_heads.as_deref().expect("set at round 0")
            {
                self.heads_forever = false;
            }
        }

        // Configured-t window: open on the boundary, otherwise fold this
        // round into the running state.
        let opened = round % self.t == 0;
        if opened {
            debug_assert!(self.win.is_none(), "previous window left open");
            self.win = Some(WindowState {
                start: round,
                first: Arc::clone(h),
                inter: (**g).clone(),
                last_m: usize::MAX,
                def2: true,
                def3: true,
                def4: true,
            });
        } else {
            let mut win = self.win.take().expect("window opened at the boundary");
            let heads_eq = h.heads() == win.first.heads();
            let clusters_eq = (0..h.n()).all(|i| {
                let u = NodeId::from_index(i);
                h.cluster_of(u) == win.first.cluster_of(u)
            });
            if win.def2 && !heads_eq {
                win.def2 = false;
                self.record_violation(2, win.start, round);
            }
            win.def3 &= clusters_eq;
            if win.def4 && !(heads_eq && clusters_eq) {
                win.def4 = false;
                self.record_violation(4, win.start, round);
            }
            win.inter = win.inter.intersect(g);
            self.win = Some(win);
        }

        // Connectivity certificate: re-check the head subgraph the moment
        // the window's intersection loses an edge (and once at open).
        if self.certificate && self.violation.is_none() {
            let win = self.win.as_ref().expect("window open");
            if win.inter.m() < win.last_m {
                match win.first.l_hop_connectivity(&win.inter) {
                    None if win.first.heads().len() > 1 => {
                        let start = win.start;
                        self.record_violation(5, start, round);
                    }
                    Some(actual) if actual > self.l => {
                        let start = win.start;
                        self.record_violation(6, start, round);
                    }
                    _ => {}
                }
            }
        }
        if let Some(win) = self.win.as_mut() {
            win.last_m = win.inter.m();
        }

        if self.spectrum_on {
            self.update_spectrum(g, h, round);
        }

        self.prev = Some(Arc::clone(h));
        self.round = round + 1;
        self.peak_state_bytes = self.peak_state_bytes.max(self.state_bytes());

        if round % self.t == self.t - 1 {
            Some(self.close_window())
        } else {
            None
        }
    }

    /// Consume a chunk of rounds, returning the verdicts of all windows
    /// closed inside it. Feeding a trace round-by-round or in arbitrary
    /// chunks yields identical verdict sequences (chunk-boundary
    /// invariance, pinned by `tests/prop_stream.rs`).
    pub fn push_chunk<'a, I>(&mut self, rounds: I) -> Vec<WindowVerdict>
    where
        I: IntoIterator<Item = (&'a Arc<Graph>, &'a Arc<Hierarchy>)>,
    {
        rounds
            .into_iter()
            .filter_map(|(g, h)| self.push(g, h))
            .collect()
    }

    /// Close the trailing partial window (if any) and summarise.
    pub fn finish(mut self) -> (Option<WindowVerdict>, StreamReport) {
        let last = self.win.is_some().then(|| self.close_window());
        let len = self.round;
        if self.spectrum_on {
            self.finish_spectrum(len);
        }
        let report = StreamReport {
            rounds: len,
            windows: self.windows,
            hinet_windows: self.hinet_windows,
            min_hinet_l: if self.min_l_dead {
                None
            } else {
                Some(self.min_l_worst)
            },
            max_sliding_hierarchy_t: self.min_run.unwrap_or(usize::MAX).min(self.run).min(len),
            heads_forever_stable: self.heads_forever,
            violation: self.violation,
            peak_state_bytes: self.peak_state_bytes,
            spectrum: self.spectrum_on.then(|| SpectrumReport {
                len,
                change_gcd: self.change_gcd,
                worst: self.worst.clone(),
            }),
        };
        (last, report)
    }

    fn record_violation(&mut self, def: u8, window_start: usize, round: usize) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                def,
                window_start,
                round,
            });
        }
    }

    /// Close the open window: evaluate Defs 5/6 on its edge-intersection
    /// exactly as the batch verifiers do and fold the verdict into the
    /// stream summaries.
    fn close_window(&mut self) -> WindowVerdict {
        let win = self.win.take().expect("no window open");
        let len = self.round - win.start;
        let def5 = win.first.heads().len() <= 1 || connects_all(&win.inter, win.first.heads());
        let l_hop = win.first.l_hop_connectivity(&win.inter);
        let def6 = match l_hop {
            Some(actual) => actual <= self.l,
            None => false,
        };
        let def7 = def5 && def6;
        let def8 = win.def4 && def7;
        self.windows += 1;
        if def8 {
            self.hinet_windows += 1;
        }
        match l_hop {
            Some(l) => self.min_l_worst = self.min_l_worst.max(l),
            None => self.min_l_dead = true,
        }
        if !def8 {
            let last = win.start + len - 1;
            let def = if !win.def2 {
                2
            } else if !win.def4 {
                4
            } else if !def5 {
                5
            } else {
                6
            };
            self.record_violation(def, win.start, last);
        }
        WindowVerdict {
            start: win.start,
            len,
            def2: win.def2,
            def3: win.def3,
            def4: win.def4,
            def5,
            def6,
            def7,
            def8,
            l_hop,
        }
    }

    /// Spectrum maintenance for round `f`: refresh the `edge →
    /// present-since` map from the current snapshot, then evaluate every
    /// full window ending at `f` (one per divisor `t'` of `f + 1`, pruned
    /// by the change-round gcd).
    ///
    /// A `t'` surviving the gcd prune has had no hierarchy change inside
    /// `(f + 1 - t', f]` — change rounds are multiples of `t'` and the
    /// next one past the window start would be `f + 1` — so the current
    /// hierarchy's head set equals the window-first head set and no
    /// snapshot is needed.
    fn update_spectrum(&mut self, g: &Graph, h: &Hierarchy, f: usize) {
        let mut next = BTreeMap::new();
        for e in g.edges() {
            let key = (e.a.0, e.b.0);
            let ps = self.present_since.get(&key).copied().unwrap_or(f as u32);
            next.insert(key, ps);
        }
        self.present_since = next;
        for t in divisors(f + 1) {
            if self.change_gcd != 0 && self.change_gcd % t as u64 != 0 {
                continue; // Def 4 already dead for this t, permanently.
            }
            let s = f + 1 - t;
            debug_assert!(
                self.last_change <= s,
                "change inside a gcd-surviving window"
            );
            self.eval_spectrum_window(t, s, h);
        }
    }

    /// Evaluate the window `[s, f]` for candidate `t`: L-hop connectivity
    /// of the head set on the edges continuously present since `s`.
    fn eval_spectrum_window(&mut self, t: usize, s: usize, h: &Hierarchy) {
        let mut b = GraphBuilder::new(self.n.expect("pushed at least one round"));
        for (&(u, v), &ps) in &self.present_since {
            if ps as usize <= s {
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
        let inter = b.build();
        if self.worst.len() < t {
            self.worst.resize(t, Some(0));
        }
        match (self.worst[t - 1], h.l_hop_connectivity(&inter)) {
            (Some(cur), Some(actual)) => self.worst[t - 1] = Some(cur.max(actual as u32)),
            (Some(_), None) => self.worst[t - 1] = None,
            (None, _) => {}
        }
    }

    /// Evaluate the trailing partial windows of every still-alive `t` that
    /// does not divide the final length.
    fn finish_spectrum(&mut self, len: usize) {
        if let Some(h) = self.prev.clone() {
            for t in 1..=len {
                if len % t == 0 {
                    continue; // All windows of t were full, already scored.
                }
                if self.change_gcd != 0 && self.change_gcd % t as u64 != 0 {
                    continue;
                }
                let s = len - len % t;
                debug_assert!(
                    self.last_change <= s,
                    "change inside a gcd-surviving window"
                );
                self.eval_spectrum_window(t, s, &h);
            }
        }
        if self.worst.len() < len {
            self.worst.resize(len, Some(0));
        }
    }

    /// Deterministic estimate of currently retained state.
    fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        fn hierarchy_bytes(h: &Hierarchy) -> usize {
            h.n() * 9 + h.heads().len() * size_of::<NodeId>()
        }
        let mut b = size_of::<Self>();
        if let Some(w) = &self.win {
            b += w.inter.n() * size_of::<usize>() + 2 * w.inter.m() * size_of::<NodeId>();
            b += hierarchy_bytes(&w.first);
        }
        if let Some(h) = &self.prev {
            b += hierarchy_bytes(h);
        }
        if let Some(hs) = &self.first_heads {
            b += hs.len() * size_of::<NodeId>();
        }
        b += self.present_since.len() * (size_of::<(u32, u32)>() + size_of::<u32>());
        b += self.worst.len() * size_of::<Option<u32>>();
        b
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// All divisors of `x ≥ 1`, unordered beyond small-then-complement.
fn divisors(x: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut i = 1;
    while i * i <= x {
        if x % i == 0 {
            small.push(i);
            if i != x / i {
                large.push(x / i);
            }
        }
        i += 1;
    }
    small.extend(large.into_iter().rev());
    small
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctvg::CtvgTrace;
    use crate::hierarchy::{single_cluster, ClusterId, Role};
    use crate::stability::{
        cluster_stable_in_window, head_connectivity_in_window, head_set_stable_in_window,
        hierarchy_stable_in_window, l_hop_in_window, max_hierarchy_stability_sliding, max_hinet_t,
        min_hinet_l, trace_stability_windows,
    };
    use hinet_graph::trace::TvgTrace;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn fixture_hierarchy() -> Hierarchy {
        let roles = vec![
            Role::Head,
            Role::Member,
            Role::Gateway,
            Role::Head,
            Role::Member,
            Role::Member,
        ];
        let c0 = Some(ClusterId(nid(0)));
        let c3 = Some(ClusterId(nid(3)));
        Hierarchy::new(roles, vec![c0, c0, c0, c3, c3, c3])
    }

    fn fixture_graph() -> Graph {
        Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (3, 5)])
    }

    fn constant_trace(len: usize) -> CtvgTrace {
        let g = Arc::new(fixture_graph());
        let h = Arc::new(fixture_hierarchy());
        let t = TvgTrace::new((0..len).map(|_| Arc::clone(&g)).collect());
        CtvgTrace::new(t, (0..len).map(|_| Arc::clone(&h)).collect())
    }

    fn churny_trace() -> CtvgTrace {
        let h = Arc::new(fixture_hierarchy());
        let g0 = Graph::from_edges(6, [(0, 1), (0, 2), (2, 3), (3, 4), (3, 5)]);
        let g1 = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5)]);
        let t = TvgTrace::new(vec![Arc::new(g0), Arc::new(g1)]);
        CtvgTrace::new(t, vec![Arc::clone(&h), h])
    }

    fn stream_verdicts(
        trace: &CtvgTrace,
        t: usize,
        l: usize,
    ) -> (Vec<WindowVerdict>, StreamReport) {
        let mut s = StabilityStream::new(t, l).with_spectrum();
        let mut v = s.push_chunk(trace.iter());
        let (last, report) = s.finish();
        v.extend(last);
        (v, report)
    }

    /// Streaming verdicts equal the batch per-window answers — every
    /// definition, every window, including the trailing partial one.
    fn assert_matches_batch(trace: &CtvgTrace, t: usize, l: usize) {
        let (verdicts, report) = stream_verdicts(trace, t, l);
        let mut expected_windows = 0;
        for (i, v) in verdicts.iter().enumerate() {
            let (s, len) = (i * t, t.min(trace.len() - i * t));
            assert_eq!((v.start, v.len), (s, len));
            assert_eq!(
                v.def2,
                head_set_stable_in_window(trace, s, len),
                "def2 @{s}"
            );
            let def3 =
                (0..trace.n()).all(|k| cluster_stable_in_window(trace, ClusterId(nid(k)), s, len));
            assert_eq!(v.def3, def3, "def3 @{s}");
            assert_eq!(
                v.def4,
                hierarchy_stable_in_window(trace, s, len),
                "def4 @{s}"
            );
            assert_eq!(
                v.def5,
                head_connectivity_in_window(trace, s, len),
                "def5 @{s}"
            );
            assert_eq!(v.def6, l_hop_in_window(trace, s, len, l), "def6 @{s}");
            assert_eq!(v.def7, v.def5 && v.def6);
            assert_eq!(v.def8, v.def4 && v.def7);
            expected_windows += 1;
        }
        assert_eq!(verdicts.len(), trace.len().div_ceil(t));
        assert_eq!(report.windows, expected_windows);
        assert_eq!(report.min_hinet_l, min_hinet_l(trace, t), "min_hinet_l");
        assert_eq!(
            report.max_sliding_hierarchy_t,
            max_hierarchy_stability_sliding(trace)
        );
        for probe_l in 0..4 {
            assert_eq!(
                report.max_hinet_t(probe_l),
                max_hinet_t(trace, probe_l),
                "max_hinet_t @ l={probe_l}"
            );
        }
    }

    #[test]
    fn constant_trace_matches_batch_for_all_t() {
        let trace = constant_trace(6);
        for t in 1..=7 {
            assert_matches_batch(&trace, t, 2);
        }
    }

    #[test]
    fn partial_window_matches_batch() {
        // Length 5, t = 2: windows [0,2) [2,4) [4,5) — the trailing
        // partial window is verified, not dropped (regression for the
        // windowing contract).
        let trace = constant_trace(5);
        assert_matches_batch(&trace, 2, 2);
        let (verdicts, report) = stream_verdicts(&trace, 2, 2);
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[2].len, 1);
        assert_eq!(report.hinet_windows, 3);
    }

    #[test]
    fn churny_backbone_matches_batch_and_reports_violation() {
        let trace = churny_trace();
        assert_matches_batch(&trace, 2, 3);
        let (verdicts, report) = stream_verdicts(&trace, 2, 3);
        assert!(verdicts[0].def2 && verdicts[0].def4);
        assert!(!verdicts[0].def5 && !verdicts[0].def7 && !verdicts[0].def8);
        // Without the certificate the violation is pinned to the close.
        assert_eq!(
            report.violation,
            Some(Violation {
                def: 5,
                window_start: 0,
                round: 1
            })
        );
    }

    #[test]
    fn certificate_pins_connectivity_breaks_to_the_exact_round() {
        // Three-round window: the backbone edge disappears at round 1, the
        // window closes at round 2. The certificate reports round 1.
        let h = Arc::new(fixture_hierarchy());
        let g0 = Arc::new(fixture_graph());
        let g1 = Arc::new(Graph::from_edges(
            6,
            [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5)],
        ));
        let mut s = StabilityStream::new(3, 3).with_certificate();
        s.push(&g0, &h);
        s.push(&g1, &h);
        assert_eq!(
            s.violation(),
            Some(Violation {
                def: 5,
                window_start: 0,
                round: 1
            })
        );
        s.push(&g1, &h);
        let (_, report) = s.finish();
        assert_eq!(report.violation.unwrap().round, 1);
    }

    #[test]
    fn head_change_detected_at_exact_round() {
        let g = Arc::new(Graph::complete(4));
        let h1 = Arc::new(single_cluster(4, nid(0)));
        let h2 = Arc::new(single_cluster(4, nid(1)));
        let mut s = StabilityStream::new(4, 1);
        s.push(&g, &h1);
        s.push(&g, &h1);
        assert_eq!(s.violation(), None);
        s.push(&g, &h2);
        assert_eq!(
            s.violation(),
            Some(Violation {
                def: 2,
                window_start: 0,
                round: 2
            })
        );
        let v = s.push(&g, &h2).expect("4th round closes the t=4 window");
        assert!(!v.def2 && !v.def4 && !v.def8);
        let (last, report) = s.finish();
        assert!(last.is_none());
        assert!(!report.heads_forever_stable);
    }

    #[test]
    fn membership_change_is_def4_not_def2() {
        let g = Arc::new(Graph::complete(6));
        let h1 = Arc::new(fixture_hierarchy());
        let roles = vec![
            Role::Head,
            Role::Member,
            Role::Gateway,
            Role::Head,
            Role::Member,
            Role::Member,
        ];
        let c0 = Some(ClusterId(nid(0)));
        let c3 = Some(ClusterId(nid(3)));
        let h2 = Arc::new(Hierarchy::new(roles, vec![c0, c3, c0, c3, c3, c3]));
        let mut s = StabilityStream::new(2, 2);
        s.push(&g, &h1);
        let v = s.push(&g, &h2).unwrap();
        assert!(v.def2 && !v.def3 && !v.def4);
        let (_, report) = s.finish();
        assert_eq!(
            report.violation,
            Some(Violation {
                def: 4,
                window_start: 0,
                round: 1
            })
        );
    }

    #[test]
    fn spectrum_matches_batch_on_hierarchy_churn() {
        // Hierarchy changes at round 2 of 4: only t ∈ {1, 2} can be
        // Def-4 stable (gcd = 2), and connectivity decides among them.
        let g = Arc::new(Graph::complete(4));
        let h1 = Arc::new(single_cluster(4, nid(0)));
        let h2 = Arc::new(single_cluster(4, nid(1)));
        let t = TvgTrace::new((0..4).map(|_| Arc::clone(&g)).collect());
        let trace = CtvgTrace::new(t, vec![Arc::clone(&h1), h1, Arc::clone(&h2), h2]);
        for t in 1..=4 {
            assert_matches_batch(&trace, t, 1);
        }
    }

    #[test]
    fn empty_stream_summarises_like_batch() {
        let s = StabilityStream::new(3, 1).with_spectrum();
        let (last, report) = s.finish();
        assert!(last.is_none());
        assert_eq!(report.windows, 0);
        assert_eq!(report.min_hinet_l, Some(0));
        assert_eq!(report.max_hinet_t(1), None);
        assert_eq!(report.max_sliding_hierarchy_t, 0);
        assert_eq!(report.violation, None);
    }

    #[test]
    fn chunked_and_per_round_feeds_agree() {
        let trace = constant_trace(7);
        let mut a = StabilityStream::new(3, 2).with_spectrum();
        let mut b = StabilityStream::new(3, 2).with_spectrum();
        let mut va = Vec::new();
        for (g, h) in trace.iter() {
            va.extend(a.push(g, h));
        }
        let mut vb = b.push_chunk(trace.iter());
        let (la, ra) = a.finish();
        let (lb, rb) = b.finish();
        va.extend(la);
        vb.extend(lb);
        assert_eq!(va, vb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn emitted_events_match_batch_tracer() {
        use hinet_rt::obs::{ObsConfig, Tracer};
        let trace = churny_trace();
        let mut batch = Tracer::new(ObsConfig::full());
        let held = trace_stability_windows(&trace, 2, 3, &mut batch);
        let mut streamed = Tracer::new(ObsConfig::full());
        let (verdicts, report) = stream_verdicts(&trace, 2, 3);
        for v in &verdicts {
            v.emit_into(&mut streamed);
        }
        assert_eq!(report.hinet_windows, held);
        let a: Vec<String> = batch.events().map(|e| format!("{e:?}")).collect();
        let b: Vec<String> = streamed.events().map(|e| format!("{e:?}")).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn peak_state_is_tracked() {
        let trace = constant_trace(4);
        let mut s = StabilityStream::new(2, 2);
        s.push_chunk(trace.iter());
        assert!(s.peak_state_bytes() > 0);
        let peak = s.peak_state_bytes();
        let (_, report) = s.finish();
        assert_eq!(report.peak_state_bytes, peak);
    }

    #[test]
    fn divisors_and_gcd_helpers() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(7), vec![1, 7]);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, 18), 6);
    }
}
