//! Manhattan-grid mobility generator.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::{stream_rng, Rng, Xoshiro256StarStar};
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// Configuration of the Manhattan mobility model.
#[derive(Clone, Copy, Debug)]
pub struct ManhattanConfig {
    /// Streets per direction (the city is a `streets × streets` grid over
    /// the unit square). Must be ≥ 2.
    pub streets: usize,
    /// Communication radius in unit-square units.
    pub radius: f64,
    /// Distance travelled per round, as a fraction of one block length.
    pub speed_blocks: f64,
    /// Patch each snapshot to stay connected (representative-chain
    /// completion, as in the other mobility generators).
    pub ensure_connected: bool,
}

impl Default for ManhattanConfig {
    fn default() -> Self {
        ManhattanConfig {
            streets: 5,
            radius: 0.3,
            speed_blocks: 0.2,
            ensure_connected: true,
        }
    }
}

/// A vehicle travelling between two adjacent intersections.
#[derive(Clone, Copy, Debug)]
struct Vehicle {
    /// Intersection being left, as `(col, row)`.
    from: (usize, usize),
    /// Intersection being approached.
    to: (usize, usize),
    /// Progress along the block in `[0, 1)`.
    progress: f64,
}

/// Manhattan mobility (the model behind the paper's citation \[25\],
/// "Flooding over Manhattan"): nodes are vehicles constrained to a street
/// grid; at each intersection they pick a random outgoing street (never
/// an immediate U-turn unless at a dead end), and two vehicles are linked
/// while within `radius` (radio range crossing city blocks).
///
/// Compared to random-waypoint, Manhattan mobility produces *correlated*
/// motion along shared streets — long-lived platoon links and abrupt
/// breaks at turns — which stresses hierarchy maintenance differently.
/// State evolves forward from round 0; snapshots are cached for exact
/// revisits.
#[derive(Clone, Debug)]
pub struct ManhattanGen {
    n: usize,
    cfg: ManhattanConfig,
    seed: u64,
    vehicles: Vec<Vehicle>,
    cache: Vec<Arc<Graph>>,
}

impl ManhattanGen {
    /// New generator for `n ≥ 1` vehicles.
    ///
    /// # Panics
    /// Panics on `n == 0`, fewer than 2 streets, non-positive radius or
    /// speed outside `(0, 1]`.
    pub fn new(n: usize, cfg: ManhattanConfig, seed: u64) -> Self {
        assert!(n > 0, "need at least one vehicle");
        assert!(
            cfg.streets >= 2,
            "grid needs at least 2 streets per direction"
        );
        assert!(cfg.radius > 0.0, "radius must be positive");
        assert!(
            cfg.speed_blocks > 0.0 && cfg.speed_blocks <= 1.0,
            "speed must be in (0, 1] blocks/round, got {}",
            cfg.speed_blocks
        );
        ManhattanGen {
            n,
            cfg,
            seed,
            vehicles: Vec::new(),
            cache: Vec::new(),
        }
    }

    fn grid_neighbors(&self, at: (usize, usize)) -> Vec<(usize, usize)> {
        let s = self.cfg.streets;
        let mut out = Vec::with_capacity(4);
        let (c, r) = at;
        if c > 0 {
            out.push((c - 1, r));
        }
        if c + 1 < s {
            out.push((c + 1, r));
        }
        if r > 0 {
            out.push((c, r - 1));
        }
        if r + 1 < s {
            out.push((c, r + 1));
        }
        out
    }

    fn position(&self, v: &Vehicle) -> (f64, f64) {
        let scale = 1.0 / (self.cfg.streets - 1) as f64;
        let fx = v.from.0 as f64 * scale;
        let fy = v.from.1 as f64 * scale;
        let tx = v.to.0 as f64 * scale;
        let ty = v.to.1 as f64 * scale;
        (fx + (tx - fx) * v.progress, fy + (ty - fy) * v.progress)
    }

    fn init_vehicles(&mut self, rng: &mut Xoshiro256StarStar) {
        let s = self.cfg.streets;
        self.vehicles = (0..self.n)
            .map(|_| {
                let from = (rng.random_range(0..s), rng.random_range(0..s));
                let nbrs = self.grid_neighbors(from);
                let to = nbrs[rng.random_range(0..nbrs.len())];
                Vehicle {
                    from,
                    to,
                    progress: rng.random::<f64>(),
                }
            })
            .collect();
    }

    fn step_vehicles(&mut self, rng: &mut Xoshiro256StarStar) {
        let speed = self.cfg.speed_blocks;
        for i in 0..self.vehicles.len() {
            let mut v = self.vehicles[i];
            v.progress += speed;
            while v.progress >= 1.0 {
                v.progress -= 1.0;
                let arrived = v.to;
                let back = v.from;
                let nbrs = self.grid_neighbors(arrived);
                // No immediate U-turn unless the intersection is a dead end.
                let forward: Vec<_> = nbrs.iter().copied().filter(|&x| x != back).collect();
                let choices = if forward.is_empty() { &nbrs } else { &forward };
                v.from = arrived;
                v.to = choices[rng.random_range(0..choices.len())];
            }
            self.vehicles[i] = v;
        }
    }

    fn snapshot(&self) -> Graph {
        let n = self.n;
        let r2 = self.cfg.radius * self.cfg.radius;
        let positions: Vec<(f64, f64)> = self.vehicles.iter().map(|v| self.position(v)).collect();
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let (dx, dy) = (
                    positions[u].0 - positions[v].0,
                    positions[u].1 - positions[v].1,
                );
                if dx * dx + dy * dy <= r2 {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
                }
            }
        }
        let g = b.build();
        if !self.cfg.ensure_connected {
            return g;
        }
        let labels = crate::traversal::components(&g);
        let mut reps = labels.clone();
        reps.sort_unstable();
        reps.dedup();
        if reps.len() <= 1 {
            return g;
        }
        let mut b = GraphBuilder::new(n);
        b.add_graph(&g);
        for w in reps.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    /// Current vehicle positions (after the last computed round).
    pub fn positions(&self) -> Vec<(f64, f64)> {
        self.vehicles.iter().map(|v| self.position(v)).collect()
    }
}

impl TopologyProvider for ManhattanGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        while self.cache.len() <= round {
            let next = self.cache.len();
            let mut rng = stream_rng(self.seed, 0xc17 ^ ((next as u64).wrapping_mul(2) + 1));
            if next == 0 {
                self.init_vehicles(&mut rng);
            } else {
                self.step_vehicles(&mut rng);
            }
            self.cache.push(Arc::new(self.snapshot()));
        }
        Arc::clone(&self.cache[round])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::is_always_connected;

    fn cfg(ensure: bool) -> ManhattanConfig {
        ManhattanConfig {
            streets: 4,
            radius: 0.35,
            speed_blocks: 0.3,
            ensure_connected: ensure,
        }
    }

    #[test]
    fn patched_city_always_connected() {
        let mut g = ManhattanGen::new(25, cfg(true), 3);
        let trace = TvgTrace::capture(&mut g, 30);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn vehicles_stay_on_streets() {
        let mut g = ManhattanGen::new(15, cfg(false), 4);
        let scale = 1.0 / 3.0;
        for r in 0..40 {
            let _ = g.graph_at(r);
            for (x, y) in g.positions() {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
                // On a street: at least one coordinate is on a grid line.
                let on_line = |c: f64| {
                    let q = c / scale;
                    (q - q.round()).abs() < 1e-9
                };
                assert!(
                    on_line(x) || on_line(y),
                    "vehicle off-street at ({x}, {y}) in round {r}"
                );
            }
        }
    }

    #[test]
    fn motion_changes_topology() {
        let mut g = ManhattanGen::new(30, cfg(false), 5);
        assert_ne!(*g.graph_at(0), *g.graph_at(25));
    }

    #[test]
    fn deterministic_replay() {
        let mut a = ManhattanGen::new(12, cfg(true), 9);
        let mut b = ManhattanGen::new(12, cfg(true), 9);
        for r in 0..15 {
            assert_eq!(*a.graph_at(r), *b.graph_at(r));
        }
    }

    #[test]
    #[should_panic(expected = "speed must be in")]
    fn rejects_excess_speed() {
        let bad = ManhattanConfig {
            speed_blocks: 1.5,
            ..ManhattanConfig::default()
        };
        let _ = ManhattanGen::new(5, bad, 0);
    }
}
