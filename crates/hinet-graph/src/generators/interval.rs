//! Flat T-interval-connected topology generator (Kuhn–Lynch–Oshman model).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::{mix, stream_rng, Rng};
use crate::spanning::{random_attachment_tree, random_path_backbone};
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// Shape of the stable per-window backbone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackboneKind {
    /// Random Hamiltonian path — diameter `n−1`, the adversarial worst case
    /// for flooding-style algorithms.
    Path,
    /// Random attachment tree — typically `O(log n)`-ish diameter, a milder
    /// adversary.
    Tree,
}

/// Generator for T-interval-connected dynamic graphs.
///
/// Round `r` belongs to window `w = r / T`. Within a window the backbone
/// (a spanning path or tree drawn from `(seed, w)`) is present in every
/// round, guaranteeing the window's intersection is connected; additional
/// `noise_edges` random edges are redrawn independently every round from
/// `(seed, r)`, modelling arbitrary churn on top of the guarantee.
///
/// Because windows are aligned, any *sliding* window of length `T` overlaps
/// at most two aligned windows — so strictly this construction guarantees
/// aligned-window T-interval connectivity and sliding-window
/// ⌈T/2⌉-interval connectivity. Phase-based algorithms (both the paper's
/// Algorithm 1 and the KLO baseline) align their phases to these windows,
/// which is exactly the guarantee they need.
#[derive(Clone, Debug)]
pub struct TIntervalGen {
    n: usize,
    t: usize,
    seed: u64,
    backbone: BackboneKind,
    noise_edges: usize,
    cached_window: Option<(usize, Graph)>,
}

impl TIntervalGen {
    /// New generator over `n` nodes with window length `t ≥ 1`.
    ///
    /// `noise_edges` extra random edges are added each round.
    ///
    /// # Panics
    /// Panics if `n == 0` or `t == 0`.
    pub fn new(n: usize, t: usize, backbone: BackboneKind, noise_edges: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(t > 0, "window length must be positive");
        TIntervalGen {
            n,
            t,
            seed,
            backbone,
            noise_edges,
            cached_window: None,
        }
    }

    /// The window length `T`.
    pub fn t(&self) -> usize {
        self.t
    }

    fn backbone_for_window(&mut self, w: usize) -> &Graph {
        let regen = match &self.cached_window {
            Some((cw, _)) => *cw != w,
            None => true,
        };
        if regen {
            let mut rng = stream_rng(self.seed, mix(0x77aa, w as u64));
            let g = match self.backbone {
                BackboneKind::Path => random_path_backbone(self.n, &mut rng),
                BackboneKind::Tree => random_attachment_tree(self.n, &mut rng),
            };
            self.cached_window = Some((w, g));
        }
        &self.cached_window.as_ref().unwrap().1
    }
}

impl TopologyProvider for TIntervalGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        let w = round / self.t;
        let n = self.n;
        let noise = self.noise_edges;
        let seed = self.seed;
        let mut b = GraphBuilder::new(n);
        b.add_graph(self.backbone_for_window(w));
        if n >= 2 {
            let mut rng = stream_rng(seed, mix(0x33cc, round as u64));
            for _ in 0..noise {
                let u = rng.random_range(0..n);
                let mut v = rng.random_range(0..n - 1);
                if v >= u {
                    v += 1;
                }
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
        Arc::new(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::{is_always_connected, is_t_interval_connected};

    #[test]
    fn every_round_connected() {
        let mut g = TIntervalGen::new(40, 5, BackboneKind::Path, 10, 7);
        let trace = TvgTrace::capture(&mut g, 30);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn aligned_windows_share_backbone() {
        let t = 4;
        let mut g = TIntervalGen::new(25, t, BackboneKind::Tree, 5, 11);
        let trace = TvgTrace::capture(&mut g, 4 * t);
        for w in 0..4 {
            let inter = trace.window_intersection(w * t, t);
            assert!(
                crate::traversal::is_connected(&inter),
                "aligned window {w} must keep a connected backbone"
            );
        }
    }

    #[test]
    fn sliding_half_window_connectivity() {
        let t = 6;
        let mut g = TIntervalGen::new(20, t, BackboneKind::Path, 0, 3);
        let trace = TvgTrace::capture(&mut g, 5 * t);
        // With zero noise edges the only edges are the per-window backbones,
        // and any sliding window of length 1 is connected.
        assert!(is_t_interval_connected(&trace, 1));
    }

    #[test]
    fn deterministic_per_seed_and_round() {
        let mut a = TIntervalGen::new(15, 3, BackboneKind::Path, 4, 99);
        let mut b = TIntervalGen::new(15, 3, BackboneKind::Path, 4, 99);
        for r in [0usize, 5, 2, 7, 2] {
            assert_eq!(*a.graph_at(r), *b.graph_at(r), "round {r}");
        }
        // Revisiting an earlier round after moving on must reproduce it.
        let g2 = a.graph_at(2);
        let _ = a.graph_at(11);
        assert_eq!(*a.graph_at(2), *g2);
    }

    #[test]
    fn different_windows_differ() {
        let mut g = TIntervalGen::new(30, 2, BackboneKind::Path, 0, 5);
        let w0 = g.graph_at(0);
        let w1 = g.graph_at(2);
        assert_ne!(*w0, *w1, "backbone should be re-randomised across windows");
        assert_eq!(*g.graph_at(0), *w0);
    }

    #[test]
    fn noise_increases_edge_count() {
        let mut lean = TIntervalGen::new(50, 4, BackboneKind::Tree, 0, 1);
        let mut rich = TIntervalGen::new(50, 4, BackboneKind::Tree, 40, 1);
        assert!(rich.graph_at(0).m() > lean.graph_at(0).m());
    }

    #[test]
    fn single_node_network() {
        let mut g = TIntervalGen::new(1, 3, BackboneKind::Path, 5, 0);
        assert_eq!(g.graph_at(0).n(), 1);
        assert_eq!(g.graph_at(0).m(), 0);
    }
}
