//! Random geometric graph under random-waypoint mobility.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::{stream_rng, Rng};
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// Configuration of the mobility model.
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Communication radius in the unit square.
    pub radius: f64,
    /// Minimum node speed per round (unit-square units).
    pub min_speed: f64,
    /// Maximum node speed per round.
    pub max_speed: f64,
    /// Patch each snapshot so it stays connected (adds the minimal
    /// representative-chain completion, as in the EMDG generator).
    pub ensure_connected: bool,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        WaypointConfig {
            radius: 0.25,
            min_speed: 0.01,
            max_speed: 0.05,
            ensure_connected: true,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct NodeMotion {
    x: f64,
    y: f64,
    wx: f64,
    wy: f64,
    speed: f64,
}

/// Random-waypoint mobility over the unit square: each node walks toward a
/// uniformly random waypoint at a per-leg random speed, picks a fresh
/// waypoint on arrival, and two nodes are linked while within `radius`.
///
/// This is the "node mobility" scenario that motivates the paper (wireless
/// ad hoc networks): topology change emerges from motion rather than from an
/// explicit adversary. State evolves forward from round 0 and snapshots are
/// cached for exact revisits.
#[derive(Clone, Debug)]
pub struct RandomWaypointGen {
    n: usize,
    cfg: WaypointConfig,
    seed: u64,
    motion: Vec<NodeMotion>,
    cache: Vec<Arc<Graph>>,
}

impl RandomWaypointGen {
    /// New mobility generator over `n ≥ 1` nodes.
    ///
    /// # Panics
    /// Panics on `n == 0`, non-positive radius, or an empty/invalid speed
    /// range.
    pub fn new(n: usize, cfg: WaypointConfig, seed: u64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(cfg.radius > 0.0, "radius must be positive");
        assert!(
            cfg.min_speed >= 0.0 && cfg.max_speed >= cfg.min_speed,
            "invalid speed range [{}, {}]",
            cfg.min_speed,
            cfg.max_speed
        );
        RandomWaypointGen {
            n,
            cfg,
            seed,
            motion: Vec::new(),
            cache: Vec::new(),
        }
    }

    /// Node positions of the most recently computed round (for examples that
    /// want to render the field). Empty before the first `graph_at` call.
    pub fn positions(&self) -> Vec<(f64, f64)> {
        self.motion.iter().map(|m| (m.x, m.y)).collect()
    }

    fn init_motion(&mut self) {
        let mut rng = stream_rng(self.seed, 0xa0);
        self.motion = (0..self.n)
            .map(|_| {
                let speed = if self.cfg.max_speed > self.cfg.min_speed {
                    rng.random_range(self.cfg.min_speed..self.cfg.max_speed)
                } else {
                    self.cfg.min_speed
                };
                NodeMotion {
                    x: rng.random::<f64>(),
                    y: rng.random::<f64>(),
                    wx: rng.random::<f64>(),
                    wy: rng.random::<f64>(),
                    speed,
                }
            })
            .collect();
    }

    fn step_motion(&mut self, round: usize) {
        let mut rng = stream_rng(self.seed, 0xb0 ^ ((round as u64).wrapping_mul(2) + 1));
        let cfg = self.cfg;
        for m in self.motion.iter_mut() {
            let (dx, dy) = (m.wx - m.x, m.wy - m.y);
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= m.speed {
                // Arrived: jump to waypoint, draw the next leg.
                m.x = m.wx;
                m.y = m.wy;
                m.wx = rng.random::<f64>();
                m.wy = rng.random::<f64>();
                m.speed = if cfg.max_speed > cfg.min_speed {
                    rng.random_range(cfg.min_speed..cfg.max_speed)
                } else {
                    cfg.min_speed
                };
            } else {
                m.x += dx / dist * m.speed;
                m.y += dy / dist * m.speed;
            }
        }
    }

    fn snapshot(&self) -> Graph {
        let n = self.n;
        let r2 = self.cfg.radius * self.cfg.radius;
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let (a, c) = (&self.motion[u], &self.motion[v]);
                let (dx, dy) = (a.x - c.x, a.y - c.y);
                if dx * dx + dy * dy <= r2 {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
                }
            }
        }
        let g = b.build();
        if !self.cfg.ensure_connected {
            return g;
        }
        let labels = crate::traversal::components(&g);
        let mut reps = labels.clone();
        reps.sort_unstable();
        reps.dedup();
        if reps.len() <= 1 {
            return g;
        }
        let mut b = GraphBuilder::new(n);
        b.add_graph(&g);
        for w in reps.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }
}

impl TopologyProvider for RandomWaypointGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        while self.cache.len() <= round {
            let next = self.cache.len();
            if next == 0 {
                self.init_motion();
            } else {
                self.step_motion(next);
            }
            self.cache.push(Arc::new(self.snapshot()));
        }
        Arc::clone(&self.cache[round])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::is_always_connected;

    fn cfg(ensure: bool) -> WaypointConfig {
        WaypointConfig {
            radius: 0.3,
            min_speed: 0.02,
            max_speed: 0.08,
            ensure_connected: ensure,
        }
    }

    #[test]
    fn patched_field_always_connected() {
        let mut g = RandomWaypointGen::new(30, cfg(true), 5);
        let trace = TvgTrace::capture(&mut g, 25);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let mut g = RandomWaypointGen::new(20, cfg(false), 6);
        for r in 0..30 {
            let _ = g.graph_at(r);
            for (x, y) in g.positions() {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            }
        }
    }

    #[test]
    fn motion_changes_topology_over_time() {
        let mut g = RandomWaypointGen::new(40, cfg(false), 7);
        let early = g.graph_at(0);
        let late = g.graph_at(40);
        assert_ne!(*early, *late, "mobility should change links");
    }

    #[test]
    fn deterministic_replay() {
        let mut a = RandomWaypointGen::new(15, cfg(true), 9);
        let mut b = RandomWaypointGen::new(15, cfg(true), 9);
        for r in 0..12 {
            assert_eq!(*a.graph_at(r), *b.graph_at(r));
        }
        let g4 = a.graph_at(4);
        assert!(Arc::ptr_eq(&a.graph_at(4), &g4));
    }

    #[test]
    fn large_radius_gives_dense_graph() {
        let big = WaypointConfig {
            radius: 2.0,
            ..cfg(false)
        };
        let mut g = RandomWaypointGen::new(10, big, 3);
        assert_eq!(g.graph_at(0).m(), 45, "radius √2 covers the square");
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_zero_radius() {
        let bad = WaypointConfig {
            radius: 0.0,
            ..WaypointConfig::default()
        };
        let _ = RandomWaypointGen::new(5, bad, 0);
    }
}
