//! Adaptive-style adversarial schedules.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// The quiescence trap: a deterministic 1-interval-connected schedule that
/// starves the victim node `n−1` against any *delta-triggered* protocol
/// (one that only transmits in rounds following knowledge growth), for a
/// token originating at node 0.
///
/// Schedule (always connected):
///
/// * **round 0** — clique over `{0, …, n−2}`, victim attached to node 1.
///   Node 1 knows nothing yet, so the victim hears nothing; meanwhile the
///   clique spreads node 0's token to everyone else.
/// * **rounds ≥ 1** — clique over `{0, …, n−2}`, victim attached to node 0.
///   Node 0's knowledge never grows again (it started with the token and
///   the clique can teach it nothing new), so under a delta-triggered
///   protocol node 0 is permanently silent — and it is the victim's only
///   neighbor, forever.
///
/// Guaranteed algorithms (KLO full flooding, the paper's Algorithm 2) walk
/// straight through this trap; quiescent "optimisations" never terminate.
/// This is the executable form of why 1-interval connectivity only helps
/// if *currently-informed boundary* nodes keep transmitting — experiment
/// E13.
#[derive(Clone, Debug)]
pub struct QuiescenceTrapGen {
    n: usize,
    round0: Arc<Graph>,
    later: Arc<Graph>,
}

impl QuiescenceTrapGen {
    /// Build the trap over `n ≥ 4` nodes (victim = `n−1`, source = 0).
    ///
    /// # Panics
    /// Panics if `n < 4` (the construction needs a non-trivial clique plus
    /// distinct attachment points).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "quiescence trap needs at least 4 nodes, got {n}");
        let core = n - 1;
        let victim = NodeId::from_index(core);
        let clique = |extra: (NodeId, NodeId)| -> Arc<Graph> {
            let mut b = GraphBuilder::new(n);
            for u in 0..core {
                for v in (u + 1)..core {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
                }
            }
            b.add_edge(extra.0, extra.1);
            Arc::new(b.build())
        };
        QuiescenceTrapGen {
            n,
            round0: clique((NodeId(1), victim)),
            later: clique((NodeId(0), victim)),
        }
    }

    /// The starved node.
    pub fn victim(&self) -> NodeId {
        NodeId::from_index(self.n - 1)
    }
}

impl TopologyProvider for QuiescenceTrapGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        if round == 0 {
            Arc::clone(&self.round0)
        } else {
            Arc::clone(&self.later)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::is_always_connected;

    #[test]
    fn trap_is_always_connected() {
        let mut g = QuiescenceTrapGen::new(8);
        let trace = TvgTrace::capture(&mut g, 20);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn victim_attachment_switches_after_round_0() {
        let mut g = QuiescenceTrapGen::new(6);
        let victim = g.victim();
        let g0 = g.graph_at(0);
        let g1 = g.graph_at(1);
        assert!(g0.has_edge(NodeId(1), victim));
        assert!(!g0.has_edge(NodeId(0), victim));
        assert!(g1.has_edge(NodeId(0), victim));
        assert!(!g1.has_edge(NodeId(1), victim));
        assert_eq!(g0.degree(victim), 1);
        assert_eq!(g1.degree(victim), 1);
        // Rounds ≥ 1 all share one snapshot.
        assert!(Arc::ptr_eq(&g.graph_at(1), &g.graph_at(50)));
    }

    #[test]
    fn core_is_a_clique() {
        let mut g = QuiescenceTrapGen::new(7);
        let g0 = g.graph_at(0);
        for u in 0..6 {
            for v in (u + 1)..6 {
                assert!(g0.has_edge(NodeId::from_index(u), NodeId::from_index(v)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn too_small_rejected() {
        let _ = QuiescenceTrapGen::new(3);
    }
}
