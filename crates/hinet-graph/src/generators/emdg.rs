//! Edge-Markovian dynamic graph generator (Clementi et al.).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::{stream_rng, Rng};
use crate::spanning::bfs_spanning_edges;
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// Edge-Markovian dynamic graph (EMDG): every potential edge evolves as an
/// independent two-state Markov chain — an absent edge appears with *birth
/// rate* `p` and a present edge disappears with *death rate* `q`, per round.
///
/// This is the model from Clementi et al. (PODC 2008) that the paper's
/// related-work section cites, and the substrate for experiment E12
/// (the paper's future-work direction: clusters on other flat models).
///
/// With `ensure_connected = true`, each round is patched with a BFS spanning
/// forest-completion: a minimal set of extra edges connecting the components
/// (drawn deterministically), so dissemination remains solvable while the
/// Markovian churn statistics are preserved on the original edge set.
///
/// State evolves forward from round 0; snapshots are cached, so revisiting
/// any round is exact and O(1).
#[derive(Clone, Debug)]
pub struct EdgeMarkovianGen {
    n: usize,
    p: f64,
    q: f64,
    initial_density: f64,
    seed: u64,
    ensure_connected: bool,
    /// Dense upper-triangular edge-presence state for the last computed round.
    state: Vec<bool>,
    computed_through: Option<usize>,
    cache: Vec<Arc<Graph>>,
}

impl EdgeMarkovianGen {
    /// New EMDG over `n` nodes.
    ///
    /// * `p` — birth rate (absent → present per round), in `[0, 1]`.
    /// * `q` — death rate (present → absent per round), in `[0, 1]`.
    /// * `initial_density` — i.i.d. presence probability at round 0.
    ///
    /// # Panics
    /// Panics if `n == 0` or any rate is outside `[0, 1]`.
    pub fn new(
        n: usize,
        p: f64,
        q: f64,
        initial_density: f64,
        ensure_connected: bool,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        for (name, v) in [("p", p), ("q", q), ("initial_density", initial_density)] {
            assert!((0.0..=1.0).contains(&v), "{name}={v} outside [0,1]");
        }
        EdgeMarkovianGen {
            n,
            p,
            q,
            initial_density,
            seed,
            ensure_connected,
            state: vec![false; n * (n - 1) / 2],
            computed_through: None,
            cache: Vec::new(),
        }
    }

    /// Stationary edge density `p / (p + q)` of the per-edge chain (`None`
    /// when `p + q = 0`, i.e. the frozen chain).
    pub fn stationary_density(&self) -> Option<f64> {
        if self.p + self.q == 0.0 {
            None
        } else {
            Some(self.p / (self.p + self.q))
        }
    }

    #[inline]
    fn pair_index(n: usize, u: usize, v: usize) -> usize {
        debug_assert!(u < v && v < n);
        // Row-major upper triangle.
        u * n - u * (u + 1) / 2 + (v - u - 1)
    }

    fn snapshot_from_state(&self) -> Graph {
        let n = self.n;
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if self.state[Self::pair_index(n, u, v)] {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
                }
            }
        }
        let g = b.build();
        if !self.ensure_connected {
            return g;
        }
        // Patch: overlay a deterministic connectivity completion — connect
        // component representatives in id order.
        let labels = crate::traversal::components(&g);
        let mut reps: Vec<NodeId> = labels.clone();
        reps.sort_unstable();
        reps.dedup();
        if reps.len() <= 1 {
            return g;
        }
        let mut b = GraphBuilder::new(n);
        b.add_graph(&g);
        for w in reps.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        b.build()
    }

    fn advance_to(&mut self, round: usize) {
        // Compute rounds sequentially up to `round`, caching snapshots.
        while self.cache.len() <= round {
            let next_round = self.cache.len();
            let mut rng = stream_rng(self.seed, next_round as u64);
            if next_round == 0 {
                for s in self.state.iter_mut() {
                    *s = rng.random_bool(self.initial_density);
                }
            } else {
                for s in self.state.iter_mut() {
                    if *s {
                        if self.q > 0.0 && rng.random_bool(self.q) {
                            *s = false;
                        }
                    } else if self.p > 0.0 && rng.random_bool(self.p) {
                        *s = true;
                    }
                }
            }
            self.computed_through = Some(next_round);
            let g = self.snapshot_from_state();
            self.cache.push(Arc::new(g));
        }
    }

    /// The spanning-forest completion edges that would connect `g`'s
    /// components; exposed for tests.
    pub fn completion_edges(g: &Graph) -> usize {
        bfs_spanning_edges(g).map_or_else(
            || {
                let labels = crate::traversal::components(g);
                let mut reps = labels.clone();
                reps.sort_unstable();
                reps.dedup();
                reps.len() - 1
            },
            |_| 0,
        )
    }
}

impl TopologyProvider for EdgeMarkovianGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        self.advance_to(round);
        Arc::clone(&self.cache[round])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::is_always_connected;

    #[test]
    fn pair_index_bijective() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for u in 0..n {
            for v in (u + 1)..n {
                let i = EdgeMarkovianGen::pair_index(n, u, v);
                assert!(!seen[i], "collision at ({u},{v})");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn frozen_chain_is_static() {
        let mut g = EdgeMarkovianGen::new(12, 0.0, 0.0, 0.4, false, 3);
        let g0 = g.graph_at(0);
        let g5 = g.graph_at(5);
        assert_eq!(*g0, *g5);
        assert!(g.stationary_density().is_none());
    }

    #[test]
    fn death_rate_one_empties_graph() {
        let mut g = EdgeMarkovianGen::new(10, 0.0, 1.0, 1.0, false, 4);
        assert_eq!(g.graph_at(0).m(), 45, "starts complete");
        assert_eq!(g.graph_at(1).m(), 0, "all edges die");
    }

    #[test]
    fn birth_rate_one_completes_graph() {
        let mut g = EdgeMarkovianGen::new(10, 1.0, 0.0, 0.0, false, 4);
        assert_eq!(g.graph_at(0).m(), 0);
        assert_eq!(g.graph_at(1).m(), 45);
    }

    #[test]
    fn density_approaches_stationary() {
        let mut g = EdgeMarkovianGen::new(40, 0.2, 0.2, 0.0, false, 9);
        let target = g.stationary_density().unwrap();
        let max_m = (40 * 39 / 2) as f64;
        // After enough rounds the density should hover near p/(p+q) = 0.5.
        let late = g.graph_at(60);
        let density = late.m() as f64 / max_m;
        assert!(
            (density - target).abs() < 0.1,
            "density {density} far from stationary {target}"
        );
    }

    #[test]
    fn patched_variant_always_connected() {
        let mut g = EdgeMarkovianGen::new(25, 0.01, 0.5, 0.02, true, 17);
        let trace = TvgTrace::capture(&mut g, 30);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn unpatched_sparse_variant_disconnects() {
        let mut g = EdgeMarkovianGen::new(25, 0.001, 0.9, 0.0, false, 17);
        let trace = TvgTrace::capture(&mut g, 10);
        assert!(!is_always_connected(&trace));
    }

    #[test]
    fn revisiting_rounds_is_exact() {
        let mut g = EdgeMarkovianGen::new(15, 0.3, 0.3, 0.5, false, 8);
        let g3 = g.graph_at(3);
        let _ = g.graph_at(20);
        assert!(Arc::ptr_eq(&g.graph_at(3), &g3));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_rates() {
        let _ = EdgeMarkovianGen::new(5, 1.5, 0.1, 0.1, false, 0);
    }
}
