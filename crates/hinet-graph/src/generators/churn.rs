//! 1-interval-connected maximal-churn generator.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::rng::{mix, stream_rng, Rng};
use crate::spanning::{random_attachment_tree, random_path_backbone};
use crate::trace::TopologyProvider;
use std::sync::Arc;

/// Generator for the weakest solvable dynamics: each round's snapshot is
/// connected, but the connecting subgraph is re-randomised *every round*,
/// so no edge is guaranteed to survive even one round boundary.
///
/// This is the adversary the 1-interval-connected baselines (and the paper's
/// Algorithm 2) are measured against. With `worst_case = true` the per-round
/// skeleton is a Hamiltonian path (diameter `n−1`), which maximises the
/// number of rounds flooding needs; otherwise a random attachment tree.
#[derive(Clone, Debug)]
pub struct OneIntervalGen {
    n: usize,
    seed: u64,
    worst_case: bool,
    noise_edges: usize,
}

impl OneIntervalGen {
    /// New generator over `n ≥ 1` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, worst_case: bool, noise_edges: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one node");
        OneIntervalGen {
            n,
            seed,
            worst_case,
            noise_edges,
        }
    }
}

impl TopologyProvider for OneIntervalGen {
    fn n(&self) -> usize {
        self.n
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        let mut rng = stream_rng(self.seed, mix(0x51a1, round as u64));
        let skeleton = if self.worst_case {
            random_path_backbone(self.n, &mut rng)
        } else {
            random_attachment_tree(self.n, &mut rng)
        };
        let mut b = GraphBuilder::new(self.n);
        b.add_graph(&skeleton);
        if self.n >= 2 {
            for _ in 0..self.noise_edges {
                let u = rng.random_range(0..self.n);
                let mut v = rng.random_range(0..self.n - 1);
                if v >= u {
                    v += 1;
                }
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
        Arc::new(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use crate::verify::{is_always_connected, max_interval_connectivity};

    #[test]
    fn always_connected() {
        let mut g = OneIntervalGen::new(35, true, 8, 13);
        let trace = TvgTrace::capture(&mut g, 40);
        assert!(is_always_connected(&trace));
    }

    #[test]
    fn usually_not_2_interval_connected() {
        // With fresh random Hamiltonian paths each round and no noise the
        // intersection of consecutive rounds is almost surely disconnected.
        let mut g = OneIntervalGen::new(40, true, 0, 21);
        let trace = TvgTrace::capture(&mut g, 20);
        assert_eq!(max_interval_connectivity(&trace), Some(1));
    }

    #[test]
    fn deterministic_replay() {
        let mut a = OneIntervalGen::new(12, false, 3, 5);
        let mut b = OneIntervalGen::new(12, false, 3, 5);
        for r in 0..10 {
            assert_eq!(*a.graph_at(r), *b.graph_at(r));
        }
    }

    #[test]
    fn rounds_differ() {
        let mut g = OneIntervalGen::new(30, true, 0, 2);
        assert_ne!(*g.graph_at(0), *g.graph_at(1));
    }

    #[test]
    fn single_node() {
        let mut g = OneIntervalGen::new(1, true, 2, 0);
        assert_eq!(g.graph_at(5).m(), 0);
    }
}
