//! Dynamic-topology generators.
//!
//! Each generator implements [`crate::trace::TopologyProvider`] and is fully
//! deterministic given its seed: the randomness of round `r` is derived from
//! `(seed, r)` (or evolved deterministically from round 0), so revisiting a
//! round always yields the identical snapshot.
//!
//! The generators realise the dynamics models used in the paper's analysis
//! and related work:
//!
//! * [`TIntervalGen`] — flat T-interval-connected adversary (the
//!   Kuhn–Lynch–Oshman model that the baselines assume): a stable spanning
//!   backbone per T-window, re-randomised at window boundaries, plus
//!   arbitrary per-round noise edges.
//! * [`OneIntervalGen`] — the weakest solvable model: every round is
//!   connected but *no* edge need survive to the next round.
//! * [`EdgeMarkovianGen`] — Clementi et al.'s edge-Markovian dynamic graph
//!   (per-edge birth/death chain), optionally patched to stay connected.
//! * [`RandomWaypointGen`] — random geometric graph under random-waypoint
//!   mobility: the "node mobility" story from the paper's introduction,
//!   optionally patched to stay connected.
//! * [`ManhattanGen`] — vehicular mobility on a street grid (the model
//!   behind the paper's citation \[25\], "Flooding over Manhattan").
//! * [`QuiescenceTrapGen`] — a deterministic adversarial schedule that
//!   starves delta-triggered (quiescent) protocols while remaining
//!   1-interval connected (experiment E13).

mod adversary;
mod churn;
mod emdg;
mod geometric;
mod interval;
mod manhattan;

pub use adversary::QuiescenceTrapGen;
pub use churn::OneIntervalGen;
pub use emdg::EdgeMarkovianGen;
pub use geometric::{RandomWaypointGen, WaypointConfig};
pub use interval::{BackboneKind, TIntervalGen};
pub use manhattan::{ManhattanConfig, ManhattanGen};
