//! Deterministic RNG helpers.
//!
//! Every generator in this workspace is seeded, and independent streams are
//! derived by *splitting* rather than sequential draws, so adding a new
//! random decision to one component never perturbs another component's
//! stream. This is what makes experiment runs byte-for-byte reproducible
//! across refactors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive an independent child RNG from `(seed, stream)`.
///
/// Uses SplitMix64 finalisation over the pair, which decorrelates even
/// adjacent stream ids.
pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, stream))
}

/// SplitMix64-style mixing of two words into one well-distributed word.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 0), mix(0, 1));
    }

    #[test]
    fn adjacent_streams_decorrelated() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_stream_reproducible() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }
}
