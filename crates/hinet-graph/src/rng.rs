//! Deterministic RNG helpers — re-exported from [`hinet_rt::rng`].
//!
//! Every generator in this workspace is seeded, and independent streams are
//! derived by *splitting* rather than sequential draws, so adding a new
//! random decision to one component never perturbs another component's
//! stream. This is what makes experiment runs byte-for-byte reproducible
//! across refactors.
//!
//! The implementation (SplitMix64 seeding into xoshiro256\*\*, the
//! [`Rng`]/[`SliceRandom`] trait surface) lives in the std-only `hinet-rt`
//! crate so the whole workspace shares one in-tree contract; this module
//! keeps the substrate-local import path that generator code uses.

pub use hinet_rt::rng::{
    mix, stream_rng, Rng, Sample, SampleRange, SliceRandom, SplitMix64, Xoshiro256StarStar,
};
