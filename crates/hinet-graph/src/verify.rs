//! Property verifiers for TVG traces.
//!
//! Generators *claim* model properties (1-interval connectivity, T-interval
//! connectivity); these passes re-check the claims on concrete traces. Every
//! generator test in this workspace runs its output through the matching
//! verifier, so a generator bug cannot silently invalidate an experiment.

use crate::csr::CsrGraph;
use crate::graph::Graph;
use crate::trace::TvgTrace;

/// Whether every snapshot of the trace is connected (1-interval
/// connectivity, the weakest model in which dissemination is solvable —
/// O'Dell & Wattenhofer).
pub fn is_always_connected(trace: &TvgTrace) -> bool {
    trace
        .iter()
        .all(|g| CsrGraph::from(g.as_ref()).is_connected())
}

/// Whether the trace is T-interval connected (Kuhn–Lynch–Oshman): for every
/// window of `t` consecutive rounds there exists a connected spanning
/// subgraph present in all rounds of the window.
///
/// Equivalently (and this is what we check): the edge-intersection of each
/// window is itself connected — the intersection contains a connected
/// spanning subgraph iff it is connected as a graph on `V`.
///
/// Sliding windows are used (every offset), which is the strict reading of
/// the definition. `t = 1` degenerates to [`is_always_connected`].
///
/// # Panics
/// Panics if `t == 0` or `t` exceeds the trace length.
pub fn is_t_interval_connected(trace: &TvgTrace, t: usize) -> bool {
    assert!(t >= 1, "T must be positive");
    assert!(t <= trace.len(), "window longer than trace");
    for start in 0..=(trace.len() - t) {
        let inter = trace.window_intersection(start, t);
        if !CsrGraph::from(&inter).is_connected() {
            return false;
        }
    }
    true
}

/// The largest `t` for which the trace is T-interval connected, or `None`
/// if not even 1-interval connected.
///
/// Uses the fact that T-interval connectivity is downward closed in `t`
/// (a window's intersection only loses edges as the window grows), so a
/// linear scan upward terminates at the first failure.
pub fn max_interval_connectivity(trace: &TvgTrace) -> Option<usize> {
    if !is_t_interval_connected(trace, 1) {
        return None;
    }
    let mut best = 1;
    for t in 2..=trace.len() {
        if is_t_interval_connected(trace, t) {
            best = t;
        } else {
            break;
        }
    }
    Some(best)
}

/// Per-round connectivity report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// Rounds whose snapshot is disconnected.
    pub disconnected_rounds: Vec<usize>,
    /// Minimum per-round edge count.
    pub min_edges: usize,
    /// Maximum per-round edge count.
    pub max_edges: usize,
}

/// Scan a trace for per-round connectivity and edge-count extremes.
pub fn connectivity_report(trace: &TvgTrace) -> ConnectivityReport {
    let mut disconnected_rounds = Vec::new();
    let mut min_edges = usize::MAX;
    let mut max_edges = 0;
    for (r, g) in trace.iter().enumerate() {
        min_edges = min_edges.min(g.m());
        max_edges = max_edges.max(g.m());
        if !CsrGraph::from(g.as_ref()).is_connected() {
            disconnected_rounds.push(r);
        }
    }
    ConnectivityReport {
        disconnected_rounds,
        min_edges,
        max_edges,
    }
}

/// Dynamic diameter of the trace starting at round `start`: the number of
/// rounds needed until every node has been causally influenced by every
/// other node (Kuhn & Oshman's notion), computed by propagating per-source
/// reachability one round at a time.
///
/// Returns `None` if the trace ends before full mutual influence.
///
/// Cost is `O(rounds · n · m)` bits of work with a bitset frontier; fine for
/// experiment-scale traces.
pub fn dynamic_diameter(trace: &TvgTrace, start: usize) -> Option<usize> {
    let n = trace.n();
    if n <= 1 {
        return Some(0);
    }
    // influenced[s] = bitset of nodes that have heard from source s.
    let words = n.div_ceil(64);
    let mut influenced = vec![vec![0u64; words]; n];
    for (s, row) in influenced.iter_mut().enumerate() {
        row[s / 64] |= 1 << (s % 64);
    }
    let full = |row: &[u64]| -> bool {
        let mut count = 0;
        for &w in row {
            count += w.count_ones() as usize;
        }
        count == n
    };
    for r in start..trace.len() {
        let g: &Graph = trace.graph(r);
        // One synchronous round: every node shares its influence sets with
        // neighbors. Compute next state from current (simultaneous update).
        let mut next = influenced.clone();
        for s in 0..n {
            let cur = &influenced[s];
            // For each edge (u,v): if u influenced by s, then v becomes so.
            for u in g.nodes() {
                if cur[u.index() / 64] & (1 << (u.index() % 64)) != 0 {
                    for &v in g.neighbors(u) {
                        next[s][v.index() / 64] |= 1 << (v.index() % 64);
                    }
                }
            }
        }
        influenced = next;
        if influenced.iter().all(|row| full(row)) {
            return Some(r - start + 1);
        }
    }
    None
}

/// Foremost arrival times from `src` starting at round `start`: the
/// earliest round (1-based offset from `start`) by which information
/// originating at `src` *can* reach each node, assuming every informed
/// node forwards every round (a temporal BFS over the trace's foremost
/// journeys). `u32::MAX` marks nodes unreachable within the trace.
///
/// This is a per-source lower bound for any dissemination algorithm and is
/// *achieved* by full flooding — the integration suite checks that
/// `KloFlood` with a single source completes exactly at
/// `max(foremost_arrival)`.
pub fn foremost_arrival(trace: &TvgTrace, src: crate::graph::NodeId, start: usize) -> Vec<u32> {
    let n = trace.n();
    let mut arrival = vec![u32::MAX; n];
    arrival[src.index()] = 0;
    let mut informed = vec![false; n];
    informed[src.index()] = true;
    let mut frontier_nonempty = true;
    for r in start..trace.len() {
        if !frontier_nonempty {
            break;
        }
        let g = trace.graph(r);
        let mut newly: Vec<crate::graph::NodeId> = Vec::new();
        for u in g.nodes() {
            if !informed[u.index()] {
                continue;
            }
            for &v in g.neighbors(u) {
                if !informed[v.index()] && arrival[v.index()] == u32::MAX {
                    arrival[v.index()] = (r - start + 1) as u32;
                    newly.push(v);
                }
            }
        }
        frontier_nonempty = !newly.is_empty() || informed.iter().any(|&i| !i);
        for v in newly {
            informed[v.index()] = true;
        }
        if informed.iter().all(|&i| i) {
            break;
        }
    }
    arrival
}

/// The flooding makespan from `src`: the number of rounds full flooding
/// needs to inform everyone, or `None` if the trace ends first.
pub fn flooding_makespan(
    trace: &TvgTrace,
    src: crate::graph::NodeId,
    start: usize,
) -> Option<usize> {
    let arrival = foremost_arrival(trace, src, start);
    let mut max = 0u32;
    for &a in &arrival {
        if a == u32::MAX {
            return None;
        }
        max = max.max(a);
    }
    Some(max as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn arc(g: Graph) -> Arc<Graph> {
        Arc::new(g)
    }

    fn static_trace(g: Graph, len: usize) -> TvgTrace {
        let a = arc(g);
        TvgTrace::new((0..len).map(|_| Arc::clone(&a)).collect())
    }

    #[test]
    fn static_connected_trace_is_infinitely_interval_connected() {
        let t = static_trace(Graph::cycle(6), 5);
        assert!(is_always_connected(&t));
        assert!(is_t_interval_connected(&t, 5));
        assert_eq!(max_interval_connectivity(&t), Some(5));
    }

    #[test]
    fn alternating_trees_are_only_1_interval_connected() {
        // Two edge-disjoint spanning trees: each round connected, but the
        // 2-window intersection is empty, so T=2 fails.
        let t1 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let t2 = Graph::from_edges(5, [(0, 2), (2, 4), (4, 1), (1, 3)]);
        let trace = TvgTrace::new(vec![arc(t1), arc(t2)]);
        assert!(is_always_connected(&trace));
        assert!(is_t_interval_connected(&trace, 1));
        assert!(!is_t_interval_connected(&trace, 2));
        assert_eq!(max_interval_connectivity(&trace), Some(1));
    }

    #[test]
    fn disconnected_round_detected() {
        let good = Graph::cycle(4);
        let bad = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let trace = TvgTrace::new(vec![arc(good.clone()), arc(bad), arc(good)]);
        assert!(!is_always_connected(&trace));
        assert_eq!(max_interval_connectivity(&trace), None);
        let rep = connectivity_report(&trace);
        assert_eq!(rep.disconnected_rounds, vec![1]);
        assert_eq!(rep.min_edges, 2);
        assert_eq!(rep.max_edges, 4);
    }

    #[test]
    fn stable_backbone_plus_churn_yields_window_connectivity() {
        // Backbone path stable in all rounds; extra edges differ per round.
        let backbone = Graph::path(6);
        let mut rounds = Vec::new();
        for r in 0..6usize {
            let mut b = crate::graph::GraphBuilder::new(6);
            b.add_graph(&backbone);
            let extra = (r % 4, (r + 2) % 6);
            if extra.0 != extra.1 {
                b.add_edge(
                    crate::graph::NodeId::from_index(extra.0),
                    crate::graph::NodeId::from_index(extra.1),
                );
            }
            rounds.push(arc(b.build()));
        }
        let trace = TvgTrace::new(rounds);
        assert!(is_t_interval_connected(&trace, 6));
    }

    #[test]
    fn dynamic_diameter_static_path() {
        // On a static path of 5 nodes information needs 4 rounds end-to-end.
        let t = static_trace(Graph::path(5), 10);
        assert_eq!(dynamic_diameter(&t, 0), Some(4));
    }

    #[test]
    fn dynamic_diameter_complete_graph_one_round() {
        let t = static_trace(Graph::complete(6), 3);
        assert_eq!(dynamic_diameter(&t, 0), Some(1));
    }

    #[test]
    fn dynamic_diameter_none_if_trace_too_short() {
        let t = static_trace(Graph::path(8), 3);
        assert_eq!(dynamic_diameter(&t, 0), None);
    }

    #[test]
    fn dynamic_diameter_trivial_n() {
        let t = static_trace(Graph::empty(1), 2);
        assert_eq!(dynamic_diameter(&t, 0), Some(0));
    }

    #[test]
    fn foremost_arrival_static_path() {
        use crate::graph::NodeId;
        let t = static_trace(Graph::path(5), 10);
        let a = foremost_arrival(&t, NodeId(0), 0);
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        assert_eq!(flooding_makespan(&t, NodeId(0), 0), Some(4));
        assert_eq!(flooding_makespan(&t, NodeId(2), 0), Some(2));
    }

    #[test]
    fn foremost_arrival_uses_changing_edges() {
        use crate::graph::NodeId;
        // Round 0: 0-1 only; round 1: 1-2 only — node 2 reachable at time 2
        // via the temporal journey even though no single snapshot connects
        // 0 to 2.
        let g0 = Graph::from_edges(3, [(0, 1)]);
        let g1 = Graph::from_edges(3, [(1, 2)]);
        let t = TvgTrace::new(vec![arc(g0), arc(g1)]);
        let a = foremost_arrival(&t, NodeId(0), 0);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(flooding_makespan(&t, NodeId(0), 0), Some(2));
        // The reverse-ordered trace cannot deliver 0 → 2.
        let g0 = Graph::from_edges(3, [(1, 2)]);
        let g1 = Graph::from_edges(3, [(0, 1)]);
        let t = TvgTrace::new(vec![arc(g0), arc(g1)]);
        let a = foremost_arrival(&t, NodeId(0), 0);
        assert_eq!(a[2], u32::MAX, "temporal order matters");
        assert_eq!(flooding_makespan(&t, NodeId(0), 0), None);
    }

    #[test]
    fn foremost_arrival_unreachable_in_short_trace() {
        use crate::graph::NodeId;
        let t = static_trace(Graph::path(6), 2);
        let a = foremost_arrival(&t, NodeId(0), 0);
        assert_eq!(a[2], 2);
        assert_eq!(a[5], u32::MAX);
        assert_eq!(flooding_makespan(&t, NodeId(0), 0), None);
    }
}
