//! Compressed sparse row (CSR) graph view.
//!
//! Verification passes (T-interval connectivity, dynamic diameter, L-hop head
//! distances) run BFS over thousands of snapshots per experiment. A CSR
//! layout keeps the adjacency of the whole graph in two flat arrays, which is
//! markedly friendlier to the cache than a `Vec<Vec<NodeId>>` and avoids one
//! pointer chase per node. The simulator itself keeps the `Graph`
//! representation (snapshots are built incrementally there); analysis code
//! converts once and traverses many times.

use crate::graph::{Graph, NodeId};

/// Immutable CSR adjacency structure.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` indexes `targets` for node `u`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists.
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as usize
    }

    /// Whether edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Single-source BFS distances; `u32::MAX` marks unreachable nodes.
    ///
    /// Scratch-free convenience wrapper around [`CsrGraph::bfs_into`].
    pub fn bfs(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n()];
        let mut queue = Vec::with_capacity(self.n());
        self.bfs_into(src, &mut dist, &mut queue);
        dist
    }

    /// BFS reusing caller-provided scratch buffers.
    ///
    /// `dist` must have length `n` and is fully overwritten; `queue` is
    /// cleared. Reuse avoids an allocation per snapshot when verifying long
    /// traces.
    pub fn bfs_into(&self, src: NodeId, dist: &mut [u32], queue: &mut Vec<NodeId>) {
        assert_eq!(dist.len(), self.n());
        dist.fill(u32::MAX);
        queue.clear();
        dist[src.index()] = 0;
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u.index()];
            for &v in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push(v);
                }
            }
        }
    }

    /// Whether the graph is connected (trivially true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let dist = self.bfs(NodeId(0));
        dist.iter().all(|&d| d != u32::MAX)
    }

    /// Eccentricity of `src`: max BFS distance, or `None` if disconnected.
    pub fn eccentricity(&self, src: NodeId) -> Option<u32> {
        let dist = self.bfs(src);
        let mut ecc = 0;
        for &d in &dist {
            if d == u32::MAX {
                return None;
            }
            ecc = ecc.max(d);
        }
        Some(ecc)
    }

    /// Exact diameter via all-sources BFS; `None` if disconnected.
    ///
    /// Quadratic in `n` — intended for the moderate `n` of the paper's
    /// experiments (tens to low thousands), not web-scale graphs.
    pub fn diameter(&self) -> Option<u32> {
        let n = self.n();
        if n == 0 {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; n];
        let mut queue = Vec::with_capacity(n);
        let mut diam = 0;
        for u in 0..n {
            self.bfs_into(NodeId::from_index(u), &mut dist, &mut queue);
            for &d in dist.iter() {
                if d == u32::MAX {
                    return None;
                }
                diam = diam.max(d);
            }
        }
        Some(diam)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.m());
        offsets.push(0);
        for u in g.nodes() {
            targets.extend_from_slice(g.neighbors(u));
            let len: u32 = targets
                .len()
                .try_into()
                .expect("graph too large for CSR u32 offsets");
            offsets.push(len);
        }
        CsrGraph { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip_preserves_adjacency() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let c = CsrGraph::from(&g);
        assert_eq!(c.n(), 5);
        assert_eq!(c.m(), 5);
        for u in g.nodes() {
            assert_eq!(c.neighbors(u), g.neighbors(u));
            assert_eq!(c.degree(u), g.degree(u));
        }
        assert!(c.has_edge(NodeId(0), NodeId(4)));
        assert!(!c.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn bfs_distances_on_path() {
        let c = CsrGraph::from(&Graph::path(6));
        let d = c.bfs(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let c = CsrGraph::from(&g);
        let d = c.bfs(NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn connectivity_detection() {
        assert!(CsrGraph::from(&Graph::cycle(8)).is_connected());
        assert!(!CsrGraph::from(&Graph::from_edges(3, [(0, 1)])).is_connected());
        assert!(CsrGraph::from(&Graph::empty(1)).is_connected());
        assert!(CsrGraph::from(&Graph::empty(0)).is_connected());
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(CsrGraph::from(&Graph::path(7)).diameter(), Some(6));
        assert_eq!(CsrGraph::from(&Graph::cycle(8)).diameter(), Some(4));
        assert_eq!(CsrGraph::from(&Graph::complete(5)).diameter(), Some(1));
        assert_eq!(CsrGraph::from(&Graph::star(9)).diameter(), Some(2));
        assert_eq!(
            CsrGraph::from(&Graph::from_edges(3, [(0, 1)])).diameter(),
            None
        );
    }

    #[test]
    fn eccentricity_hub_vs_leaf() {
        let c = CsrGraph::from(&Graph::star(5));
        assert_eq!(c.eccentricity(NodeId(0)), Some(1));
        assert_eq!(c.eccentricity(NodeId(1)), Some(2));
    }
}
