//! Time-varying graph traces and streaming topology providers.
//!
//! The paper's TVG is `G = (V, E, Γ, ρ, ζ)`; with the synchronous round model
//! (`ζ ≡ 1` round) the observable object is simply the sequence of per-round
//! snapshots `G_0, G_1, …` given by the presence function `ρ`. A
//! [`TvgTrace`] materialises a finite prefix of that sequence; a
//! [`TopologyProvider`] is the lazy/streaming form the simulator consumes, so
//! adversarial generators can react to unbounded round indices.

use crate::graph::Graph;
use std::sync::Arc;

/// Streaming source of per-round topology snapshots.
///
/// `graph_at(r)` must be **deterministic**: calling it twice for the same
/// round returns the same snapshot. Providers may be called with
/// monotonically non-decreasing rounds by the simulator, but verifiers may
/// revisit arbitrary rounds, so implementations cache or recompute
/// deterministically (all generators in [`crate::generators`] derive the
/// round's randomness from `(seed, round)`).
pub trait TopologyProvider {
    /// Number of nodes (constant over the lifetime — the paper's model has a
    /// fixed `V`; churn is in edges, not nodes).
    fn n(&self) -> usize;

    /// Topology snapshot for round `round`.
    fn graph_at(&mut self, round: usize) -> Arc<Graph>;
}

/// A finite, fully materialised TVG trace.
#[derive(Clone, Debug)]
pub struct TvgTrace {
    n: usize,
    rounds: Vec<Arc<Graph>>,
}

impl TvgTrace {
    /// Build a trace from snapshots; all must have the same node count.
    ///
    /// # Panics
    /// Panics if snapshots disagree on `n`, or if `rounds` is empty.
    pub fn new(rounds: Vec<Arc<Graph>>) -> Self {
        assert!(!rounds.is_empty(), "a trace needs at least one round");
        let n = rounds[0].n();
        assert!(
            rounds.iter().all(|g| g.n() == n),
            "all snapshots must share the node set"
        );
        TvgTrace { n, rounds }
    }

    /// Materialise the first `len` rounds of a provider.
    pub fn capture(provider: &mut dyn TopologyProvider, len: usize) -> Self {
        assert!(len > 0);
        let rounds = (0..len).map(|r| provider.graph_at(r)).collect();
        TvgTrace {
            n: provider.n(),
            rounds,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Snapshot at `round`.
    ///
    /// # Panics
    /// Panics if `round ≥ len()`.
    pub fn graph(&self, round: usize) -> &Arc<Graph> {
        &self.rounds[round]
    }

    /// Iterator over snapshots in round order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Graph>> {
        self.rounds.iter()
    }

    /// Edge-intersection over the window `[start, start+len)` — the subgraph
    /// stable throughout the window.
    ///
    /// # Panics
    /// Panics if the window is empty or exceeds the trace.
    pub fn window_intersection(&self, start: usize, len: usize) -> Graph {
        assert!(len > 0, "empty window");
        assert!(start + len <= self.rounds.len(), "window exceeds trace");
        let mut acc: Graph = (*self.rounds[start]).clone();
        for g in &self.rounds[start + 1..start + len] {
            acc = acc.intersect(g);
        }
        acc
    }

    /// Mean number of edges changed (symmetric difference) between
    /// consecutive rounds — a churn statistic for experiment reports.
    pub fn mean_churn(&self) -> f64 {
        if self.rounds.len() < 2 {
            return 0.0;
        }
        let total: usize = self
            .rounds
            .windows(2)
            .map(|w| w[0].edge_distance(&w[1]))
            .sum();
        total as f64 / (self.rounds.len() - 1) as f64
    }
}

/// Adapter: replay a materialised trace as a provider.
///
/// Rounds beyond the recorded length repeat the final snapshot, which models
/// "the network keeps its last topology" and keeps simulations that slightly
/// overshoot a trace well-defined.
#[derive(Clone, Debug)]
pub struct TraceProvider {
    trace: TvgTrace,
}

impl TraceProvider {
    /// Wrap a trace.
    pub fn new(trace: TvgTrace) -> Self {
        TraceProvider { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &TvgTrace {
        &self.trace
    }
}

impl TopologyProvider for TraceProvider {
    fn n(&self) -> usize {
        self.trace.n()
    }

    fn graph_at(&mut self, round: usize) -> Arc<Graph> {
        let idx = round.min(self.trace.len() - 1);
        Arc::clone(self.trace.graph(idx))
    }
}

/// Provider for a static (non-changing) topology — the degenerate
/// ∞-interval-connected case, useful as a baseline and in tests.
#[derive(Clone, Debug)]
pub struct StaticProvider {
    graph: Arc<Graph>,
}

impl StaticProvider {
    /// Wrap a single snapshot.
    pub fn new(graph: Graph) -> Self {
        StaticProvider {
            graph: Arc::new(graph),
        }
    }
}

impl TopologyProvider for StaticProvider {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn graph_at(&mut self, _round: usize) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn arc(g: Graph) -> Arc<Graph> {
        Arc::new(g)
    }

    #[test]
    fn trace_basic_accessors() {
        let t = TvgTrace::new(vec![arc(Graph::path(4)), arc(Graph::cycle(4))]);
        assert_eq!(t.n(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.graph(0).m(), 3);
        assert_eq!(t.graph(1).m(), 4);
    }

    #[test]
    #[should_panic(expected = "share the node set")]
    fn trace_rejects_mismatched_n() {
        let _ = TvgTrace::new(vec![arc(Graph::path(3)), arc(Graph::path(4))]);
    }

    #[test]
    fn window_intersection_is_stable_subgraph() {
        let g0 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let g1 = Graph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let g2 = Graph::from_edges(4, [(0, 1), (2, 3), (1, 2)]);
        let t = TvgTrace::new(vec![arc(g0), arc(g1), arc(g2)]);
        let w = t.window_intersection(0, 3);
        assert_eq!(w.m(), 2);
        assert!(w.has_edge(NodeId(0), NodeId(1)));
        assert!(w.has_edge(NodeId(1), NodeId(2)));
        let w01 = t.window_intersection(0, 2);
        assert_eq!(w01.m(), 2);
        let single = t.window_intersection(2, 1);
        assert_eq!(single.m(), 3);
    }

    #[test]
    fn trace_provider_replays_and_clamps() {
        let t = TvgTrace::new(vec![arc(Graph::path(3)), arc(Graph::cycle(3))]);
        let mut p = TraceProvider::new(t);
        assert_eq!(p.n(), 3);
        assert_eq!(p.graph_at(0).m(), 2);
        assert_eq!(p.graph_at(1).m(), 3);
        assert_eq!(p.graph_at(99).m(), 3, "clamps to last snapshot");
    }

    #[test]
    fn static_provider_constant() {
        let mut p = StaticProvider::new(Graph::star(5));
        assert_eq!(p.n(), 5);
        assert!(Arc::ptr_eq(&p.graph_at(0), &p.graph_at(1000)));
    }

    #[test]
    fn capture_materialises_provider() {
        let mut p = StaticProvider::new(Graph::cycle(4));
        let t = TvgTrace::capture(&mut p, 5);
        assert_eq!(t.len(), 5);
        assert!(t.iter().all(|g| g.m() == 4));
        assert_eq!(t.mean_churn(), 0.0);
    }

    #[test]
    fn mean_churn_counts_changes() {
        let g0 = Graph::from_edges(3, [(0, 1)]);
        let g1 = Graph::from_edges(3, [(1, 2)]);
        let t = TvgTrace::new(vec![arc(g0), arc(g1)]);
        assert_eq!(t.mean_churn(), 2.0);
    }
}
