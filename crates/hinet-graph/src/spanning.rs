//! Spanning subgraph utilities.
//!
//! T-interval connectivity ([Kuhn–Lynch–Oshman]) quantifies over *stable
//! connected spanning subgraphs*: for every window of `T` consecutive rounds
//! there must exist a connected subgraph on all of `V` present in every round
//! of the window. The generators in this crate realise that property by
//! explicitly constructing a spanning backbone per window and holding it
//! fixed; this module provides the backbone constructions and the extraction
//! of spanning trees used by the verifier.

use crate::graph::{Edge, Graph, GraphBuilder, NodeId};
use crate::rng::{Rng, SliceRandom};

/// A uniform-ish random spanning tree over nodes `0..n` via a random
/// permutation attachment process (each node links to a uniformly random
/// earlier node in a random order).
///
/// Not exactly uniform over all trees (that would need Wilson's algorithm)
/// but cheap, well-spread, and sufficient as an adversarial stable backbone.
pub fn random_attachment_tree(n: usize, rng: &mut impl Rng) -> Graph {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_edge(NodeId::from_index(order[i]), NodeId::from_index(order[j]));
    }
    b.build()
}

/// A random Hamiltonian path over `0..n` — the worst-case stable backbone
/// for flooding (diameter `n−1`), used by adversarial generators.
pub fn random_path_backbone(n: usize, rng: &mut impl Rng) -> Graph {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    for w in order.windows(2) {
        b.add_edge(NodeId::from_index(w[0]), NodeId::from_index(w[1]));
    }
    b.build()
}

/// Extract *some* spanning tree of `g` (BFS tree from node 0), or `None` if
/// `g` is disconnected.
pub fn bfs_spanning_tree(g: &Graph) -> Option<Graph> {
    let n = g.n();
    if n == 0 {
        return Some(Graph::empty(0));
    }
    let mut b = GraphBuilder::new(n);
    let mut seen = vec![false; n];
    let mut queue = Vec::with_capacity(n);
    seen[0] = true;
    queue.push(NodeId(0));
    let mut head = 0;
    let mut reached = 1;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                reached += 1;
                b.add_edge(u, v);
                queue.push(v);
            }
        }
    }
    if reached == n {
        Some(b.build())
    } else {
        None
    }
}

/// Collect the tree edges of a BFS spanning tree as an edge list (for cheap
/// re-insertion into builders), or `None` if disconnected.
pub fn bfs_spanning_edges(g: &Graph) -> Option<Vec<Edge>> {
    bfs_spanning_tree(g).map(|t| t.edges().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::traversal::is_connected;

    #[test]
    fn attachment_tree_is_spanning_tree() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_attachment_tree(n, &mut rng);
            assert_eq!(t.n(), n);
            assert_eq!(t.m(), n.saturating_sub(1));
            assert!(is_connected(&t), "n={n}");
        }
    }

    #[test]
    fn path_backbone_is_path() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let p = random_path_backbone(20, &mut rng);
        assert_eq!(p.m(), 19);
        assert!(is_connected(&p));
        let deg1 = p.nodes().filter(|&u| p.degree(u) == 1).count();
        assert_eq!(deg1, 2, "a path has exactly two endpoints");
        assert!(p.nodes().all(|u| p.degree(u) <= 2));
    }

    #[test]
    fn bfs_tree_spans_connected_graph() {
        let g = Graph::complete(9);
        let t = bfs_spanning_tree(&g).unwrap();
        assert_eq!(t.m(), 8);
        assert!(is_connected(&t));
        assert!(g.contains_subgraph(&t));
    }

    #[test]
    fn bfs_tree_none_when_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(bfs_spanning_tree(&g).is_none());
        assert!(bfs_spanning_edges(&g).is_none());
    }

    #[test]
    fn bfs_tree_trivial_cases() {
        assert!(bfs_spanning_tree(&Graph::empty(1)).is_some());
        assert!(bfs_spanning_tree(&Graph::empty(0)).is_some());
    }

    #[test]
    fn trees_deterministic_per_seed() {
        let t1 = random_attachment_tree(30, &mut Xoshiro256StarStar::seed_from_u64(5));
        let t2 = random_attachment_tree(30, &mut Xoshiro256StarStar::seed_from_u64(5));
        assert_eq!(t1, t2);
        let t3 = random_attachment_tree(30, &mut Xoshiro256StarStar::seed_from_u64(6));
        assert_ne!(t1, t3);
    }
}
