//! Immutable undirected graph snapshots.
//!
//! A [`Graph`] is one round's topology in a dynamic network. It is built once
//! via [`GraphBuilder`] (or the convenience constructors) and never mutated,
//! so snapshots can be shared freely between the simulator, the verifiers and
//! the cluster layer behind an `Arc`.

use std::fmt;

/// Identifier of a network node.
///
/// Nodes are dense indices `0..n`; the paper's "unique identifier" per node is
/// exactly this index. Ordering of `NodeId`s is meaningful: clustering
/// algorithms such as lowest-ID use it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index, for direct indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An undirected edge, stored in canonical (smaller id first) order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// Endpoint with the smaller id.
    pub a: NodeId,
    /// Endpoint with the larger id.
    pub b: NodeId,
}

impl Edge {
    /// Canonicalise an unordered endpoint pair into an `Edge`.
    ///
    /// # Panics
    /// Panics if `u == v` (self-loops are not meaningful in the model).
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop edge ({u}, {v})");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// The endpoint that is not `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: NodeId) -> NodeId {
        if x == self.a {
            self.b
        } else {
            assert_eq!(x, self.b, "{x} is not an endpoint of {self:?}");
            self.a
        }
    }
}

/// An immutable undirected simple graph over nodes `0..n`.
///
/// Neighbor lists are sorted, enabling `O(log deg)` adjacency queries and
/// linear-time sorted-merge operations (used by window-intersection graphs in
/// the T-interval connectivity verifier).
///
/// ```
/// use hinet_graph::graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert!(g.has_edge(NodeId(1), NodeId(2)));
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<NodeId>>,
    m: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.m)
            .finish()
    }
}

impl Graph {
    /// The empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Complete graph on `n` nodes.
    pub fn complete(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
            }
        }
        b.build()
    }

    /// Path graph `0 - 1 - … - (n-1)`.
    pub fn path(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 1..n {
            b.add_edge(NodeId::from_index(u - 1), NodeId::from_index(u));
        }
        b.build()
    }

    /// Cycle graph on `n ≥ 3` nodes.
    ///
    /// # Panics
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 nodes, got {n}");
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            b.add_edge(NodeId::from_index(u), NodeId::from_index((u + 1) % n));
        }
        b.build()
    }

    /// Star graph: node 0 is the hub, nodes `1..n` are leaves.
    pub fn star(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 1..n {
            b.add_edge(NodeId::from_index(0), NodeId::from_index(u));
        }
        b.build()
    }

    /// Build a graph directly from an edge list.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::from_index)
    }

    /// Sorted neighbor list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.index()]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Whether edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n).flat_map(move |u| {
            let u = NodeId::from_index(u);
            self.adj[u.index()]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge { a: u, b: v })
        })
    }

    /// The edge-intersection of `self` and `other` (same node set).
    ///
    /// This is the "stable subgraph" operator: the intersection over a window
    /// of rounds is exactly the subgraph that existed throughout the window,
    /// which is what T-interval connectivity quantifies over.
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn intersect(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "intersecting graphs of different order");
        let mut adj = Vec::with_capacity(self.n);
        let mut m = 0;
        for u in 0..self.n {
            let (xs, ys) = (&self.adj[u], &other.adj[u]);
            let mut merged = Vec::with_capacity(xs.len().min(ys.len()));
            let (mut i, mut j) = (0, 0);
            while i < xs.len() && j < ys.len() {
                match xs[i].cmp(&ys[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        merged.push(xs[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            m += merged.len();
            adj.push(merged);
        }
        Graph {
            n: self.n,
            adj,
            m: m / 2,
        }
    }

    /// The edge-union of `self` and `other` (same node set).
    ///
    /// # Panics
    /// Panics if node counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "uniting graphs of different order");
        let mut adj = Vec::with_capacity(self.n);
        let mut m = 0;
        for u in 0..self.n {
            let (xs, ys) = (&self.adj[u], &other.adj[u]);
            let mut merged = Vec::with_capacity(xs.len() + ys.len());
            let (mut i, mut j) = (0, 0);
            while i < xs.len() || j < ys.len() {
                let take_x = j >= ys.len() || (i < xs.len() && xs[i] <= ys[j]);
                if take_x {
                    if j < ys.len() && xs[i] == ys[j] {
                        j += 1;
                    }
                    merged.push(xs[i]);
                    i += 1;
                } else {
                    merged.push(ys[j]);
                    j += 1;
                }
            }
            m += merged.len();
            adj.push(merged);
        }
        Graph {
            n: self.n,
            adj,
            m: m / 2,
        }
    }

    /// Whether every edge of `sub` is also an edge of `self`.
    pub fn contains_subgraph(&self, sub: &Graph) -> bool {
        if sub.n != self.n {
            return false;
        }
        sub.edges().all(|e| self.has_edge(e.a, e.b))
    }

    /// Total size in edges of the symmetric difference with `other`.
    ///
    /// Used by churn metrics: how much the topology changed between rounds.
    pub fn edge_distance(&self, other: &Graph) -> usize {
        assert_eq!(self.n, other.n);
        let common = self.intersect(other).m();
        (self.m - common) + (other.m - common)
    }
}

/// Incremental builder for [`Graph`].
///
/// Duplicate edge insertions are tolerated (deduplicated at `build`), which
/// keeps generator code simple.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Builder for a graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert_ne!(u, v, "self-loop at {u}");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge ({u}, {v}) out of range for n={}",
            self.n
        );
        self.adj[u.index()].push(v);
        self.adj[v.index()].push(u);
        self
    }

    /// Add every edge of `g` (must have the same node count).
    pub fn add_graph(&mut self, g: &Graph) -> &mut Self {
        assert_eq!(g.n(), self.n);
        for e in g.edges() {
            self.add_edge(e.a, e.b);
        }
        self
    }

    /// Add every edge in the iterator.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = Edge>) -> &mut Self {
        for e in edges {
            self.add_edge(e.a, e.b);
        }
        self
    }

    /// Finalise: sort and deduplicate adjacency lists.
    pub fn build(mut self) -> Graph {
        let mut m = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        Graph {
            n: self.n,
            adj: self.adj,
            m: m / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.edges().count(), 0);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 0);
        }
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        assert_eq!(g.m(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = Graph::path(4);
        assert_eq!(p.m(), 3);
        assert!(p.has_edge(nid(0), nid(1)));
        assert!(!p.has_edge(nid(0), nid(2)));

        let c = Graph::cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.has_edge(nid(0), nid(4)));
        for u in c.nodes() {
            assert_eq!(c.degree(u), 2);
        }
    }

    #[test]
    fn star_hub_degree() {
        let s = Graph::star(7);
        assert_eq!(s.degree(nid(0)), 6);
        assert_eq!(s.m(), 6);
        for u in 1..7 {
            assert_eq!(s.degree(nid(u)), 1);
        }
    }

    #[test]
    fn builder_dedups_duplicate_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(nid(0), nid(1));
        b.add_edge(nid(1), nid(0));
        b.add_edge(nid(0), nid(1));
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(nid(0)), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(nid(1), nid(1));
    }

    #[test]
    fn edge_canonicalisation() {
        let e = Edge::new(nid(5), nid(2));
        assert_eq!(e.a, nid(2));
        assert_eq!(e.b, nid(5));
        assert_eq!(e.other(nid(2)), nid(5));
        assert_eq!(e.other(nid(5)), nid(2));
    }

    #[test]
    fn intersect_keeps_common_edges_only() {
        let g1 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::from_edges(4, [(0, 1), (2, 3), (0, 3)]);
        let i = g1.intersect(&g2);
        assert_eq!(i.m(), 2);
        assert!(i.has_edge(nid(0), nid(1)));
        assert!(i.has_edge(nid(2), nid(3)));
        assert!(!i.has_edge(nid(1), nid(2)));
    }

    #[test]
    fn union_merges_edges() {
        let g1 = Graph::from_edges(4, [(0, 1), (1, 2)]);
        let g2 = Graph::from_edges(4, [(1, 2), (2, 3)]);
        let u = g1.union(&g2);
        assert_eq!(u.m(), 3);
        assert!(u.has_edge(nid(0), nid(1)));
        assert!(u.has_edge(nid(1), nid(2)));
        assert!(u.has_edge(nid(2), nid(3)));
    }

    #[test]
    fn intersect_with_self_is_identity() {
        let g = Graph::complete(5);
        assert_eq!(g.intersect(&g), g);
        assert_eq!(g.union(&g), g);
    }

    #[test]
    fn contains_subgraph_checks_edges() {
        let g = Graph::complete(4);
        let sub = Graph::path(4);
        assert!(g.contains_subgraph(&sub));
        assert!(!sub.contains_subgraph(&g));
    }

    #[test]
    fn edge_distance_symmetric_difference() {
        let g1 = Graph::from_edges(4, [(0, 1), (1, 2)]);
        let g2 = Graph::from_edges(4, [(1, 2), (2, 3), (0, 3)]);
        assert_eq!(g1.edge_distance(&g2), 3);
        assert_eq!(g2.edge_distance(&g1), 3);
        assert_eq!(g1.edge_distance(&g1), 0);
    }

    #[test]
    fn edges_iterator_canonical_and_complete() {
        let g = Graph::from_edges(5, [(3, 1), (0, 4), (2, 0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(e.a < e.b);
        }
    }
}
