//! Per-snapshot and per-trace topology statistics.
//!
//! The stability audits and experiment reports want to characterise *how
//! dynamic* and *how dense* a scenario is beyond the binary model
//! predicates — these are the standard graph statistics, computed without
//! allocation churn on trace-scale inputs.

use crate::graph::Graph;
use crate::trace::TvgTrace;

/// Degree and density statistics of one snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotStats {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Edge density `m / (n·(n−1)/2)` (0 for `n < 2`).
    pub density: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `2m/n` (0 for `n = 0`).
    pub mean_degree: f64,
    /// Global clustering coefficient: `3·triangles / open wedges`
    /// (0 when there are no wedges).
    pub clustering_coefficient: f64,
}

/// Compute [`SnapshotStats`] for a snapshot.
pub fn snapshot_stats(g: &Graph) -> SnapshotStats {
    let n = g.n();
    let m = g.m();
    let mut min_degree = usize::MAX;
    let mut max_degree = 0;
    let mut wedges = 0u64;
    let mut triangles = 0u64;
    for u in g.nodes() {
        let d = g.degree(u);
        min_degree = min_degree.min(d);
        max_degree = max_degree.max(d);
        wedges += (d as u64) * (d as u64).saturating_sub(1) / 2;
        // Count triangles via sorted-neighbor intersection on the two
        // higher endpoints of each edge (each triangle counted once).
        let nbrs = g.neighbors(u);
        for (i, &v) in nbrs.iter().enumerate() {
            if v < u {
                continue;
            }
            for &w in &nbrs[i + 1..] {
                if w > v && g.has_edge(v, w) {
                    triangles += 1;
                }
            }
        }
    }
    if n == 0 {
        min_degree = 0;
    }
    let pairs = n.saturating_sub(1) * n / 2;
    SnapshotStats {
        n,
        m,
        density: if pairs == 0 {
            0.0
        } else {
            m as f64 / pairs as f64
        },
        min_degree,
        max_degree,
        mean_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        clustering_coefficient: if wedges == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / wedges as f64
        },
    }
}

/// Aggregated dynamics statistics of a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    /// Rounds in the trace.
    pub rounds: usize,
    /// Mean per-round edge count.
    pub mean_edges: f64,
    /// Mean per-round density.
    pub mean_density: f64,
    /// Mean per-round clustering coefficient.
    pub mean_clustering: f64,
    /// Mean edges changed between consecutive rounds (symmetric
    /// difference) — the churn rate.
    pub mean_churn: f64,
    /// Churn normalised by mean edge count (0 when edgeless): 0 = frozen,
    /// 2 ≈ completely re-randomised each round.
    pub relative_churn: f64,
    /// Mean fraction of a round's edges that survive to the next round
    /// (1 = static; 0 = nothing persists).
    pub edge_persistence: f64,
}

/// Compute [`TraceStats`] over a trace.
pub fn trace_stats(trace: &TvgTrace) -> TraceStats {
    let rounds = trace.len();
    let mut sum_edges = 0.0;
    let mut sum_density = 0.0;
    let mut sum_clustering = 0.0;
    for g in trace.iter() {
        let s = snapshot_stats(g);
        sum_edges += s.m as f64;
        sum_density += s.density;
        sum_clustering += s.clustering_coefficient;
    }
    let mean_edges = sum_edges / rounds as f64;
    let mean_churn = trace.mean_churn();
    let mut persistence_sum = 0.0;
    let mut persistence_count = 0usize;
    for w in 0..rounds.saturating_sub(1) {
        let cur = trace.graph(w);
        if cur.m() == 0 {
            continue;
        }
        let kept = cur.intersect(trace.graph(w + 1)).m();
        persistence_sum += kept as f64 / cur.m() as f64;
        persistence_count += 1;
    }
    TraceStats {
        rounds,
        mean_edges,
        mean_density: sum_density / rounds as f64,
        mean_clustering: sum_clustering / rounds as f64,
        mean_churn,
        relative_churn: if mean_edges == 0.0 {
            0.0
        } else {
            mean_churn / mean_edges
        },
        edge_persistence: if persistence_count == 0 {
            1.0
        } else {
            persistence_sum / persistence_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TvgTrace;
    use std::sync::Arc;

    #[test]
    fn snapshot_stats_complete_graph() {
        let s = snapshot_stats(&Graph::complete(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 10);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.mean_degree - 4.0).abs() < 1e-12);
        assert!(
            (s.clustering_coefficient - 1.0).abs() < 1e-12,
            "cliques are fully clustered"
        );
    }

    #[test]
    fn snapshot_stats_star_has_zero_clustering() {
        let s = snapshot_stats(&Graph::star(6));
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.clustering_coefficient, 0.0, "stars are triangle-free");
    }

    #[test]
    fn snapshot_stats_triangle_exact() {
        let s = snapshot_stats(&Graph::cycle(3));
        assert!((s.clustering_coefficient - 1.0).abs() < 1e-12);
        let sq = snapshot_stats(&Graph::cycle(4));
        assert_eq!(sq.clustering_coefficient, 0.0);
    }

    #[test]
    fn snapshot_stats_empty_and_trivial() {
        let e = snapshot_stats(&Graph::empty(4));
        assert_eq!(e.density, 0.0);
        assert_eq!(e.min_degree, 0);
        let z = snapshot_stats(&Graph::empty(0));
        assert_eq!(z.mean_degree, 0.0);
        assert_eq!(z.min_degree, 0);
    }

    #[test]
    fn trace_stats_static_trace() {
        let g = Arc::new(Graph::cycle(6));
        let t = TvgTrace::new(vec![Arc::clone(&g), Arc::clone(&g), g]);
        let s = trace_stats(&t);
        assert_eq!(s.rounds, 3);
        assert!((s.mean_edges - 6.0).abs() < 1e-12);
        assert_eq!(s.mean_churn, 0.0);
        assert_eq!(s.relative_churn, 0.0);
        assert!((s.edge_persistence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_stats_total_rewire() {
        // Two edge-disjoint spanning structures: persistence 0, churn high.
        let g1 = Arc::new(Graph::from_edges(4, [(0, 1), (2, 3)]));
        let g2 = Arc::new(Graph::from_edges(4, [(0, 2), (1, 3)]));
        let t = TvgTrace::new(vec![g1, g2]);
        let s = trace_stats(&t);
        assert_eq!(s.edge_persistence, 0.0);
        assert!((s.mean_churn - 4.0).abs() < 1e-12);
        assert!((s.relative_churn - 2.0).abs() < 1e-12);
    }

    #[test]
    fn generator_sanity_slow_waypoint_is_persistent() {
        use crate::generators::{RandomWaypointGen, WaypointConfig};
        use crate::trace::TvgTrace;
        let mut slow = RandomWaypointGen::new(
            30,
            WaypointConfig {
                radius: 0.3,
                min_speed: 0.001,
                max_speed: 0.005,
                ensure_connected: true,
            },
            3,
        );
        let t = TvgTrace::capture(&mut slow, 20);
        let s = trace_stats(&t);
        assert!(
            s.edge_persistence > 0.9,
            "slow motion keeps links: {}",
            s.edge_persistence
        );

        use crate::generators::OneIntervalGen;
        let mut churny = OneIntervalGen::new(30, true, 0, 3);
        let t = TvgTrace::capture(&mut churny, 20);
        let s = trace_stats(&t);
        assert!(
            s.edge_persistence < 0.3,
            "fresh paths each round: {}",
            s.edge_persistence
        );
    }
}
