//! Traversal primitives on [`Graph`] snapshots.
//!
//! These operate directly on the adjacency-list representation; the CSR view
//! ([`crate::CsrGraph`]) has its own BFS for hot verification loops.

use crate::graph::{Graph, NodeId};

/// Single-source BFS distances; `u32::MAX` marks unreachable nodes.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = Vec::with_capacity(g.n());
    dist[src.index()] = 0;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: distance from the nearest source.
///
/// Used for gateway assignment (which head is this node closest to?) and for
/// checking how far tokens can have travelled from a set of informed nodes.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = Vec::with_capacity(g.n());
    for &s in sources {
        if dist[s.index()] == u32::MAX {
            dist[s.index()] = 0;
            queue.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Shortest path from `src` to `dst` as a node sequence (inclusive), or
/// `None` if `dst` is unreachable.
///
/// Among equal-length paths the one preferring smaller node ids is returned
/// (deterministic, which matters for reproducible gateway selection).
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; g.n()];
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = Vec::with_capacity(g.n());
    dist[src.index()] = 0;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        if u == dst {
            break;
        }
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                parent[v.index()] = Some(u);
                queue.push(v);
            }
        }
    }
    if dist[dst.index()] == u32::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], src);
    Some(path)
}

/// Connected-component label per node (labels are the smallest node id in the
/// component, so they are stable and comparable across calls).
pub fn components(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut label: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = Vec::new();
    for start in 0..n {
        if label[start].is_some() {
            continue;
        }
        let root = NodeId::from_index(start);
        label[start] = Some(root);
        queue.clear();
        queue.push(root);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in g.neighbors(u) {
                if label[v.index()].is_none() {
                    label[v.index()] = Some(root);
                    queue.push(v);
                }
            }
        }
    }
    label
        .into_iter()
        .map(|l| l.expect("all labelled"))
        .collect()
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let labels = components(g);
    let mut distinct: Vec<NodeId> = labels;
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

/// Whether the graph is connected (trivially true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    bfs_distances(g, NodeId(0)).iter().all(|&d| d != u32::MAX)
}

/// Whether `sub`'s edges form a connected spanning subgraph of the node set
/// restricted to `nodes` (every node in `nodes` mutually reachable in `sub`).
pub fn connects_all(sub: &Graph, nodes: &[NodeId]) -> bool {
    match nodes.first() {
        None => true,
        Some(&first) => {
            let dist = bfs_distances(sub, first);
            nodes.iter().all(|&v| dist[v.index()] != u32::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_cycle() {
        let g = Graph::cycle(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = Graph::path(7);
        let d = multi_source_bfs(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = Graph::path(3);
        let d = multi_source_bfs(&g, &[]);
        assert!(d.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = Graph::cycle(8);
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(3)));
        assert_eq!(p.len(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(shortest_path(&g, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn shortest_path_to_self() {
        let g = Graph::path(3);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)),
            Some(vec![NodeId(1)])
        );
    }

    #[test]
    fn components_labels_by_min_id() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let labels = components(&g);
        assert_eq!(labels[0], NodeId(0));
        assert_eq!(labels[1], NodeId(0));
        assert_eq!(labels[2], NodeId(0));
        assert_eq!(labels[3], NodeId(3));
        assert_eq!(labels[4], NodeId(4));
        assert_eq!(labels[5], NodeId(4));
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn connectivity_of_shapes() {
        assert!(is_connected(&Graph::complete(4)));
        assert!(is_connected(&Graph::path(9)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(is_connected(&Graph::empty(1)));
    }

    #[test]
    fn connects_all_subset() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]);
        assert!(connects_all(&g, &[NodeId(0), NodeId(2)]));
        assert!(!connects_all(&g, &[NodeId(0), NodeId(4)]));
        assert!(connects_all(&g, &[]));
    }
}
