//! # hinet-graph
//!
//! Graph substrate for the (T, L)-HiNet reproduction.
//!
//! This crate provides everything below the cluster layer:
//!
//! * [`Graph`] — an immutable undirected graph snapshot (one communication
//!   round of a dynamic network), plus a compact CSR view ([`CsrGraph`]) for
//!   traversal-heavy verification passes.
//! * [`trace::TvgTrace`] — a time-varying graph: the sequence of per-round
//!   snapshots, i.e. the `(V, E, Γ, ρ)` part of the paper's TVG/CTVG model
//!   (we fix the latency function `ζ ≡ 1` round, as the paper's synchronous
//!   model does implicitly).
//! * [`trace::TopologyProvider`] — streaming interface used by the simulator
//!   so that unbounded adversarial generators do not need to materialise a
//!   whole trace up front.
//! * [`generators`] — deterministic, seeded dynamic-topology generators:
//!   flat T-interval-connected adversaries (the Kuhn–Lynch–Oshman setting),
//!   1-interval-connected random churn, edge-Markovian dynamic graphs, and a
//!   random-geometric mobility model.
//! * [`verify`] — property verifiers that re-check on a generated trace the
//!   guarantees a generator claims (per-round connectivity, T-interval
//!   connectivity, dynamic diameter).
//!
//! Everything is deterministic given a seed; no global state.
//!
//! # Example
//!
//! Build a T-interval-connected adversary, capture a trace, and verify the
//! property it claims:
//!
//! ```
//! use hinet_graph::generators::{BackboneKind, TIntervalGen};
//! use hinet_graph::trace::TvgTrace;
//! use hinet_graph::verify::{is_always_connected, is_t_interval_connected};
//!
//! let mut gen = TIntervalGen::new(30, 5, BackboneKind::Path, 6, 42);
//! let trace = TvgTrace::capture(&mut gen, 20);
//! assert!(is_always_connected(&trace));
//! // Aligned windows of length 5 share a stable spanning backbone:
//! for w in 0..4 {
//!     let stable = trace.window_intersection(w * 5, 5);
//!     assert!(hinet_graph::traversal::is_connected(&stable));
//! }
//! assert!(is_t_interval_connected(&trace, 1));
//! ```

pub mod csr;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod rng;
pub mod spanning;
pub mod trace;
pub mod traversal;
pub mod verify;

pub use csr::CsrGraph;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use trace::{TopologyProvider, TvgTrace};
