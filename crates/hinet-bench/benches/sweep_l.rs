//! Bench: E8 — cost vs hop bound L of cluster-head connectivity; the
//! sweep table prints once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinet_analysis::experiments::e8_sweep_l;
use hinet_analysis::scenarios;
use hinet_bench::{print_once, small_params};
use hinet_core::analysis::ModelParams;
use std::hint::black_box;
use std::sync::Once;

static PRINTED: Once = Once::new();

fn bench_sweep_l(c: &mut Criterion) {
    print_once(&PRINTED, || e8_sweep_l().to_text());
    let base = small_params();
    let mut group = c.benchmark_group("sweep_l");
    group.sample_size(10);
    for l in [1u64, 2, 3] {
        let p = ModelParams { l, ..base };
        group.bench_with_input(BenchmarkId::new("alg1_vs_klo", l), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_tl(p, seed),
                    scenarios::run_klo_t_interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_l);
criterion_main!(benches);
