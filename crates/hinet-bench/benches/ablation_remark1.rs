//! Bench: E11 — Remark 1 (∞-stable heads) vs plain Algorithm 1; the
//! ablation table prints once.

use criterion::{criterion_group, criterion_main, Criterion};
use hinet_analysis::experiments::e11_remark1_ablation;
use hinet_analysis::scenarios;
use hinet_bench::{print_once, small_params};
use std::hint::black_box;
use std::sync::Once;

static PRINTED: Once = Once::new();

fn bench_remark1(c: &mut Criterion) {
    print_once(&PRINTED, || e11_remark1_ablation().to_text());
    let p = small_params();
    let mut group = c.benchmark_group("ablation_remark1");
    group.sample_size(15);
    group.bench_function("alg1_rotating_heads", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_hinet_tl(&p, seed))
        })
    });
    group.bench_function("remark1_stable_heads", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_remark1(&p, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_remark1);
criterion_main!(benches);
