//! The benchmark suite behind the `hinet-bench` binary (and the
//! `hinet bench` subcommand).
//!
//! Each suite regenerates one artifact of the paper's evaluation (see
//! DESIGN.md §4) on the in-tree [`hinet_rt::bench`] harness. The harness
//! measures the wall-clock of the regeneration; the artifact's *content*
//! (the cost numbers) is printed once per suite via
//! [`hinet_rt::bench::Bench::print_table`], so a bench run's output doubles
//! as the reproduction log captured in EXPERIMENTS.md. Timing results go to
//! `BENCH_<suite>.json` artifacts with `--json`, and `--baseline` gates a
//! run against a prior artifact (see [`cli`]).

pub mod cli;
pub mod suites;

use hinet_core::analysis::ModelParams;
use hinet_rt::bench::Bench;

/// One registered benchmark suite.
#[derive(Clone, Copy)]
pub struct Suite {
    /// Suite name — the `--filter` key and the `BENCH_<name>.json` stem.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// The suite body.
    pub run: fn(&mut Bench),
}

/// Every suite, in the order they are run without a filter.
pub fn suites() -> Vec<Suite> {
    vec![
        Suite {
            name: "table2_models",
            about: "Table 2 rows simulated end-to-end at the small parameter point",
            run: suites::table2_models::bench,
        },
        Suite {
            name: "table3_simulated",
            about: "Table 3 at the paper's exact parameters (n0 = 100), all four rows",
            run: suites::table3_simulated::bench,
        },
        Suite {
            name: "sweep_n",
            about: "E5 — cost vs network size n0 (Algorithm 1 vs KLO)",
            run: suites::sweep_n::bench,
        },
        Suite {
            name: "sweep_k",
            about: "E6 — cost vs token count k",
            run: suites::sweep_k::bench,
        },
        Suite {
            name: "sweep_alpha",
            about: "E7 — cost vs progress coefficient alpha",
            run: suites::sweep_alpha::bench,
        },
        Suite {
            name: "sweep_l",
            about: "E8 — cost vs hop bound L",
            run: suites::sweep_l::bench,
        },
        Suite {
            name: "sweep_churn",
            about: "E9 — cost vs re-affiliation churn n_r",
            run: suites::sweep_churn::bench,
        },
        Suite {
            name: "sweep_loss",
            about: "E17 — degradation under message loss (fault plane + ARQ)",
            run: suites::sweep_loss::bench,
        },
        Suite {
            name: "sweep_async",
            about: "E18 — lock-step vs event-mode wall-clock crossover (± loss)",
            run: suites::sweep_async::bench,
        },
        Suite {
            name: "sweep_chaos",
            about: "adversarial delivery plane — delay/dup/reorder rolls ± reliability layer",
            run: suites::sweep_chaos::bench,
        },
        Suite {
            name: "sweep_scale",
            about: "engine scale — packed bitsets at n=10^6, k=10^4 (HINET_SCALE_N/K shrink)",
            run: suites::sweep_scale::bench,
        },
        Suite {
            name: "sweep_verify",
            about: "batch vs streaming stability verification at growing horizons",
            run: suites::sweep_verify::bench,
        },
        Suite {
            name: "headline",
            about: "E10 — the headline reduction grid (analytic cost model)",
            run: suites::headline::bench,
        },
        Suite {
            name: "ablation_remark1",
            about: "E11 — Remark 1 (infinity-stable heads) vs plain Algorithm 1",
            run: suites::ablation_remark1::bench,
        },
        Suite {
            name: "emdg",
            about: "E12 — clusters over edge-Markovian dynamics",
            run: suites::emdg::bench,
        },
        Suite {
            name: "substrates",
            about: "graph/clustering/verifier micro-benchmarks",
            run: suites::substrates::bench,
        },
        Suite {
            name: "extensions",
            about: "E13-E15 extensions: d-hop, LCC, Manhattan, RLNC",
            run: suites::extensions::bench,
        },
    ]
}

/// The paper's Table 3 parameter point.
pub fn table3_params() -> ModelParams {
    ModelParams::table3()
}

/// A smaller parameter point for per-iteration simulation benches (keeps
/// sampling affordable while preserving the Table 3 ratios).
pub fn small_params() -> ModelParams {
    ModelParams {
        n0: 50,
        theta: 15,
        n_m: 20,
        n_r: 3,
        k: 8,
        alpha: 5,
        l: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_points_are_feasible() {
        for p in [table3_params(), small_params()] {
            assert!(p.theta <= p.n0);
            assert!(p.n_m < p.n0);
        }
    }

    #[test]
    fn suite_names_are_unique_and_file_safe() {
        let all = suites();
        let names: std::collections::BTreeSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), all.len());
        for s in &all {
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "'{}' is not a safe BENCH_<name>.json stem",
                s.name
            );
        }
    }

    /// The registry covers the twelve ported criterion targets (DESIGN.md
    /// §4's artifact list) plus the fault-plane degradation sweep, the
    /// engine scale gate, the event-runtime crossover sweep, the
    /// batch-vs-streaming verification sweep and the adversarial
    /// delivery-plane sweep.
    #[test]
    fn registry_has_every_suite() {
        assert_eq!(suites().len(), 17);
    }
}
