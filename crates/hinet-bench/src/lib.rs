//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one artifact of the paper's evaluation
//! (see DESIGN.md §4). Criterion measures the wall-clock of the
//! regeneration; the artifact's *content* (the cost numbers) is printed
//! once per target via [`print_once`] so `cargo bench` output doubles as
//! the reproduction log captured in EXPERIMENTS.md.

use hinet_core::analysis::ModelParams;
use std::sync::Once;

/// Print a reproduction artifact once per process (Criterion calls the
/// benched closure many times; the table only needs to appear once).
pub fn print_once(once: &Once, render: impl FnOnce() -> String) {
    once.call_once(|| {
        println!("\n{}", render());
    });
}

/// The paper's Table 3 parameter point.
pub fn table3_params() -> ModelParams {
    ModelParams::table3()
}

/// A smaller parameter point for per-iteration simulation benches (keeps
/// Criterion's sampling affordable while preserving the Table 3 ratios).
pub fn small_params() -> ModelParams {
    ModelParams {
        n0: 50,
        theta: 15,
        n_m: 20,
        n_r: 3,
        k: 8,
        alpha: 5,
        l: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_once_only_prints_once() {
        let once = Once::new();
        let mut calls = 0;
        for _ in 0..3 {
            print_once(&once, || {
                calls += 1;
                String::new()
            });
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn param_points_are_feasible() {
        for p in [table3_params(), small_params()] {
            assert!(p.theta <= p.n0);
            assert!(p.n_m < p.n0);
        }
    }
}
