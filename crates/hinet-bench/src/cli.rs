//! The `hinet-bench` command line: suite selection, JSON artifacts, and
//! the `--baseline` regression gate. The root `hinet bench` subcommand
//! forwards its arguments here, so both entry points share one flag
//! surface (parsed with [`hinet_rt::flags`]).

use crate::{suites, Suite};
use hinet_rt::bench::{compare, Bench, BenchConfig, Meta, SuiteReport};
use hinet_rt::flags::{flag, parse_flags, render_help, FlagSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// The bench flag surface (shared by `hinet-bench` and `hinet bench`).
pub const BENCH_FLAGS: &[FlagSpec] = &[
    flag("filter", true, "run only suites whose name contains SUBSTR"),
    flag("list", false, "list suites and exit"),
    flag("json", false, "write a BENCH_<suite>.json per suite"),
    flag("out-dir", true, "directory for JSON artifacts [.]"),
    flag(
        "baseline",
        true,
        "gate against a prior BENCH_*.json (exit 1 on regression)",
    ),
    flag("max-regress", true, "regression threshold in percent [10]"),
    flag("sample-size", true, "override per-benchmark sample count"),
    flag("budget-ms", true, "wall-clock budget per benchmark [2000]"),
    flag("seed", true, "seed recorded in artifact metadata [0]"),
    flag(
        "trace",
        true,
        "after the suites, write a traced alg1 (T, L)-HiNet reference run (hinet-trace/v1 JSONL) to FILE",
    ),
    flag("help", false, "print this help"),
];

/// Bench invocation options (the parsed flag surface).
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Substring filter on suite names (`None` runs everything).
    pub filter: Option<String>,
    /// List suites instead of running.
    pub list: bool,
    /// Write `BENCH_<suite>.json` artifacts.
    pub json: bool,
    /// Artifact directory (created on demand).
    pub out_dir: PathBuf,
    /// Baseline artifact to gate against.
    pub baseline: Option<PathBuf>,
    /// Regression threshold, percent over the baseline median.
    pub max_regress: f64,
    /// Per-benchmark sample-count override.
    pub sample_size: Option<usize>,
    /// Per-benchmark wall-clock budget.
    pub budget: Duration,
    /// Seed recorded in artifact metadata.
    pub seed: u64,
    /// Write a traced reference run (`hinet-trace/v1` JSONL) to this path
    /// after the suites complete, so a perf investigation has a per-round
    /// event stream of the workload the timings describe.
    pub trace: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            filter: None,
            list: false,
            json: false,
            out_dir: PathBuf::from("."),
            baseline: None,
            max_regress: 10.0,
            sample_size: None,
            budget: Duration::from_millis(2000),
            seed: 0,
            trace: None,
        }
    }
}

fn usage() -> String {
    format!(
        "hinet-bench — offline benchmark harness for the HiNet reproduction\n\n\
         USAGE:\n  hinet-bench [FLAGS]          (or: hinet bench [FLAGS])\n\n\
         FLAGS:\n{}",
        render_help(BENCH_FLAGS)
    )
}

/// Parse `args` and run. This is both the binary's `main` body and the
/// implementation of the `hinet bench` subcommand.
pub fn run_from_args(args: &[String]) -> ExitCode {
    let (positional, flags) = match parse_flags(BENCH_FLAGS, args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if flags.has("help") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if let Some(extra) = positional.first() {
        eprintln!("unexpected argument '{extra}' (did you mean --filter {extra}?)");
        return ExitCode::from(2);
    }
    let parse = || -> Result<BenchOptions, String> {
        Ok(BenchOptions {
            filter: flags.get("filter").map(str::to_string),
            list: flags.has("list"),
            json: flags.has("json"),
            out_dir: PathBuf::from(flags.get("out-dir").unwrap_or(".")),
            baseline: flags.get("baseline").map(PathBuf::from),
            max_regress: flags.parsed("max-regress", 10.0)?,
            sample_size: match flags.get("sample-size") {
                Some(_) => Some(flags.parsed("sample-size", 0usize)?),
                None => None,
            },
            budget: Duration::from_millis(flags.parsed("budget-ms", 2000u64)?),
            seed: flags.parsed("seed", 0u64)?,
            trace: flags.get("trace").map(PathBuf::from),
        })
    };
    match parse() {
        Ok(opts) => run(&opts),
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Select the suites matching `filter` (substring on the name).
fn select(filter: Option<&str>) -> Vec<Suite> {
    suites()
        .into_iter()
        .filter(|s| filter.is_none_or(|f| s.name.contains(f)))
        .collect()
}

/// Run the selected suites; write artifacts and apply the baseline gate.
pub fn run(opts: &BenchOptions) -> ExitCode {
    if opts.list {
        for s in suites() {
            println!("{:<18} {}", s.name, s.about);
        }
        return ExitCode::SUCCESS;
    }

    let selected = select(opts.filter.as_deref());
    if selected.is_empty() {
        eprintln!(
            "no suite matches '{}'; available suites:",
            opts.filter.as_deref().unwrap_or("")
        );
        for s in suites() {
            eprintln!("  {}", s.name);
        }
        return ExitCode::from(2);
    }

    let baseline = match &opts.baseline {
        None => None,
        Some(path) => {
            let parsed = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))
                .and_then(|text| {
                    SuiteReport::from_json(&text)
                        .map_err(|e| format!("malformed baseline {}: {e}", path.display()))
                });
            match parsed {
                Ok(report) => Some(report),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    if let Some(base) = &baseline {
        if !selected.iter().any(|s| s.name == base.suite) {
            eprintln!(
                "baseline is for suite '{}', which is not selected by this run",
                base.suite
            );
            return ExitCode::from(2);
        }
    }

    let mut regressed = false;
    for suite in &selected {
        println!("== {} ==", suite.name);
        let mut bench = Bench::new(BenchConfig {
            sample_size_override: opts.sample_size,
            budget: opts.budget,
            quiet: false,
        });
        (suite.run)(&mut bench);
        let report = SuiteReport {
            suite: suite.name.to_string(),
            meta: Meta::capture(opts.seed),
            benchmarks: bench.take_results(),
        };

        if opts.json {
            let path = opts.out_dir.join(report.file_name());
            let write = std::fs::create_dir_all(&opts.out_dir)
                .and_then(|()| std::fs::write(&path, report.to_json()));
            match write {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::from(1);
                }
            }
        }

        if let Some(base) = baseline.as_ref().filter(|b| b.suite == report.suite) {
            let cmp = compare(base, &report, opts.max_regress);
            println!(
                "baseline {}: {} benchmarks compared, {} regression(s) past {:.1}%",
                base.meta.commit,
                cmp.compared,
                cmp.regressions.len(),
                opts.max_regress,
            );
            for miss in &cmp.missing {
                println!("  (no counterpart for {miss})");
            }
            for r in &cmp.regressions {
                println!(
                    "  REGRESSION {}: median {} -> {} (+{:.1}%)",
                    r.id,
                    hinet_rt::bench::fmt_ns(r.baseline_ns),
                    hinet_rt::bench::fmt_ns(r.current_ns),
                    r.change_pct,
                );
            }
            regressed |= !cmp.regressions.is_empty();
        }
    }

    if regressed {
        eprintln!("benchmark regression gate failed");
        return ExitCode::from(1);
    }

    if let Some(path) = &opts.trace {
        match write_reference_trace(path, opts.seed) {
            Ok(events) => println!("trace: wrote {} ({events} events)", path.display()),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Capture one traced Algorithm 1 run on a (T, L)-HiNet — the workload the
/// `headline` timings describe — and write the `hinet-trace/v1` artifact.
fn write_reference_trace(path: &std::path::Path, seed: u64) -> Result<usize, String> {
    use hinet_cluster::generators::{HiNetConfig, HiNetGen};
    use hinet_core::params::alg1_plan;
    use hinet_core::runner::{run_algorithm, AlgorithmKind};
    use hinet_rt::obs::{ObsConfig, Tracer};
    use hinet_sim::engine::RunConfig;
    use hinet_sim::token::round_robin_assignment;

    let (n, k, alpha, l, theta) = (60, 8, 5, 2, 20);
    let plan = alg1_plan(k, alpha, l, theta);
    let mut provider = HiNetGen::new(HiNetConfig {
        n,
        num_heads: theta / 2,
        theta,
        l,
        t: plan.rounds_per_phase,
        reaffil_prob: 0.1,
        rotate_heads: true,
        noise_edges: n / 5,
        seed,
    });
    let mut tracer = Tracer::new(ObsConfig::full());
    tracer.meta("source", "hinet bench --trace reference run");
    tracer.meta("n", n.to_string());
    tracer.meta("k", k.to_string());
    tracer.meta("seed", seed.to_string());
    let assignment = round_robin_assignment(n, k);
    run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        RunConfig::new().max_rounds(4 * n).tracer(&mut tracer),
    );
    if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, tracer.to_jsonl())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(tracer.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_selects_by_substring() {
        assert_eq!(select(Some("sweep_n")).len(), 1);
        assert_eq!(select(Some("sweep")).len(), 10);
        assert_eq!(select(Some("nope")).len(), 0);
        assert_eq!(select(None).len(), suites().len());
    }

    #[test]
    fn args_round_trip_into_options() {
        let args: Vec<String> = [
            "--filter",
            "sweep_n",
            "--json",
            "--out-dir",
            "target/bench",
            "--max-regress",
            "25",
            "--sample-size",
            "7",
            "--budget-ms",
            "100",
            "--seed",
            "9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (pos, flags) = parse_flags(BENCH_FLAGS, &args).unwrap();
        assert!(pos.is_empty());
        assert_eq!(flags.get("filter"), Some("sweep_n"));
        assert!(flags.has("json"));
        assert_eq!(flags.parsed("max-regress", 10.0).unwrap(), 25.0);
        assert_eq!(flags.parsed("sample-size", 0usize).unwrap(), 7);
        assert_eq!(flags.parsed("budget-ms", 2000u64).unwrap(), 100);
        assert_eq!(flags.parsed("seed", 0u64).unwrap(), 9);
    }

    #[test]
    fn unknown_bench_flag_is_rejected() {
        let args = vec!["--warmup".to_string()];
        assert!(parse_flags(BENCH_FLAGS, &args)
            .unwrap_err()
            .contains("unknown flag"));
    }
}
