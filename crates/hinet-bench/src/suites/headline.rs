//! Bench: E10 — the headline reduction grid (analytic). The grid is cheap;
//! the benchmark tracks the cost-model evaluation itself, and the grid
//! table prints once.

use hinet_analysis::experiments::e10_headline;
use hinet_core::analysis::{self, ModelParams};
use hinet_rt::bench::Bench;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("headline", || e10_headline().to_text());
    let mut group = c.benchmark_group("headline");
    group.bench_function("cost_model_grid_16cells", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n0 in [50u64, 100, 200, 400] {
                for k in [2u64, 8, 32, 128] {
                    let p = ModelParams {
                        n0,
                        theta: (3 * n0 / 10).max(2),
                        n_m: 4 * n0 / 10,
                        n_r: 3,
                        k,
                        alpha: 5,
                        l: 2,
                    };
                    acc = acc
                        .wrapping_add(analysis::hinet_tl_comm(&p))
                        .wrapping_add(analysis::klo_t_interval_comm(&p));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("e10_full_experiment", |b| {
        b.iter(|| black_box(e10_headline()))
    });
    group.finish();
}
