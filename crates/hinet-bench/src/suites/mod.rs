//! The seventeen benchmark suites, one module per retired criterion target.
//! Register new suites in [`crate::suites()`].

pub mod ablation_remark1;
pub mod emdg;
pub mod extensions;
pub mod headline;
pub mod substrates;
pub mod sweep_alpha;
pub mod sweep_async;
pub mod sweep_chaos;
pub mod sweep_churn;
pub mod sweep_k;
pub mod sweep_l;
pub mod sweep_loss;
pub mod sweep_n;
pub mod sweep_scale;
pub mod sweep_verify;
pub mod table2_models;
pub mod table3_simulated;
