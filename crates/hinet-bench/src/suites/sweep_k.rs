//! Bench: E6 — cost vs token count k. Simulates the (T, L) scenario pair
//! per grid point; the sweep table prints once.

use crate::small_params;
use hinet_analysis::experiments::e6_sweep_k;
use hinet_analysis::scenarios;
use hinet_core::analysis::ModelParams;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_k", || e6_sweep_k().to_text());
    let base = small_params();
    let mut group = c.benchmark_group("sweep_k");
    group.sample_size(10);
    for k in [2u64, 8, 32] {
        let p = ModelParams { k, ..base };
        group.bench_with_input(BenchmarkId::new("alg1_vs_klo", k), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_tl(p, seed),
                    scenarios::run_klo_t_interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}
