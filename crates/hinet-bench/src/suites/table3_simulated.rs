//! Bench: Table 3 at the paper's exact parameters (n₀ = 100), all four
//! rows simulated per iteration; the measured-vs-analytic table (E3) is
//! printed once.

use crate::table3_params;
use hinet_analysis::experiments::{e2_table3, e3_simulated_table3};
use hinet_analysis::scenarios;
use hinet_rt::bench::Bench;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("table3_simulated", || {
        format!(
            "{}\n{}",
            e2_table3().to_text(),
            e3_simulated_table3().to_text()
        )
    });
    let p = table3_params();
    let p_1l = p.with_n_r(10);

    let mut group = c.benchmark_group("table3_simulated");
    group.sample_size(10);
    group.bench_function("all_four_rows_n100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_all_rows(&p, &p_1l, seed))
        })
    });
    group.finish();
}
