//! Bench: E5 — cost vs network size n₀. One parameterised benchmark per
//! grid point (Algorithm 1 vs KLO at that size); the sweep table prints
//! once.

use hinet_analysis::experiments::{e5_sweep_n, params_for_n};
use hinet_analysis::scenarios;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_n", || e5_sweep_n().to_text());
    let mut group = c.benchmark_group("sweep_n");
    group.sample_size(10);
    for n in [40u64, 80, 120] {
        let p = params_for_n(n);
        group.bench_with_input(BenchmarkId::new("alg1_vs_klo", n), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_tl(p, seed),
                    scenarios::run_klo_t_interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}
