//! Bench: batch window recompute vs one-pass streaming verification at
//! growing horizon lengths. The batch side materialises the full
//! `CtvgTrace` and re-derives every aligned window from scratch
//! (`trace_stability_windows`); the streaming side feeds the same
//! provider one round at a time through a `StabilityStream`. The
//! `--baseline` gate tracks the crossover as horizons grow.

use crate::small_params;
use hinet_analysis::scenarios::heads_for_members;
use hinet_cluster::ctvg::{CtvgTrace, HierarchyProvider};
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_cluster::stability::stream::StabilityStream;
use hinet_cluster::stability::trace_stability_windows;
use hinet_graph::TopologyProvider;
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_rt::obs::Tracer;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    let p = small_params();
    let n = p.n0 as usize;
    let (t, l) = (6usize, p.l as usize);
    let gen = || {
        HiNetGen::new(HiNetConfig {
            n,
            num_heads: heads_for_members(&p),
            theta: p.theta as usize,
            l,
            t,
            reaffil_prob: 0.1,
            rotate_heads: true,
            noise_edges: n / 5,
            seed: 7,
        })
    };
    let mut group = c.benchmark_group("sweep_verify");
    group.sample_size(10);
    for &rounds in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("batch", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let mut provider = gen();
                let trace = CtvgTrace::capture(&mut provider, rounds);
                let mut tracer = Tracer::disabled();
                black_box(trace_stability_windows(&trace, t, l, &mut tracer))
            })
        });
        group.bench_with_input(BenchmarkId::new("stream", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let mut provider = gen();
                let mut stream = StabilityStream::new(t, l);
                for round in 0..rounds {
                    let g = provider.graph_at(round);
                    let h = provider.hierarchy_at(round);
                    black_box(stream.push(&g, &h));
                }
                black_box(stream.finish().1)
            })
        });
    }
    group.finish();
}
