//! Bench: E17 — degradation under seeded message loss; times the faulted
//! engine path (loss checks + ARQ retransmission) against the clean one,
//! and prints the degradation table once.

use crate::small_params;
use hinet_analysis::experiments::e17_loss_resilience;
use hinet_analysis::scenarios::{self, heads_for_members};
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_sim::engine::RunConfig;
use hinet_sim::fault::FaultPlan;
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_loss", || e17_loss_resilience().to_text());
    let p = small_params();
    let n = p.n0 as usize;
    let budget = 3 * n;
    let mut group = c.benchmark_group("sweep_loss");
    group.sample_size(10);
    // 0 ppm exercises the trivial-plan fast path (the `--baseline` gate's
    // evidence that the fault plane costs nothing when disabled); the lossy
    // points pay for per-delivery checks plus the retransmissions they cause.
    for loss_ppm in [0u32, 50_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("alg2_retransmit", loss_ppm),
            &loss_ppm,
            |b, &ppm| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut provider = HiNetGen::new(HiNetConfig {
                        n,
                        num_heads: heads_for_members(&p),
                        theta: p.theta as usize,
                        l: p.l as usize,
                        t: 1,
                        reaffil_prob: 0.1,
                        rotate_heads: true,
                        noise_edges: n / 5,
                        seed,
                    });
                    let assignment = round_robin_assignment(n, p.k as usize);
                    let faults = FaultPlan::new(seed).with_loss_ppm(ppm);
                    black_box(run_algorithm(
                        &AlgorithmKind::HiNetFullExchange { rounds: budget },
                        &mut provider,
                        &assignment,
                        RunConfig::new().faults(faults).retransmit(ppm > 0),
                    ))
                })
            },
        );
    }
    // The clean reference scenario, for eyeballing the 0-ppm overhead.
    group.bench_with_input(BenchmarkId::new("alg2_clean", 0u32), &p, |b, p| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_hinet_1l(p, seed))
        })
    });
    group.finish();
}
