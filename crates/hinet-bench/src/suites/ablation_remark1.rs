//! Bench: E11 — Remark 1 (∞-stable heads) vs plain Algorithm 1; the
//! ablation table prints once.

use crate::small_params;
use hinet_analysis::experiments::e11_remark1_ablation;
use hinet_analysis::scenarios;
use hinet_rt::bench::Bench;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("ablation_remark1", || e11_remark1_ablation().to_text());
    let p = small_params();
    let mut group = c.benchmark_group("ablation_remark1");
    group.sample_size(15);
    group.bench_function("alg1_rotating_heads", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_hinet_tl(&p, seed))
        })
    });
    group.bench_function("remark1_stable_heads", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_remark1(&p, seed))
        })
    });
    group.finish();
}
