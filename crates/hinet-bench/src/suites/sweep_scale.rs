//! Bench: engine scale — packed token bitsets and SoA arenas at the
//! ROADMAP's headline point (n = 10^6 nodes, k = 10^4 tokens).
//!
//! The workloads are the two protocols whose asymptotic separation the
//! paper proves: Algorithm 2 on a single star cluster (only the head
//! broadcasts the full set) and KLO full flooding on the same star with
//! the all-heads flat hierarchy. Both must complete in seconds at the
//! headline point — word-packed [`hinet_sim::token::TokenSet`] unions and
//! `Arc`-shared broadcast payloads are what make that possible; the
//! `--baseline` gate on `BENCH_sweep_scale.json` keeps it true.
//!
//! CI smoke runs shrink the point via `HINET_SCALE_N` / `HINET_SCALE_K`
//! (see `ci.sh`); the benchmark ids carry the effective `n` so artifacts
//! from different scales never gate against each other.

use hinet_cluster::ctvg::{CtvgTrace, CtvgTraceProvider, FlatProvider};
use hinet_cluster::hierarchy::single_cluster;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::graph::{Graph, NodeId};
use hinet_graph::trace::{StaticProvider, TvgTrace};
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_sim::engine::{RunConfig, RunReport};
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Round budget: both protocols finish a star in 2–3 rounds; the slack
/// only matters if a regression breaks completion, which the report check
/// in [`scale_table`] then surfaces.
const BUDGET: usize = 16;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// The headline scale point, shrinkable for CI smoke runs.
fn scale_point() -> (usize, usize) {
    (
        env_usize("HINET_SCALE_N", 1_000_000),
        env_usize("HINET_SCALE_K", 10_000),
    )
}

/// Algorithm 2 on one star-shaped cluster: node 0 is the head, everyone
/// else a member one hop away — the (1, L)-HiNet with the thinnest
/// possible backbone, so the run cost is dominated by the head's full-set
/// broadcast and the members' packed unions.
fn run_alg2_star(n: usize, k: usize) -> RunReport {
    let trace = CtvgTrace::new(
        TvgTrace::new(vec![Arc::new(Graph::star(n))]),
        vec![Arc::new(single_cluster(n, NodeId(0)))],
    );
    let mut provider = CtvgTraceProvider::new(trace);
    let assignment = round_robin_assignment(n, k);
    run_algorithm(
        &AlgorithmKind::HiNetFullExchange { rounds: BUDGET },
        &mut provider,
        &assignment,
        RunConfig::new().max_rounds(BUDGET),
    )
}

/// KLO full flooding on the same star with the flat all-heads hierarchy:
/// every informed node rebroadcasts its whole set every round, the
/// redundancy-heavy baseline the packed representation must also carry.
fn run_klo_flood_star(n: usize, k: usize) -> RunReport {
    let mut provider = FlatProvider::new(StaticProvider::new(Graph::star(n)));
    let assignment = round_robin_assignment(n, k);
    run_algorithm(
        &AlgorithmKind::KloFlood { rounds: BUDGET },
        &mut provider,
        &assignment,
        RunConfig::new().max_rounds(BUDGET),
    )
}

/// One-shot demonstration table: wall time, rounds and traffic for each
/// protocol at the effective scale point, with a loud marker if either
/// fails to complete.
fn scale_table(n: usize, k: usize) -> String {
    let mut out = format!("Engine scale point (n={n}, k={k}, star topology)\n");
    for (label, run) in [
        (
            "alg2 single-cluster",
            run_alg2_star as fn(usize, usize) -> RunReport,
        ),
        ("klo-flood flat", run_klo_flood_star),
    ] {
        let t0 = Instant::now();
        let report = run(n, k);
        let secs = t0.elapsed().as_secs_f64();
        out.push_str(&format!(
            "  {label:<22} {} in {:.2} s — {} rounds, {} tokens, {} packets\n",
            report.outcome,
            secs,
            report.rounds_executed,
            report.metrics.tokens_sent,
            report.metrics.packets_sent,
        ));
    }
    out
}

pub fn bench(c: &mut Bench) {
    let (n, k) = scale_point();
    c.print_table("sweep_scale", || scale_table(n, k));
    let mut group = c.benchmark_group("sweep_scale");
    group.sample_size(5);
    group.bench_with_input(BenchmarkId::new("alg2_star", n), &(n, k), |b, &(n, k)| {
        b.iter(|| black_box(run_alg2_star(n, k)))
    });
    group.bench_with_input(
        BenchmarkId::new("klo_flood_star", n),
        &(n, k),
        |b, &(n, k)| b.iter(|| black_box(run_klo_flood_star(n, k))),
    );
    group.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced point of the same shape as the headline run: both
    /// protocols must complete on the star within the round budget.
    #[test]
    fn both_protocols_complete_on_the_star() {
        for (n, k) in [(512, 64), (2_000, 100)] {
            let alg2 = run_alg2_star(n, k);
            assert!(alg2.completed(), "alg2 n={n} k={k}: {}", alg2.outcome);
            let flood = run_klo_flood_star(n, k);
            assert!(flood.completed(), "flood n={n} k={k}: {}", flood.outcome);
            // The backbone saves traffic even on a star: only the head
            // repeats the full set, members push once.
            assert!(
                alg2.metrics.tokens_sent < flood.metrics.tokens_sent,
                "n={n} k={k}: alg2 {} !< flood {}",
                alg2.metrics.tokens_sent,
                flood.metrics.tokens_sent
            );
        }
    }

    #[test]
    fn star_runs_finish_in_a_handful_of_rounds() {
        let report = run_alg2_star(1_000, 50);
        assert!(report.completion_round.unwrap() <= 3);
        let report = run_klo_flood_star(1_000, 50);
        assert!(report.completion_round.unwrap() <= 3);
    }
}
