//! Bench: substrate micro-benchmarks — the building blocks every
//! experiment leans on (graph construction, BFS, window intersection,
//! clustering, hierarchy generation, stability verification).

use hinet_cluster::clustering::{cluster, ClusteringKind};
use hinet_cluster::ctvg::CtvgTrace;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_cluster::stability::is_t_l_hinet;
use hinet_graph::generators::{BackboneKind, TIntervalGen};
use hinet_graph::graph::{Graph, NodeId};
use hinet_graph::trace::{TopologyProvider, TvgTrace};
use hinet_graph::CsrGraph;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

fn random_graph(n: usize, avg_degree: usize, seed: u64) -> Graph {
    let mut gen = TIntervalGen::new(n, 1, BackboneKind::Tree, n * avg_degree / 2, seed);
    let g = gen.graph_at(0);
    (*g).clone()
}

fn bench_graph_ops(c: &mut Bench) {
    let mut group = c.benchmark_group("substrate_graph");
    for &n in &[100usize, 400] {
        let g = random_graph(n, 8, 1);
        group.bench_with_input(BenchmarkId::new("csr_convert", n), &g, |b, g| {
            b.iter(|| black_box(CsrGraph::from(g)))
        });
        let csr = CsrGraph::from(&g);
        group.bench_with_input(BenchmarkId::new("bfs_full", n), &csr, |b, csr| {
            let mut dist = vec![u32::MAX; csr.n()];
            let mut queue = Vec::new();
            b.iter(|| {
                csr.bfs_into(NodeId(0), &mut dist, &mut queue);
                black_box(dist[csr.n() - 1])
            })
        });
        let g2 = random_graph(n, 8, 2);
        group.bench_with_input(
            BenchmarkId::new("intersect", n),
            &(g.clone(), g2),
            |b, (a, c)| b.iter(|| black_box(a.intersect(c))),
        );
    }
    group.finish();
}

fn bench_clustering(c: &mut Bench) {
    let mut group = c.benchmark_group("substrate_clustering");
    let g = random_graph(300, 10, 3);
    for kind in [
        ClusteringKind::LowestId,
        ClusteringKind::HighestDegree,
        ClusteringKind::GreedyDominating,
    ] {
        group.bench_with_input(
            BenchmarkId::new("cluster_n300", format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| black_box(cluster(kind, &g))),
        );
    }
    group.finish();
}

fn bench_generators_and_verifiers(c: &mut Bench) {
    let mut group = c.benchmark_group("substrate_hinet");
    let cfg = HiNetConfig {
        n: 200,
        num_heads: 20,
        theta: 50,
        l: 2,
        t: 10,
        reaffil_prob: 0.2,
        rotate_heads: true,
        noise_edges: 40,
        seed: 5,
    };
    group.bench_function("hinet_gen_30_rounds_n200", |b| {
        b.iter(|| {
            let mut gen = HiNetGen::new(cfg);
            black_box(CtvgTrace::capture(&mut gen, 30))
        })
    });
    let mut gen = HiNetGen::new(cfg);
    let trace = CtvgTrace::capture(&mut gen, 30);
    group.bench_function("verify_t_l_hinet_n200", |b| {
        b.iter(|| black_box(is_t_l_hinet(&trace, 10, 2)))
    });
    group.bench_function("window_intersection_n200", |b| {
        let topo: &TvgTrace = trace.topology();
        b.iter(|| black_box(topo.window_intersection(0, 10)))
    });
    group.finish();
}

/// Run every group in this suite.
pub fn bench(c: &mut Bench) {
    bench_graph_ops(c);
    bench_clustering(c);
    bench_generators_and_verifiers(c);
}
