//! Bench: extension substrates and experiments — d-hop clustering, LCC
//! maintenance, Manhattan mobility, RLNC network coding, and the E13–E15
//! experiment regenerations (tables printed once).

use hinet_analysis::experiments::{e13_quiescence_trap, e14_multihop_clusters, e15_network_coding};
use hinet_cluster::clustering::{dhop_lowest_id, GatewayPolicy, LccMaintainer};
use hinet_core::netcode::run_rlnc;
use hinet_graph::generators::{
    BackboneKind, ManhattanConfig, ManhattanGen, OneIntervalGen, TIntervalGen,
};
use hinet_graph::trace::TopologyProvider;
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_sim::engine::RunConfig;
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;

fn bench_extension_experiments(c: &mut Bench) {
    c.print_table("extensions", || {
        format!(
            "{}\n{}\n{}",
            e13_quiescence_trap().to_text(),
            e14_multihop_clusters().to_text(),
            e15_network_coding().to_text()
        )
    });
    let mut group = c.benchmark_group("extension_experiments");
    group.sample_size(10);
    group.bench_function("e13_quiescence_trap", |b| {
        b.iter(|| black_box(e13_quiescence_trap()))
    });
    group.finish();
}

fn bench_dhop_and_lcc(c: &mut Bench) {
    let mut group = c.benchmark_group("extension_clustering");
    let mut gen = TIntervalGen::new(300, 1, BackboneKind::Tree, 900, 4);
    let g = gen.graph_at(0);
    for d in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("dhop_n300", d), &d, |b, &d| {
            b.iter(|| black_box(dhop_lowest_id(&g, d, GatewayPolicy::MinimalPairwise)))
        });
    }
    group.bench_function("lcc_30_steps_n150", |b| {
        b.iter(|| {
            let mut gen = OneIntervalGen::new(150, false, 60, 7);
            let mut m = LccMaintainer::new(GatewayPolicy::MinimalPairwise);
            let mut acc = 0usize;
            for r in 0..30 {
                let g = gen.graph_at(r);
                acc += m.step(&g).heads().len();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_manhattan_and_rlnc(c: &mut Bench) {
    let mut group = c.benchmark_group("extension_substrates");
    group.sample_size(15);
    group.bench_function("manhattan_40_rounds_n100", |b| {
        b.iter(|| {
            let mut gen = ManhattanGen::new(100, ManhattanConfig::default(), 3);
            black_box(gen.graph_at(39))
        })
    });
    group.bench_function("rlnc_n40_k8_churn", |b| {
        let assignment = round_robin_assignment(40, 8);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut gen = OneIntervalGen::new(40, true, 8, seed);
            black_box(run_rlnc(
                &mut gen,
                &assignment,
                seed,
                RunConfig::new().max_rounds(200),
            ))
        })
    });
    group.finish();
}

/// Run every group in this suite.
pub fn bench(c: &mut Bench) {
    bench_extension_experiments(c);
    bench_dhop_and_lcc(c);
    bench_manhattan_and_rlnc(c);
}
