//! Bench: E8 — cost vs hop bound L of cluster-head connectivity; the
//! sweep table prints once.

use crate::small_params;
use hinet_analysis::experiments::e8_sweep_l;
use hinet_analysis::scenarios;
use hinet_core::analysis::ModelParams;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_l", || e8_sweep_l().to_text());
    let base = small_params();
    let mut group = c.benchmark_group("sweep_l");
    group.sample_size(10);
    for l in [1u64, 2, 3] {
        let p = ModelParams { l, ..base };
        group.bench_with_input(BenchmarkId::new("alg1_vs_klo", l), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_tl(p, seed),
                    scenarios::run_klo_t_interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}
