//! Bench: Table 2 — one benchmark per algorithm × dynamics-model row.
//!
//! Each row's scenario (generator + algorithm at the paper's plan) is
//! simulated end-to-end per iteration at the small parameter point; the
//! analytic Table 2 itself is printed once.

use crate::small_params;
use hinet_analysis::experiments::e1_table2;
use hinet_analysis::scenarios;
use hinet_rt::bench::Bench;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("table2_models", || e1_table2().to_text());
    let p = small_params();
    let p_1l = p.with_n_r(6);

    let mut group = c.benchmark_group("table2");
    group.sample_size(20);
    group.bench_function("row1_klo_t_interval", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_klo_t_interval(&p, seed))
        })
    });
    group.bench_function("row2_alg1_hinet_tl", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_hinet_tl(&p, seed))
        })
    });
    group.bench_function("row3_klo_1interval_flood", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_klo_1interval(&p_1l, seed))
        })
    });
    group.bench_function("row4_alg2_hinet_1l", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenarios::run_hinet_1l(&p_1l, seed))
        })
    });
    group.finish();
}
