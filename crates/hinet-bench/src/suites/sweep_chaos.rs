//! Bench: the adversarial delivery plane — per-delivery delay/duplication
//! hash rolls, inbox reordering, and the ack/timeout/backoff reliability
//! layer recovering through them — against the trivial-plan fast path the
//! `--baseline` gate protects (a clean run must not pay for the machinery).

use crate::small_params;
use hinet_analysis::scenarios::heads_for_members;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_sim::engine::{ExecMode, RunConfig};
use hinet_sim::fault::FaultPlan;
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    let p = small_params();
    let n = p.n0 as usize;
    let budget = 3 * n;
    let mut group = c.benchmark_group("sweep_chaos");
    group.sample_size(10);
    // Each point is (label, plan builder, reliability layer, mode). The
    // clean point is the zero-pathology reference; "chaos" pays the
    // delay/dup/reorder rolls alone; the reliable points add loss so the
    // recovery path (acks on markers, timer retransmits, backoff) runs in
    // earnest in both execution modes.
    type PlanFn = fn(u64) -> FaultPlan;
    let clean: PlanFn = FaultPlan::new;
    let chaos: PlanFn = |seed| {
        FaultPlan::new(seed)
            .with_delay_ppm(30_000)
            .with_max_delay(3)
            .with_dup_ppm(20_000)
            .with_reorder(true)
    };
    let chaos_lossy: PlanFn = |seed| {
        FaultPlan::new(seed)
            .with_loss_ppm(50_000)
            .with_delay_ppm(30_000)
            .with_max_delay(3)
            .with_dup_ppm(20_000)
            .with_reorder(true)
    };
    let points: &[(&str, PlanFn, bool, ExecMode)] = &[
        ("alg2_clean", clean, false, ExecMode::Lockstep),
        ("alg2_chaos", chaos, false, ExecMode::Lockstep),
        ("alg2_chaos_reliable", chaos_lossy, true, ExecMode::Lockstep),
        (
            "alg2_chaos_reliable_event",
            chaos_lossy,
            true,
            ExecMode::Event,
        ),
    ];
    for (label, plan, reliable, mode) in points {
        group.bench_with_input(BenchmarkId::new(*label, n), plan, |b, plan| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut provider = HiNetGen::new(HiNetConfig {
                    n,
                    num_heads: heads_for_members(&p),
                    theta: p.theta as usize,
                    l: p.l as usize,
                    t: 1,
                    reaffil_prob: 0.1,
                    rotate_heads: true,
                    noise_edges: n / 5,
                    seed,
                });
                let assignment = round_robin_assignment(n, p.k as usize);
                black_box(run_algorithm(
                    &AlgorithmKind::HiNetFullExchange { rounds: budget },
                    &mut provider,
                    &assignment,
                    RunConfig::new()
                        .faults(plan(seed))
                        .reliable(*reliable)
                        .mode(*mode),
                ))
            })
        });
    }
    group.finish();
}
