//! Bench: E9 — cost vs re-affiliation churn n_r, the axis along which the
//! hierarchy's advantage erodes; the sweep table (with the analytic
//! crossover note) prints once.

use crate::small_params;
use hinet_analysis::experiments::e9_sweep_churn;
use hinet_analysis::scenarios;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_churn", || e9_sweep_churn().to_text());
    let base = small_params();
    let mut group = c.benchmark_group("sweep_churn");
    group.sample_size(10);
    for n_r in [0u64, 4, 16] {
        let p = base.with_n_r(n_r);
        group.bench_with_input(BenchmarkId::new("alg2_vs_flood", n_r), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_1l(p, seed),
                    scenarios::run_klo_1interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}
