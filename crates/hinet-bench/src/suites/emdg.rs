//! Bench: E12 — clusters over edge-Markovian dynamics (the paper's
//! future-work direction); the comparison table prints once.

use hinet_analysis::experiments::e12_emdg_clusters;
use hinet_cluster::clustering::ClusteringKind;
use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::ClusteredMobilityGen;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::EdgeMarkovianGen;
use hinet_rt::bench::Bench;
use hinet_sim::engine::RunConfig;
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("emdg", || e12_emdg_clusters().to_text());
    let n = 40;
    let k = 6;
    let assignment = round_robin_assignment(n, k);

    let mut group = c.benchmark_group("emdg");
    group.sample_size(10);
    group.bench_function("alg2_over_lowest_id_clusters", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let emdg = EdgeMarkovianGen::new(n, 0.03, 0.25, 0.08, true, seed);
            let mut provider = ClusteredMobilityGen::new(emdg, ClusteringKind::LowestId, true);
            black_box(run_algorithm(
                &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
                &mut provider,
                &assignment,
                RunConfig::new(),
            ))
        })
    });
    group.bench_function("klo_flood_flat", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let emdg = EdgeMarkovianGen::new(n, 0.03, 0.25, 0.08, true, seed);
            let mut provider = FlatProvider::new(emdg);
            black_box(run_algorithm(
                &AlgorithmKind::KloFlood { rounds: n - 1 },
                &mut provider,
                &assignment,
                RunConfig::new(),
            ))
        })
    });
    group.finish();
}
