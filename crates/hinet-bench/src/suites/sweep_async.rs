//! Bench: lock-step vs event-mode wall-clock (E18) — the same seeded
//! scenarios through both execution modes, so the `--baseline` gate tracks
//! the mailbox runtime's crossover against the round-barrier engine. The
//! event points also exercise the transport/reassembly plane end to end.

use crate::small_params;
use hinet_analysis::scenarios::heads_for_members;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_rt::bench::{Bench, BenchmarkId};
use hinet_sim::engine::{ExecMode, RunConfig};
use hinet_sim::fault::FaultPlan;
use hinet_sim::token::round_robin_assignment;
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    let p = small_params();
    let n = p.n0 as usize;
    let budget = 3 * n;
    let mut group = c.benchmark_group("sweep_async");
    group.sample_size(10);
    // Alg 2 and the KLO flood baseline, each in both modes; loss_ppm > 0
    // adds the fault-interception cost at the transport boundary.
    let points: &[(&str, AlgorithmKind, u32)] = &[
        (
            "alg2",
            AlgorithmKind::HiNetFullExchange { rounds: budget },
            0,
        ),
        (
            "alg2_loss",
            AlgorithmKind::HiNetFullExchange { rounds: budget },
            50_000,
        ),
        ("klo_flood", AlgorithmKind::KloFlood { rounds: budget }, 0),
    ];
    for mode in [ExecMode::Lockstep, ExecMode::Event] {
        for (label, kind, loss_ppm) in points {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_{mode}"), n),
                kind,
                |b, kind| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut provider = HiNetGen::new(HiNetConfig {
                            n,
                            num_heads: heads_for_members(&p),
                            theta: p.theta as usize,
                            l: p.l as usize,
                            t: 1,
                            reaffil_prob: 0.1,
                            rotate_heads: true,
                            noise_edges: n / 5,
                            seed,
                        });
                        let assignment = round_robin_assignment(n, p.k as usize);
                        let faults = FaultPlan::new(seed).with_loss_ppm(*loss_ppm);
                        black_box(run_algorithm(
                            kind,
                            &mut provider,
                            &assignment,
                            RunConfig::new().faults(faults).mode(mode),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}
