//! Bench: E7 — cost vs progress coefficient α (the stability/time
//! trade-off knob of Theorem 1); the sweep table prints once.

use crate::small_params;
use hinet_analysis::experiments::e7_sweep_alpha;
use hinet_analysis::scenarios;
use hinet_core::analysis::ModelParams;
use hinet_rt::bench::{Bench, BenchmarkId};
use std::hint::black_box;

pub fn bench(c: &mut Bench) {
    c.print_table("sweep_alpha", || e7_sweep_alpha().to_text());
    let base = small_params();
    let mut group = c.benchmark_group("sweep_alpha");
    group.sample_size(10);
    for alpha in [1u64, 2, 5] {
        let p = ModelParams { alpha, ..base };
        group.bench_with_input(BenchmarkId::new("alg1_vs_klo", alpha), &p, |b, p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box((
                    scenarios::run_hinet_tl(p, seed),
                    scenarios::run_klo_t_interval(p, seed),
                ))
            })
        });
    }
    group.finish();
}
