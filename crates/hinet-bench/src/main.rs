//! Standalone entry point; `hinet bench` forwards to the same
//! [`hinet_bench::cli::run_from_args`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    hinet_bench::cli::run_from_args(&args)
}
