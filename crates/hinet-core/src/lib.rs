//! # hinet-core
//!
//! The paper's contribution: hierarchical k-token dissemination algorithms
//! for (T, L)-HiNet dynamic networks, the Kuhn–Lynch–Oshman baselines they
//! are compared against, and the analytical cost model of the evaluation
//! section.
//!
//! * [`algorithms::HiNetPhased`] — **Algorithm 1** (phase-based
//!   dissemination for (T, L)-HiNet), including the Remark 1 variant for
//!   ∞-interval stable head sets.
//! * [`algorithms::HiNetFullExchange`] — **Algorithm 2** (full-`TA`
//!   exchange for (1, L)-HiNet).
//! * [`algorithms::KloPhased`] / [`algorithms::KloFlood`] — the flat
//!   T-interval and 1-interval baselines from Kuhn, Lynch & Oshman that
//!   Table 2 compares against.
//! * [`algorithms::Gossip`] / [`algorithms::KActiveFlood`] — additional
//!   related-work baselines (randomised gossip; Baumann et al.'s k-active
//!   flooding) used by the extension experiments.
//! * [`analysis`] — the closed-form time/communication formulas of Table 2
//!   and their Table 3 instantiation (including the documented arithmetic
//!   erratum in the paper's final row).
//! * [`params`] — phase arithmetic shared by algorithms and analysis
//!   (`T ≥ k + αL`, `M = ⌈θ/α⌉ + 1`, …).
//! * [`runner`] — one-call execution of any algorithm on any
//!   `HierarchyProvider`, returning the simulator's [`hinet_sim::RunReport`].
//!
//! # Example
//!
//! Disseminate 4 tokens over a (T, L)-HiNet with Algorithm 1, completing
//! within Theorem 1's bound:
//!
//! ```
//! use hinet_cluster::generators::{HiNetConfig, HiNetGen};
//! use hinet_core::params::alg1_plan;
//! use hinet_core::runner::{run_algorithm, AlgorithmKind};
//! use hinet_sim::engine::RunConfig;
//! use hinet_sim::token::round_robin_assignment;
//!
//! let (k, alpha, l, theta) = (4, 2, 2, 8);
//! let plan = alg1_plan(k, alpha, l, theta); // T = k + αL, M = ⌈θ/α⌉ + 1
//! let mut net = HiNetGen::new(HiNetConfig {
//!     n: 24,
//!     num_heads: 4,
//!     theta,
//!     l,
//!     t: plan.rounds_per_phase,
//!     reaffil_prob: 0.2,
//!     rotate_heads: true,
//!     noise_edges: 4,
//!     seed: 7,
//! });
//! let report = run_algorithm(
//!     &AlgorithmKind::HiNetPhased(plan),
//!     &mut net,
//!     &round_robin_assignment(24, k),
//!     RunConfig::default(),
//! );
//! assert!(report.completed());
//! assert!(report.completion_round.unwrap() <= plan.total_rounds());
//! ```

pub mod algorithms;
pub mod analysis;
pub mod netcode;
pub mod params;
pub mod runner;

pub use algorithms::{
    DeltaFlood, Gossip, HiNetFullExchange, HiNetFullExchangeMH, HiNetPhased, KActiveFlood,
    KloFlood, KloPhased,
};
pub use params::PhasePlan;
pub use runner::{run_algorithm, AlgorithmKind};
