//! One-call algorithm execution.
//!
//! Experiments need to run "algorithm X on provider Y with k tokens" many
//! times over; this module packages algorithm selection (with its
//! parameterisation) behind one enum so sweep code stays declarative.

use crate::algorithms::{
    DeltaFlood, Gossip, HiNetFullExchange, HiNetFullExchangeMH, HiNetPhased, KActiveFlood,
    KloFlood, KloPhased,
};
use crate::params::PhasePlan;
use hinet_cluster::ctvg::HierarchyProvider;
use hinet_sim::engine::{Engine, RunConfig, RunReport};
use hinet_sim::protocol::Protocol;
use hinet_sim::token::TokenId;

/// Algorithm selector with per-algorithm parameters.
#[derive(Clone, Debug)]
pub enum AlgorithmKind {
    /// Algorithm 1 with the given phase plan.
    HiNetPhased(PhasePlan),
    /// Algorithm 1, Remark 1 variant (∞-stable head set).
    HiNetRemark1(PhasePlan),
    /// Algorithm 2 with `M` rounds.
    HiNetFullExchange {
        /// Round budget `M` (see `params::alg2_rounds_*`).
        rounds: usize,
    },
    /// Flat KLO T-interval baseline with the given phase plan.
    KloPhased(PhasePlan),
    /// Flat KLO 1-interval full flooding with `M` rounds.
    KloFlood {
        /// Round budget `M` (normally `n − 1`).
        rounds: usize,
    },
    /// Push gossip baseline.
    Gossip {
        /// Round budget.
        rounds: usize,
        /// RNG seed for target selection.
        seed: u64,
    },
    /// k-active (parsimonious) flooding baseline.
    KActiveFlood {
        /// Rounds each token stays active after first being learned.
        activity: usize,
        /// Hard round budget.
        rounds: usize,
    },
    /// Delta-triggered flooding — the *incorrect* quiescent baseline
    /// (experiment E13).
    DeltaFlood {
        /// Hard round budget.
        rounds: usize,
    },
    /// Multi-hop Algorithm 2 for d-hop clusters (experiment E14).
    HiNetFullExchangeMH {
        /// Round budget `M`.
        rounds: usize,
    },
}

impl AlgorithmKind {
    /// Short display label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::HiNetPhased(_) => "alg1-hinet-phased",
            AlgorithmKind::HiNetRemark1(_) => "alg1-remark1",
            AlgorithmKind::HiNetFullExchange { .. } => "alg2-full-exchange",
            AlgorithmKind::KloPhased(_) => "klo-phased",
            AlgorithmKind::KloFlood { .. } => "klo-flood",
            AlgorithmKind::Gossip { .. } => "gossip",
            AlgorithmKind::KActiveFlood { .. } => "k-active-flood",
            AlgorithmKind::DeltaFlood { .. } => "delta-flood",
            AlgorithmKind::HiNetFullExchangeMH { .. } => "alg2-multihop",
        }
    }

    /// Instantiate one protocol per node.
    pub fn build(&self, n: usize) -> Vec<Box<dyn Protocol + Send>> {
        (0..n).map(|_| self.build_node(false)).collect()
    }

    /// Instantiate a single protocol instance — the factory behind
    /// [`AlgorithmKind::build`] and [`run_algorithm`].
    ///
    /// With `retransmit` set, the HiNet algorithms (1, Remark 1 and 2) are
    /// built in their retransmission-recovery mode; the flag is a no-op for
    /// the baselines, which have no recovery variant.
    pub fn build_node(&self, retransmit: bool) -> Box<dyn Protocol + Send> {
        match *self {
            AlgorithmKind::HiNetPhased(plan) => {
                Box::new(HiNetPhased::new(plan).with_retransmit(retransmit))
            }
            AlgorithmKind::HiNetRemark1(plan) => {
                Box::new(HiNetPhased::remark1(plan).with_retransmit(retransmit))
            }
            AlgorithmKind::HiNetFullExchange { rounds } => {
                Box::new(HiNetFullExchange::new(rounds).with_retransmit(retransmit))
            }
            AlgorithmKind::KloPhased(plan) => Box::new(KloPhased::new(plan)),
            AlgorithmKind::KloFlood { rounds } => Box::new(KloFlood::new(rounds)),
            AlgorithmKind::Gossip { rounds, seed } => Box::new(Gossip::new(rounds, seed)),
            AlgorithmKind::KActiveFlood { activity, rounds } => {
                Box::new(KActiveFlood::new(activity, rounds))
            }
            AlgorithmKind::DeltaFlood { rounds } => Box::new(DeltaFlood::new(rounds)),
            AlgorithmKind::HiNetFullExchangeMH { rounds } => {
                Box::new(HiNetFullExchangeMH::new(rounds))
            }
        }
    }
}

impl AlgorithmKind {
    /// The phase length `T` the algorithm operates in, if it is phased.
    /// This is what the tracer uses to segment a run into phases.
    pub fn phase_len(&self) -> Option<usize> {
        match self {
            AlgorithmKind::HiNetPhased(plan)
            | AlgorithmKind::HiNetRemark1(plan)
            | AlgorithmKind::KloPhased(plan) => Some(plan.rounds_per_phase),
            _ => None,
        }
    }
}

/// Run `kind` on `provider` with the given initial token `assignment` —
/// the single algorithm entry point, mirroring [`Engine::run`].
///
/// Everything rides on `cfg`: attach a tracer with [`RunConfig::tracer`]
/// (for phased algorithms the tracer's phase length is set from the plan,
/// so the trace carries `PhaseAdvance` markers and the algorithm label in
/// its metadata), a fault plan with [`RunConfig::faults`] (crashed nodes
/// restart through [`hinet_sim::protocol::Protocol::on_restart`]), and
/// [`RunConfig::retransmit`] to build the HiNet algorithms in their
/// retransmission-recovery mode. A default config runs the plain path.
pub fn run_algorithm(
    kind: &AlgorithmKind,
    provider: &mut (dyn HierarchyProvider + Send),
    assignment: &[Vec<TokenId>],
    mut cfg: RunConfig<'_>,
) -> RunReport {
    if let Some(tracer) = cfg.tracer.as_deref_mut() {
        if tracer.enabled() {
            tracer.meta("algorithm", kind.label());
            if let Some(t) = kind.phase_len() {
                tracer.set_phase_len(t as u64);
                tracer.meta("rounds_per_phase", t.to_string());
            }
        }
    }
    let mut protocols: Vec<Box<dyn Protocol + Send>> = (0..provider.n())
        .map(|_| kind.build_node(cfg.retransmit))
        .collect();
    Engine::new(cfg).run(provider, &mut protocols, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{alg1_plan, alg2_rounds_1interval, klo_plan};
    use hinet_cluster::generators::{HiNetConfig, HiNetGen};
    use hinet_sim::token::round_robin_assignment;

    fn small_hinet(t: usize, rotate: bool) -> HiNetGen {
        HiNetGen::new(HiNetConfig {
            n: 24,
            num_heads: 4,
            theta: 8,
            l: 2,
            t,
            reaffil_prob: 0.15,
            rotate_heads: rotate,
            noise_edges: 0,
            seed: 9,
        })
    }

    #[test]
    fn alg1_completes_within_plan_on_hinet() {
        let k = 4;
        let (alpha, l, theta) = (2, 2, 8);
        let plan = alg1_plan(k, alpha, l, theta); // T = 8, M = 5
        let mut provider = small_hinet(plan.rounds_per_phase, true);
        let assignment = round_robin_assignment(24, k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new().validate_hierarchy(true),
        );
        assert!(report.completed(), "Theorem 1 guarantees completion");
        assert!(
            report.completion_round.unwrap() <= plan.total_rounds(),
            "{} > plan {}",
            report.completion_round.unwrap(),
            plan.total_rounds()
        );
    }

    #[test]
    fn alg2_completes_on_one_l_hinet() {
        let k = 5;
        let rounds = alg2_rounds_1interval(24);
        let mut provider = small_hinet(1, true);
        let assignment = round_robin_assignment(24, k);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(report.completed(), "Theorem 2 guarantees completion in n−1");
        assert!(report.completion_round.unwrap() <= rounds);
    }

    #[test]
    fn klo_baselines_complete() {
        let k = 4;
        let plan = klo_plan(k, 2, 2, 24);
        let mut provider = small_hinet(plan.rounds_per_phase, false);
        let assignment = round_robin_assignment(24, k);
        let phased = run_algorithm(
            &AlgorithmKind::KloPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(phased.completed());

        let mut provider = small_hinet(1, true);
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: 23 },
            &mut provider,
            &assignment,
            RunConfig::default(),
        );
        assert!(flood.completed());
    }

    #[test]
    fn hinet_cheaper_than_klo_flood_on_same_dynamics() {
        // The headline claim, at miniature scale: same (1, L)-HiNet
        // dynamics, Algorithm 2 vs full flooding.
        let k = 6;
        let assignment = round_robin_assignment(24, k);
        let mut p1 = small_hinet(1, true);
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: 23 },
            &mut p1,
            &assignment,
            RunConfig::default(),
        );
        let mut p2 = small_hinet(1, true);
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: 23 },
            &mut p2,
            &assignment,
            RunConfig::default(),
        );
        assert!(alg2.completed() && flood.completed());
        assert!(
            alg2.metrics.tokens_sent < flood.metrics.tokens_sent,
            "alg2 {} should beat flooding {}",
            alg2.metrics.tokens_sent,
            flood.metrics.tokens_sent
        );
    }

    #[test]
    fn gossip_and_kactive_run_to_completion_on_easy_dynamics() {
        let k = 3;
        let assignment = round_robin_assignment(24, k);
        let mut p = small_hinet(4, false);
        let gossip = run_algorithm(
            &AlgorithmKind::Gossip {
                rounds: 500,
                seed: 3,
            },
            &mut p,
            &assignment,
            RunConfig::default(),
        );
        assert!(gossip.completed(), "gossip should finish on a stable HiNet");

        let mut p = small_hinet(4, false);
        let ka = run_algorithm(
            &AlgorithmKind::KActiveFlood {
                activity: 24,
                rounds: 500,
            },
            &mut p,
            &assignment,
            RunConfig::default(),
        );
        assert!(ka.completed());
    }

    #[test]
    fn hinet_algorithms_recover_from_loss_with_retransmission() {
        let k = 4;
        let (alpha, l, theta) = (2, 2, 8);
        let base = alg1_plan(k, alpha, l, theta);
        // Loss voids Theorem 1's round bound; give recovery extra phases.
        let plan = PhasePlan {
            phases: base.phases * 3,
            ..base
        };
        let assignment = round_robin_assignment(24, k);
        let faults = hinet_sim::fault::FaultPlan::new(11).with_loss_ppm(100_000);

        let mut provider = small_hinet(plan.rounds_per_phase, true);
        let report = run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new().faults(faults.clone()).retransmit(true),
        );
        assert!(
            report.completed(),
            "alg1 must heal 10% loss via retransmission, got {}",
            report.outcome
        );
        assert!(report.metrics.faults_injected > 0);
        assert!(report.metrics.retransmits > 0);

        let mut provider = small_hinet(1, true);
        let report = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: 69 },
            &mut provider,
            &assignment,
            RunConfig::new().faults(faults).retransmit(true),
        );
        assert!(
            report.completed(),
            "alg2 must heal 10% loss via retransmission, got {}",
            report.outcome
        );
    }

    #[test]
    fn faulted_run_with_trivial_plan_matches_traced_run() {
        use hinet_rt::obs::{ObsConfig, Tracer};

        let k = 4;
        let plan = alg1_plan(k, 2, 2, 8);
        let assignment = round_robin_assignment(24, k);

        let mut provider = small_hinet(plan.rounds_per_phase, true);
        let mut plain = Tracer::new(ObsConfig::full());
        run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new().tracer(&mut plain),
        );

        let mut provider = small_hinet(plan.rounds_per_phase, true);
        let mut faulted = Tracer::new(ObsConfig::full());
        run_algorithm(
            &AlgorithmKind::HiNetPhased(plan),
            &mut provider,
            &assignment,
            RunConfig::new()
                .faults(hinet_sim::fault::FaultPlan::none())
                .tracer(&mut faulted),
        );
        assert_eq!(plain.to_jsonl(), faulted.to_jsonl());
    }

    #[test]
    fn labels_are_distinct() {
        let plan = alg1_plan(2, 1, 1, 2);
        let kinds = [
            AlgorithmKind::HiNetPhased(plan),
            AlgorithmKind::HiNetRemark1(plan),
            AlgorithmKind::HiNetFullExchange { rounds: 1 },
            AlgorithmKind::KloPhased(plan),
            AlgorithmKind::KloFlood { rounds: 1 },
            AlgorithmKind::Gossip { rounds: 1, seed: 0 },
            AlgorithmKind::KActiveFlood {
                activity: 1,
                rounds: 1,
            },
            AlgorithmKind::DeltaFlood { rounds: 1 },
            AlgorithmKind::HiNetFullExchangeMH { rounds: 1 },
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
