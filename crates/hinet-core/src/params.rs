//! Phase arithmetic shared by the algorithms and the analytical model.
//!
//! Theorem 1 parameterises Algorithm 1 by the phase length `T ≥ k + α·L`
//! and the phase count `M ≥ ⌈θ/α⌉ + 1`; this module centralises those
//! formulas so the simulator, the cost model and the benches cannot drift
//! apart.

/// A phase plan: how many rounds per phase and how many phases to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhasePlan {
    /// Rounds per phase (`T`).
    pub rounds_per_phase: usize,
    /// Number of phases (`M`).
    pub phases: usize,
}

impl PhasePlan {
    /// Total rounds `M · T`.
    pub fn total_rounds(&self) -> usize {
        self.rounds_per_phase * self.phases
    }

    /// Phase index of a round.
    pub fn phase_of(&self, round: usize) -> usize {
        round / self.rounds_per_phase
    }

    /// Offset of a round within its phase.
    pub fn offset_of(&self, round: usize) -> usize {
        round % self.rounds_per_phase
    }

    /// Whether `round` is the first round of its phase.
    pub fn is_phase_start(&self, round: usize) -> bool {
        self.offset_of(round) == 0
    }

    /// Whether `round` is the last round of its phase.
    pub fn is_phase_end(&self, round: usize) -> bool {
        self.offset_of(round) == self.rounds_per_phase - 1
    }

    /// Whether the plan is exhausted at `round` (round past the last phase).
    pub fn exhausted(&self, round: usize) -> bool {
        round >= self.total_rounds()
    }
}

/// The minimal phase length Theorem 1 requires: `T = k + α·L`.
pub fn required_phase_length(k: usize, alpha: usize, l: usize) -> usize {
    k + alpha * l
}

/// Theorem 1's phase count for Algorithm 1: `M = ⌈θ/α⌉ + 1`.
pub fn alg1_phases(theta: usize, alpha: usize) -> usize {
    assert!(alpha > 0, "α must be a positive integer");
    theta.div_ceil(alpha) + 1
}

/// Remark 1's phase count when the head set is ∞-interval stable:
/// `M = ⌈|V_h|/α⌉ + 1` with the *actual* head count instead of the bound θ.
pub fn remark1_phases(actual_heads: usize, alpha: usize) -> usize {
    assert!(alpha > 0, "α must be a positive integer");
    actual_heads.div_ceil(alpha) + 1
}

/// Phase count the paper's Table 2 charges the flat KLO baseline in the
/// `(k+αL)`-interval connected model: `⌈n₀/(αL)⌉` phases.
pub fn klo_phases(n0: usize, alpha: usize, l: usize) -> usize {
    assert!(alpha > 0 && l > 0);
    n0.div_ceil(alpha * l)
}

/// Theorem 2's round count for Algorithm 2 under plain 1-interval
/// connectivity: `n − 1` rounds.
pub fn alg2_rounds_1interval(n0: usize) -> usize {
    n0.saturating_sub(1)
}

/// Theorem 3's round count for Algorithm 2 under (α·L)-interval cluster
/// head connectivity: `⌈θ/α⌉ + 1`.
pub fn alg2_rounds_theorem3(theta: usize, alpha: usize) -> usize {
    assert!(alpha > 0);
    theta.div_ceil(alpha) + 1
}

/// Theorem 4's round count for Algorithm 2 under an L-interval stable
/// hierarchy: `θ·L + 1`.
pub fn alg2_rounds_theorem4(theta: usize, l: usize) -> usize {
    theta * l + 1
}

/// The full Algorithm 1 plan for a (T, L)-HiNet with parameters
/// `(k, α, L, θ)`: phase length `k + αL`, `⌈θ/α⌉ + 1` phases.
pub fn alg1_plan(k: usize, alpha: usize, l: usize, theta: usize) -> PhasePlan {
    PhasePlan {
        rounds_per_phase: required_phase_length(k, alpha, l),
        phases: alg1_phases(theta, alpha),
    }
}

/// The flat KLO plan the paper compares against: same phase length,
/// `⌈n₀/(αL)⌉` phases.
pub fn klo_plan(k: usize, alpha: usize, l: usize, n0: usize) -> PhasePlan {
    PhasePlan {
        rounds_per_phase: required_phase_length(k, alpha, l),
        phases: klo_phases(n0, alpha, l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_plan_geometry() {
        let p = PhasePlan {
            rounds_per_phase: 5,
            phases: 3,
        };
        assert_eq!(p.total_rounds(), 15);
        assert_eq!(p.phase_of(0), 0);
        assert_eq!(p.phase_of(4), 0);
        assert_eq!(p.phase_of(5), 1);
        assert!(p.is_phase_start(0));
        assert!(p.is_phase_start(10));
        assert!(!p.is_phase_start(11));
        assert!(p.is_phase_end(4));
        assert!(p.is_phase_end(14));
        assert!(!p.is_phase_end(13));
        assert!(!p.exhausted(14));
        assert!(p.exhausted(15));
    }

    #[test]
    fn table3_plan_arithmetic() {
        // Paper's Table 3 parameters: k=8, α=5, L=2, θ=30, n₀=100.
        assert_eq!(required_phase_length(8, 5, 2), 18);
        assert_eq!(alg1_phases(30, 5), 7);
        assert_eq!(alg1_plan(8, 5, 2, 30).total_rounds(), 126);
        assert_eq!(klo_phases(100, 5, 2), 10);
        assert_eq!(klo_plan(8, 5, 2, 100).total_rounds(), 180);
        assert_eq!(alg2_rounds_1interval(100), 99);
    }

    #[test]
    fn ceil_division_edges() {
        assert_eq!(alg1_phases(30, 7), 6, "⌈30/7⌉+1 = 5+1");
        assert_eq!(alg1_phases(1, 1), 2);
        assert_eq!(remark1_phases(10, 5), 3);
        assert_eq!(alg2_rounds_theorem3(30, 5), 7);
        assert_eq!(alg2_rounds_theorem4(30, 2), 61);
        assert_eq!(alg2_rounds_1interval(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_alpha_rejected() {
        let _ = alg1_phases(10, 0);
    }
}
