//! Random linear network coding (RLNC) dissemination — Haeupler & Karger's
//! improvement over token-forwarding, cited by the paper as related work.
//!
//! Coded dissemination transmits *coefficient vectors over GF(2)* rather
//! than token sets, so it does not fit the token-payload [`hinet_sim`]
//! protocol interface; this module carries its own small synchronous
//! executor over the same [`TopologyProvider`] substrate. Each round every
//! node broadcasts one uniformly random combination of its basis rows; a
//! node has a token once its reduced basis isolates the token's unit
//! vector, and the run completes when every node reaches full rank.
//!
//! Cost accounting: one coded packet carries one token-payload's worth of
//! data plus a `k`-bit coefficient header, so in the paper's token metric
//! it counts as **1**, and in the byte metric as
//! `token_bytes + ⌈k/8⌉ + packet_header_bytes`.

pub mod gf2;

use gf2::{Gf2Basis, Gf2Vec};
use hinet_graph::graph::NodeId;
use hinet_graph::rng::stream_rng;
use hinet_graph::trace::TopologyProvider;
use hinet_rt::obs::{FaultKind, Role, Tracer};
use hinet_sim::engine::{CostWeights, RunConfig};
use hinet_sim::reliable::{ReceiverLedger, ReliableConfig, SenderWindow};
use hinet_sim::token::TokenId;

/// Outcome of an RLNC run.
#[derive(Clone, Debug)]
pub struct RlncReport {
    /// Rounds until every node reached full rank, or `None` if the budget
    /// ran out first.
    pub completion_round: Option<usize>,
    /// Rounds executed.
    pub rounds_executed: usize,
    /// Coded packets transmitted (= token-equivalents in the paper's
    /// metric: one payload per packet), timer retransmissions included.
    pub packets_sent: u64,
    /// Reliability-layer timer retransmissions ([`RunConfig::reliable`]),
    /// already included in `packets_sent`.
    pub retransmits: u64,
    /// Token universe size `k`.
    pub k: usize,
}

impl RlncReport {
    /// Whether the run completed.
    pub fn completed(&self) -> bool {
        self.completion_round.is_some()
    }

    /// Byte cost under `w`, including the `k`-bit coefficient header each
    /// coded packet carries.
    pub fn total_bytes(&self, w: CostWeights) -> u64 {
        let coeff_header = self.k.div_ceil(8) as u64;
        self.packets_sent * (w.token_bytes + coeff_header + w.packet_header_bytes)
    }
}

/// Run RLNC dissemination over `provider` — the single RLNC entry point,
/// mirroring [`hinet_sim::engine::Engine::run`].
///
/// `assignment[u]` are node `u`'s initial tokens (ids must lie in
/// `0..k` where `k` is the total distinct token count — use
/// [`hinet_sim::token::round_robin_assignment`]). Fully deterministic
/// given `seed`. The round budget, byte-cost weights, fault plan and
/// optional tracer all come from `cfg`:
///
/// * **tracing** ([`RunConfig::tracer`]) — identical dissemination (the
///   tracer never touches the RNG streams); each coded broadcast is
///   emitted as an [`hinet_rt::obs::Event::HeadBroadcast`] with
///   `count = 1` (a packet carries one token-payload's worth of data in
///   the paper's metric), `token` set to the packet's leading coordinate
///   (its pivot under GF(2) reduction) and role [`Role::Member`] — RLNC is
///   flat, there is no hierarchy to attribute. Byte accounting uses
///   [`RunConfig::cost_weights`] plus the `⌈k/8⌉`-byte coefficient header
///   (see [`RlncReport::total_bytes`]).
/// * **faults** ([`RunConfig::faults`]) — per-delivery loss and partition
///   cuts suppress basis inserts at the receiver (the sender still pays
///   for the packet), and crashed nodes go silent for `down_rounds`
///   rounds, losing their accumulated basis unless the plan declares
///   tokens durable. The dissemination RNG streams are never consulted by
///   the fault plane, so a trivial plan is byte-identical to a plain run.
///   RLNC is flat, so `target_heads` never matches a hazard crash here;
///   scheduled [`hinet_sim::fault::FaultPlan::with_crash_at`] entries
///   still fire. The delivery pathologies apply too: a delayed packet
///   ([`hinet_sim::fault::FaultPlan::with_delay_ppm`]) is inserted at its
///   matured round (lost if the receiver is down then), a duplicated one
///   is a GF(2) no-op (counted, never double-inserted), and reorder
///   shuffles each receiver's per-round insert order (a span-preserving
///   permutation).
/// * **reliability** ([`RunConfig::reliable`]) — each delivery registers
///   in a per-sender [`SenderWindow`]; unacked packets retransmit on the
///   backed-off timer (each re-send pays one packet), receivers dedup by
///   reliable id, and acks apply at the round barrier exactly like the
///   lock-step engine. Active only alongside a non-trivial fault plan.
pub fn run_rlnc(
    provider: &mut dyn TopologyProvider,
    assignment: &[Vec<TokenId>],
    seed: u64,
    mut cfg: RunConfig<'_>,
) -> RlncReport {
    let mut disabled = Tracer::disabled();
    let tracer: &mut Tracer = match cfg.tracer.take() {
        Some(t) => t,
        None => &mut disabled,
    };
    let weights = cfg.cost_weights;
    let faults = &cfg.faults;
    let max_rounds = cfg.max_rounds;
    let n = provider.n();
    assert_eq!(assignment.len(), n, "one initial token list per node");
    let k = assignment
        .iter()
        .flatten()
        .map(|t| t.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let packet_bytes = weights.token_bytes + k.div_ceil(8) as u64 + weights.packet_header_bytes;
    if tracer.enabled() {
        tracer.meta("algorithm", "rlnc");
        tracer.meta("token_bytes", weights.token_bytes.to_string());
        tracer.meta(
            "packet_header_bytes",
            weights.packet_header_bytes.to_string(),
        );
    }

    let mut bases: Vec<Gf2Basis> = (0..n).map(|_| Gf2Basis::new(k)).collect();
    for (u, tokens) in assignment.iter().enumerate() {
        for t in tokens {
            bases[u].insert(Gf2Vec::unit(k, t.0 as usize));
        }
    }
    let mut rngs: Vec<_> = (0..n).map(|u| stream_rng(seed, u as u64)).collect();

    let all_complete = |bases: &[Gf2Basis]| -> bool { bases.iter().all(|b| b.is_complete()) };

    if k == 0 || all_complete(&bases) {
        tracer.run_end(0, true);
        return RlncReport {
            completion_round: Some(0),
            rounds_executed: 0,
            packets_sent: 0,
            retransmits: 0,
            k,
        };
    }

    let trivial = faults.is_trivial();
    let reliable = cfg.reliable && !trivial;
    let mut down_until = vec![0usize; n];
    let mut was_down = vec![false; n];
    // Delayed packets held for their matured round, per receiver:
    // `(due round, sender, rid, packet)`.
    let mut delayed: Vec<Vec<(usize, usize, u64, Gf2Vec)>> = vec![Vec::new(); n];
    let mut plane: Option<(Vec<SenderWindow<Gf2Vec>>, Vec<ReceiverLedger>)> = reliable.then(|| {
        let windows = (0..n)
            .map(|u| {
                // Same per-sender jitter seed derivation as the engine.
                let s = faults.seed ^ (u as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                SenderWindow::new(s, ReliableConfig::default())
            })
            .collect();
        (windows, (0..n).map(|_| ReceiverLedger::new()).collect())
    });

    let mut packets_sent = 0u64;
    let mut retransmits = 0u64;
    let mut dups_discarded = 0u64;
    let mut completion_round = None;
    let mut rounds_executed = 0;
    for round in 0..max_rounds {
        let graph = provider.graph_at(round);
        tracer.round_start(round as u64);
        if !trivial {
            for u in 0..n {
                if was_down[u] && round >= down_until[u] {
                    was_down[u] = false;
                    tracer.recover(round as u64, u as u64);
                }
            }
            for u in 0..n {
                if round < down_until[u] {
                    continue;
                }
                if faults.crashes(round, u, false) {
                    tracer.crash(round as u64, u as u64, faults.durable_tokens);
                    if !faults.durable_tokens {
                        // Volatile storage: the restarted node is back to
                        // its initially assigned unit vectors.
                        let mut b = Gf2Basis::new(k);
                        for t in &assignment[u] {
                            b.insert(Gf2Vec::unit(k, t.0 as usize));
                        }
                        bases[u] = b;
                    }
                    down_until[u] = round + faults.down_rounds;
                    was_down[u] = true;
                }
            }
        }
        // Per-receiver insert lists for the round: matured delayed packets
        // first, then timer retransmissions, then fresh deliveries —
        // applied after the send phase so every send combination is drawn
        // from the pre-round bases.
        let mut incoming: Vec<Vec<Gf2Vec>> = vec![Vec::new(); n];
        if !trivial && faults.delay_ppm > 0 {
            for v in 0..n {
                let held = std::mem::take(&mut delayed[v]);
                for (due, from, rid, pkt) in held {
                    if due > round {
                        delayed[v].push((due, from, rid, pkt));
                        continue;
                    }
                    if round < down_until[v] {
                        continue; // matured into a down receiver: lost
                    }
                    if let Some((_, ledgers)) = plane.as_mut() {
                        if !ledgers[v].accept(from, rid) {
                            dups_discarded += 1;
                            continue;
                        }
                    }
                    incoming[v].push(pkt);
                }
            }
        }
        // Reliability-timer retransmissions: full packet cost, original
        // rid (receiver ledgers dedup), no delay/dup re-roll — only the
        // loss gates apply.
        if let Some((windows, ledgers)) = plane.as_mut() {
            for u in 0..n {
                if !trivial && round < down_until[u] {
                    continue;
                }
                let me = NodeId::from_index(u);
                for rt in windows[u].due(round) {
                    let v = rt.to;
                    if !graph.neighbors(me).contains(&NodeId::from_index(v)) {
                        continue; // no edge this round; the timer re-fires
                    }
                    packets_sent += 1;
                    retransmits += 1;
                    tracer.retransmit_timeout(round as u64, u as u64, v as u64, rt.attempt);
                    if round < down_until[v] {
                        continue;
                    }
                    if !trivial {
                        let kind = if faults.partitioned(round, u, v) {
                            Some(FaultKind::Partition)
                        } else if faults.drops_message(round, u, v) {
                            Some(FaultKind::Loss)
                        } else {
                            None
                        };
                        if let Some(kind) = kind {
                            tracer.fault_injected(round as u64, u as u64, Some(v as u64), kind);
                            continue;
                        }
                    }
                    if ledgers[v].accept(u, rt.rid) {
                        incoming[v].push(rt.item);
                    } else {
                        dups_discarded += 1;
                    }
                }
            }
        }
        // Send phase: simultaneous, so collect first.
        let outgoing: Vec<Option<Gf2Vec>> = (0..n)
            .map(|u| {
                if !trivial && round < down_until[u] {
                    None
                } else {
                    bases[u].random_combination(&mut rngs[u])
                }
            })
            .collect();
        for (u, pkt) in outgoing.iter().enumerate() {
            let Some(pkt) = pkt else { continue };
            packets_sent += 1;
            if tracer.enabled() {
                let pivot = pkt.leading().unwrap_or(0) as u64;
                tracer.head_broadcast(round as u64, u as u64, pivot, 1, Role::Member, packet_bytes);
            }
            for &v in graph.neighbors(NodeId::from_index(u)) {
                // Register before any gate, so a lost delivery still
                // retransmits on timer.
                let rid = match plane.as_mut() {
                    Some((windows, _)) => windows[u].register(v.index(), pkt.clone(), round),
                    None => 0,
                };
                if !trivial {
                    if round < down_until[v.index()] {
                        continue; // deliveries to crashed nodes are lost
                    }
                    let kind = if faults.partitioned(round, u, v.index()) {
                        Some(FaultKind::Partition)
                    } else if faults.drops_message(round, u, v.index()) {
                        Some(FaultKind::Loss)
                    } else {
                        None
                    };
                    if let Some(kind) = kind {
                        tracer.fault_injected(round as u64, u as u64, Some(v.0 as u64), kind);
                        continue;
                    }
                    let d = faults.delay_of(round, u, v.index(), 0);
                    if d > 0 {
                        tracer.delayed(round as u64, u as u64, v.0 as u64, d as u64);
                        delayed[v.index()].push((round + d, u, rid, pkt.clone()));
                        continue;
                    }
                    if faults.duplicates(round, u, v.index(), 0) {
                        // A duplicate insert is a GF(2) no-op: counted as
                        // injected and immediately discarded.
                        tracer.duplicated(round as u64, u as u64, v.0 as u64);
                        dups_discarded += 1;
                    }
                }
                if let Some((_, ledgers)) = plane.as_mut() {
                    if !ledgers[v.index()].accept(u, rid) {
                        dups_discarded += 1;
                        continue;
                    }
                }
                incoming[v.index()].push(pkt.clone());
            }
        }
        // Apply the round's inserts; reorder shuffles each receiver's
        // insert order (the GF(2) span is permutation-invariant, so this
        // exercises the pathology without changing what decodes).
        for (v, mut pkts) in incoming.into_iter().enumerate() {
            if !trivial && faults.reorder {
                faults.shuffle(round, v, &mut pkts);
            }
            for pkt in pkts {
                bases[v].insert(pkt);
            }
        }
        // Omniscient round-barrier ack sync, exactly like the lock-step
        // engine: every sender learns each receiver's cumulative ack.
        if let Some((windows, ledgers)) = plane.as_mut() {
            for (u, w) in windows.iter_mut().enumerate() {
                w.sync_acks(|to| ledgers[to].cum(u));
            }
        }
        rounds_executed = round + 1;
        if all_complete(&bases) {
            completion_round = Some(rounds_executed);
            break;
        }
    }

    if tracer.enabled() && dups_discarded > 0 {
        tracer.note_dedup(dups_discarded);
    }
    tracer.run_end(rounds_executed as u64, completion_round.is_some());
    RlncReport {
        completion_round,
        rounds_executed,
        packets_sent,
        retransmits,
        k,
    }
}

/// Per-node decoded token count after a run — exposed for experiments that
/// track decoding progress (re-runs the simulation capturing rank growth).
pub fn rank_progress(
    provider: &mut dyn TopologyProvider,
    assignment: &[Vec<TokenId>],
    rounds: usize,
    seed: u64,
) -> Vec<usize> {
    let n = provider.n();
    let k = assignment
        .iter()
        .flatten()
        .map(|t| t.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut bases: Vec<Gf2Basis> = (0..n).map(|_| Gf2Basis::new(k)).collect();
    for (u, tokens) in assignment.iter().enumerate() {
        for t in tokens {
            bases[u].insert(Gf2Vec::unit(k, t.0 as usize));
        }
    }
    let mut rngs: Vec<_> = (0..n).map(|u| stream_rng(seed, u as u64)).collect();
    let mut min_rank_series = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let graph = provider.graph_at(round);
        let outgoing: Vec<Option<Gf2Vec>> = (0..n)
            .map(|u| bases[u].random_combination(&mut rngs[u]))
            .collect();
        for (u, pkt) in outgoing.iter().enumerate() {
            let Some(pkt) = pkt else { continue };
            for &v in graph.neighbors(NodeId::from_index(u)) {
                bases[v.index()].insert(pkt.clone());
            }
        }
        min_rank_series.push(bases.iter().map(|b| b.rank()).min().unwrap_or(0));
    }
    min_rank_series
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_graph::generators::{BackboneKind, OneIntervalGen, TIntervalGen};
    use hinet_graph::trace::StaticProvider;
    use hinet_graph::Graph;
    use hinet_sim::fault::FaultPlan;
    use hinet_sim::token::round_robin_assignment;

    #[test]
    fn completes_on_static_complete_graph() {
        let mut p = StaticProvider::new(Graph::complete(10));
        let assignment = round_robin_assignment(10, 6);
        let r = run_rlnc(&mut p, &assignment, 1, RunConfig::new().max_rounds(200));
        assert!(r.completed(), "dense static graph must decode quickly");
        assert!(r.completion_round.unwrap() <= 30);
        assert_eq!(r.k, 6);
    }

    #[test]
    fn completes_under_adversarial_churn() {
        let mut p = OneIntervalGen::new(24, true, 4, 5);
        let assignment = round_robin_assignment(24, 5);
        let r = run_rlnc(&mut p, &assignment, 2, RunConfig::new().max_rounds(500));
        assert!(r.completed(), "RLNC tolerates 1-interval churn w.h.p.");
    }

    #[test]
    fn completes_on_t_interval_adversary() {
        let mut p = TIntervalGen::new(30, 6, BackboneKind::Path, 6, 8);
        let assignment = round_robin_assignment(30, 8);
        let r = run_rlnc(&mut p, &assignment, 3, RunConfig::new().max_rounds(1000));
        assert!(r.completed());
    }

    #[test]
    fn zero_tokens_complete_immediately() {
        let mut p = StaticProvider::new(Graph::complete(4));
        let assignment = vec![vec![]; 4];
        let r = run_rlnc(&mut p, &assignment, 0, RunConfig::new().max_rounds(10));
        assert_eq!(r.completion_round, Some(0));
        assert_eq!(r.packets_sent, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = OneIntervalGen::new(16, false, 3, 9);
            let assignment = round_robin_assignment(16, 4);
            run_rlnc(&mut p, &assignment, seed, RunConfig::new().max_rounds(200))
        };
        let (a, b, c) = (run(4), run(4), run(1));
        assert_eq!(a.completion_round, b.completion_round);
        assert_eq!(a.packets_sent, b.packets_sent);
        assert!(
            c.completion_round != a.completion_round || c.packets_sent != a.packets_sent,
            "different seed should differ somewhere"
        );
    }

    #[test]
    fn byte_cost_includes_coefficient_header() {
        let r = RlncReport {
            completion_round: Some(3),
            rounds_executed: 3,
            packets_sent: 10,
            retransmits: 0,
            k: 16,
        };
        let w = CostWeights {
            token_bytes: 16,
            packet_header_bytes: 24,
        };
        // 16 bits of coefficients = 2 bytes per packet.
        assert_eq!(r.total_bytes(w), 10 * (16 + 2 + 24));
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_costs() {
        use hinet_rt::obs::{Event, ObsConfig, TraceSummary};

        let run = |tracer: &mut Tracer| {
            let mut p = OneIntervalGen::new(16, false, 3, 9);
            let assignment = round_robin_assignment(16, 4);
            run_rlnc(
                &mut p,
                &assignment,
                4,
                RunConfig::new().max_rounds(200).tracer(tracer),
            )
        };
        let plain = run(&mut Tracer::disabled());
        let mut tracer = Tracer::new(ObsConfig::full());
        let traced = run(&mut tracer);
        // The tracer never touches the RNG streams.
        assert_eq!(plain.completion_round, traced.completion_round);
        assert_eq!(plain.packets_sent, traced.packets_sent);

        let c = tracer.counters();
        assert_eq!(c.rounds, traced.rounds_executed as u64);
        assert_eq!(c.packets_sent, traced.packets_sent);
        assert_eq!(
            c.tokens_sent, traced.packets_sent,
            "one token-equivalent per packet"
        );
        assert_eq!(
            c.tokens_by_role,
            [0, 0, traced.packets_sent],
            "RLNC is flat"
        );
        assert_eq!(
            c.bytes_sent,
            traced.total_bytes(CostWeights::default()),
            "per-packet bytes include the coefficient header"
        );
        let s = TraceSummary::from_tracer(&tracer);
        assert_eq!(s.completed, Some(true));
        assert!(
            tracer
                .events()
                .all(|e| !matches!(e.event, Event::TokenPush { .. })),
            "coded packets are broadcasts, never pushes"
        );
    }

    #[test]
    fn lossy_rlnc_still_completes_and_reports_faults() {
        use hinet_rt::obs::ObsConfig;

        let run = |faults: &FaultPlan, tracer: &mut Tracer| {
            let mut p = StaticProvider::new(Graph::complete(10));
            let assignment = round_robin_assignment(10, 4);
            run_rlnc(
                &mut p,
                &assignment,
                1,
                RunConfig::new()
                    .max_rounds(400)
                    .faults(faults.clone())
                    .tracer(tracer),
            )
        };
        let clean = run(&FaultPlan::none(), &mut Tracer::disabled());
        let faults = FaultPlan::new(3).with_loss_ppm(200_000);
        let mut tracer = Tracer::new(ObsConfig::full());
        let lossy = run(&faults, &mut tracer);
        // Coded redundancy absorbs 20% loss; it just takes longer.
        assert!(lossy.completed());
        assert!(lossy.completion_round.unwrap() >= clean.completion_round.unwrap());
        assert!(tracer.counters().faults_injected > 0);

        // Replay: same plan, same counters.
        let mut again = Tracer::new(ObsConfig::full());
        let replay = run(&faults, &mut again);
        assert_eq!(replay.packets_sent, lossy.packets_sent);
        assert_eq!(
            again.counters().faults_injected,
            tracer.counters().faults_injected
        );
    }

    #[test]
    fn trivial_fault_plan_is_identical_to_plain_rlnc() {
        let mut p = OneIntervalGen::new(16, false, 3, 9);
        let assignment = round_robin_assignment(16, 4);
        let plain = run_rlnc(&mut p, &assignment, 4, RunConfig::new().max_rounds(200));
        let mut p = OneIntervalGen::new(16, false, 3, 9);
        let faulted = run_rlnc(
            &mut p,
            &assignment,
            4,
            RunConfig::new().max_rounds(200).faults(FaultPlan::none()),
        );
        assert_eq!(plain.completion_round, faulted.completion_round);
        assert_eq!(plain.packets_sent, faulted.packets_sent);
    }

    #[test]
    fn crashed_rlnc_node_loses_volatile_basis_and_recovers() {
        use hinet_rt::obs::ObsConfig;

        let mut p = StaticProvider::new(Graph::complete(8));
        let assignment = round_robin_assignment(8, 4);
        let faults = FaultPlan::new(0).with_crash_at(0, 3).with_down_rounds(2);
        let mut tracer = Tracer::new(ObsConfig::full());
        let r = run_rlnc(
            &mut p,
            &assignment,
            1,
            RunConfig::new()
                .max_rounds(400)
                .faults(faults)
                .tracer(&mut tracer),
        );
        assert!(r.completed(), "a dense graph re-fills the lost basis");
        let c = tracer.counters();
        assert_eq!(c.crashes, 1);
        assert_eq!(c.recoveries, 1);
    }

    #[test]
    fn min_rank_is_monotone() {
        let mut p = StaticProvider::new(Graph::cycle(12));
        let assignment = round_robin_assignment(12, 6);
        let series = rank_progress(&mut p, &assignment, 60, 7);
        for w in series.windows(2) {
            assert!(w[1] >= w[0], "min rank must never decrease");
        }
        assert_eq!(*series.last().unwrap(), 6, "eventually full rank");
    }
}
