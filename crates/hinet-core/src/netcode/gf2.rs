//! GF(2) linear algebra for random linear network coding.
//!
//! Coded packets are coefficient vectors over GF(2) indexed by token; a
//! node's knowledge is the row space of the vectors it has received. The
//! basis is kept in **reduced row-echelon form** so rank queries, decoded
//! token extraction and random recombination are all cheap.

use hinet_rt::rng::Rng;

/// A coefficient vector over GF(2), `k` bits packed into `u64` words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gf2Vec {
    bits: Vec<u64>,
    k: usize,
}

impl Gf2Vec {
    /// The zero vector of length `k`.
    pub fn zero(k: usize) -> Self {
        Gf2Vec {
            bits: vec![0; k.div_ceil(64)],
            k,
        }
    }

    /// The unit vector `e_i`.
    ///
    /// # Panics
    /// Panics if `i ≥ k`.
    pub fn unit(k: usize, i: usize) -> Self {
        assert!(i < k, "unit index {i} out of range for k={k}");
        let mut v = Self::zero(k);
        v.set(i);
        v
    }

    /// Vector length `k`.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether every coefficient is zero.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Coefficient `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Set coefficient `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// In-place XOR (GF(2) addition).
    pub fn add_assign(&mut self, other: &Gf2Vec) {
        debug_assert_eq!(self.k, other.k);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a ^= b;
        }
    }

    /// Index of the lowest set bit (the pivot under our ordering), or
    /// `None` for the zero vector.
    pub fn leading(&self) -> Option<usize> {
        for (w, &word) in self.bits.iter().enumerate() {
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                return (idx < self.k).then_some(idx);
            }
        }
        None
    }

    /// Number of set coefficients.
    pub fn weight(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A GF(2) row basis in reduced row-echelon form.
///
/// Invariants: rows are sorted by pivot; each pivot column is zero in all
/// other rows (full reduction), so a decoded token is exactly a row of
/// weight 1.
#[derive(Clone, Debug, Default)]
pub struct Gf2Basis {
    k: usize,
    rows: Vec<Gf2Vec>,
}

impl Gf2Basis {
    /// Empty basis over `k` tokens.
    pub fn new(k: usize) -> Self {
        Gf2Basis {
            k,
            rows: Vec::new(),
        }
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Whether the basis spans the full space (every token decodable).
    pub fn is_complete(&self) -> bool {
        self.rows.len() == self.k
    }

    /// Insert a vector; returns `true` iff it was linearly independent of
    /// the current basis (rank increased).
    pub fn insert(&mut self, mut v: Gf2Vec) -> bool {
        debug_assert_eq!(v.len(), self.k);
        // Forward-reduce by existing pivots.
        for row in &self.rows {
            let p = row.leading().expect("basis rows are nonzero");
            if v.get(p) {
                v.add_assign(row);
            }
        }
        let Some(pivot) = v.leading() else {
            return false;
        };
        // Back-reduce existing rows by the new pivot.
        for row in &mut self.rows {
            if row.get(pivot) {
                row.add_assign(&v);
            }
        }
        let pos = self
            .rows
            .binary_search_by_key(&pivot, |r| r.leading().expect("nonzero"))
            .unwrap_err();
        self.rows.insert(pos, v);
        true
    }

    /// Token indices currently decodable (unit rows of the RREF).
    pub fn decoded(&self) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|r| r.weight() == 1)
            .map(|r| r.leading().expect("nonzero"))
            .collect()
    }

    /// A uniformly random nonzero combination of the basis rows, or `None`
    /// if the basis is empty. This is the packet an RLNC node transmits.
    pub fn random_combination(&self, rng: &mut impl Rng) -> Option<Gf2Vec> {
        if self.rows.is_empty() {
            return None;
        }
        loop {
            let mut out = Gf2Vec::zero(self.k);
            let mut any = false;
            for row in &self.rows {
                if rng.random_bool(0.5) {
                    out.add_assign(row);
                    any = true;
                }
            }
            if any && !out.is_empty() {
                return Some(out);
            }
            // All-coins-tails (probability 2^-rank): redraw.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_rt::rng::Xoshiro256StarStar;

    fn vec_of(k: usize, idxs: &[usize]) -> Gf2Vec {
        let mut v = Gf2Vec::zero(k);
        for &i in idxs {
            v.set(i);
        }
        v
    }

    #[test]
    fn unit_vectors_and_bits() {
        let v = Gf2Vec::unit(70, 65);
        assert!(v.get(65));
        assert!(!v.get(64));
        assert_eq!(v.leading(), Some(65));
        assert_eq!(v.weight(), 1);
        assert!(Gf2Vec::zero(70).is_empty());
        assert_eq!(Gf2Vec::zero(70).leading(), None);
    }

    #[test]
    fn xor_addition() {
        let mut a = vec_of(8, &[0, 3, 5]);
        a.add_assign(&vec_of(8, &[3, 4]));
        assert_eq!(a, vec_of(8, &[0, 4, 5]));
    }

    #[test]
    fn rank_grows_only_on_independence() {
        let mut b = Gf2Basis::new(4);
        assert!(b.insert(vec_of(4, &[0, 1])));
        assert!(b.insert(vec_of(4, &[1, 2])));
        assert!(!b.insert(vec_of(4, &[0, 2])), "sum of the first two");
        assert_eq!(b.rank(), 2);
        assert!(b.insert(vec_of(4, &[3])));
        assert!(!b.is_complete());
        assert!(b.insert(vec_of(4, &[2])));
        assert!(b.is_complete());
        assert!(!b.insert(vec_of(4, &[0, 1, 2, 3])), "full space now");
    }

    #[test]
    fn zero_vector_never_inserts() {
        let mut b = Gf2Basis::new(5);
        assert!(!b.insert(Gf2Vec::zero(5)));
        assert_eq!(b.rank(), 0);
    }

    #[test]
    fn decoding_appears_with_rref() {
        let mut b = Gf2Basis::new(3);
        b.insert(vec_of(3, &[0, 1]));
        b.insert(vec_of(3, &[1, 2]));
        assert_eq!(
            b.decoded(),
            Vec::<usize>::new(),
            "rank 2 of 3: nothing isolated"
        );
        b.insert(vec_of(3, &[2]));
        let mut d = b.decoded();
        d.sort_unstable();
        assert_eq!(d, vec![0, 1, 2], "full rank decodes everything");
    }

    #[test]
    fn partial_decoding_of_disjoint_blocks() {
        // e0 known directly; {1,2} only entangled.
        let mut b = Gf2Basis::new(3);
        b.insert(vec_of(3, &[0]));
        b.insert(vec_of(3, &[1, 2]));
        assert_eq!(b.decoded(), vec![0]);
    }

    #[test]
    fn random_combination_stays_in_span() {
        let mut b = Gf2Basis::new(6);
        b.insert(vec_of(6, &[0, 2]));
        b.insert(vec_of(6, &[3]));
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..50 {
            let c = b.random_combination(&mut rng).unwrap();
            // Inserting a span element never raises the rank.
            let mut probe = b.clone();
            assert!(!probe.insert(c));
        }
        assert!(Gf2Basis::new(4).random_combination(&mut rng).is_none());
    }

    #[test]
    fn wide_vectors_cross_word_boundaries() {
        let k = 200;
        let mut b = Gf2Basis::new(k);
        for i in (0..k).rev() {
            assert!(b.insert(Gf2Vec::unit(k, i)));
        }
        assert!(b.is_complete());
        assert_eq!(b.decoded().len(), k);
    }
}
