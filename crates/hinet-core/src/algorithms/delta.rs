//! Delta-triggered flooding — a *negative* baseline.

use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{TokenId, TokenSet};

/// Flooding with quiescence: a node broadcasts its whole `TA` in round 0
/// and in any round after its `TA` grew — then goes silent.
///
/// This is the "obvious optimisation" of the KLO 1-interval baseline, and
/// it is **incorrect** in adversarially dynamic networks: 1-interval
/// connectivity only promises that *some* informed node borders the
/// uninformed set each round, not that a *recently-informed* (hence still
/// talking) one does. An adversary can always route the cut through
/// long-quiesced nodes and starve a victim forever (see the crafted
/// counterexample in this module's tests and experiment E13).
///
/// On benign (random) dynamics it completes with far less traffic than
/// full flooding — exactly the gap the paper closes *soundly*: HiNet gets
/// comparable savings while keeping the delivery guarantee, by pinning the
/// broadcast duty to a backbone whose stability the model demands.
#[derive(Clone, Debug)]
pub struct DeltaFlood {
    rounds: usize,
    ta: TokenSet,
    grew: bool,
    done: bool,
}

impl DeltaFlood {
    /// Delta-flood for at most `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        DeltaFlood {
            rounds,
            ta: TokenSet::new(),
            grew: true, // round 0 counts as "news": initial tokens.
            done: false,
        }
    }
}

impl Protocol for DeltaFlood {
    fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
        self.ta.extend(initial.iter().copied());
        self.grew = !self.ta.is_empty();
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.rounds {
            self.done = true;
            return vec![];
        }
        if !self.grew || self.ta.is_empty() {
            return vec![];
        }
        self.grew = false;
        vec![Outgoing::broadcast_set(&self.ta)]
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            for t in m.payload.iter() {
                if self.ta.insert(t) {
                    self.grew = true;
                }
            }
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.rounds);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_cluster::hierarchy::Role;

    fn view<'a>(round: usize, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me: NodeId(0),
            round,
            role: Role::Member,
            cluster: None,
            head: None,
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn broadcasts_only_after_growth() {
        let mut p = DeltaFlood::new(10);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        assert_eq!(p.send(&view(0, &nbrs)).len(), 1, "round 0: initial news");
        assert!(p.send(&view(1, &nbrs)).is_empty(), "no growth, silent");
        p.receive(
            &view(1, &nbrs),
            &[Incoming::one(NodeId(1), false, TokenId(2))],
        );
        assert_eq!(p.send(&view(2, &nbrs)).len(), 1, "grew, speaks again");
        assert!(p.send(&view(3, &nbrs)).is_empty());
    }

    #[test]
    fn relearning_known_token_is_not_growth() {
        let mut p = DeltaFlood::new(10);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        let _ = p.send(&view(0, &nbrs));
        p.receive(
            &view(0, &nbrs),
            &[Incoming::one(NodeId(1), false, TokenId(1))],
        );
        assert!(p.send(&view(1, &nbrs)).is_empty());
    }

    #[test]
    fn empty_start_stays_silent() {
        let mut p = DeltaFlood::new(5);
        p.on_start(NodeId(0), &[]);
        assert!(p.send(&view(0, &[NodeId(1)])).is_empty());
    }
}
