//! k-active flooding (Baumann, Crescenzi & Fraigniaud).

use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{TokenId, TokenSet};
use std::collections::BTreeMap;

/// Parsimonious ("k-active") flooding: a node forwards each token for only
/// `activity` consecutive rounds after first learning it, then retires it.
///
/// This is the related-work baseline from Baumann et al. (PODC 2009) the
/// paper cites: cheaper than full flooding because old tokens stop
/// circulating, but without the deterministic completeness guarantee under
/// adversarial churn (a retired token cannot reach a node that was
/// persistently cut off while it was active). The extension experiments use
/// it as the "middle ground" between full flooding and HiNet.
#[derive(Clone, Debug)]
pub struct KActiveFlood {
    activity: usize,
    max_rounds: usize,
    ta: TokenSet,
    /// Remaining active rounds per token.
    active: BTreeMap<TokenId, usize>,
    done: bool,
}

impl KActiveFlood {
    /// Flood each token for `activity ≥ 1` rounds, stopping the node after
    /// `max_rounds` regardless.
    ///
    /// # Panics
    /// Panics if `activity == 0`.
    pub fn new(activity: usize, max_rounds: usize) -> Self {
        assert!(activity >= 1, "tokens must be active at least one round");
        KActiveFlood {
            activity,
            max_rounds,
            ta: TokenSet::new(),
            active: BTreeMap::new(),
            done: false,
        }
    }
}

impl Protocol for KActiveFlood {
    fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
        for &t in initial {
            self.ta.insert(t);
            self.active.insert(t, self.activity);
        }
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.max_rounds {
            self.done = true;
            return vec![];
        }
        if self.active.is_empty() {
            return vec![];
        }
        let payload: TokenSet = self.active.keys().copied().collect();
        // Age the batch that was just sent.
        self.active.retain(|_, left| {
            *left -= 1;
            *left > 0
        });
        vec![Outgoing::broadcast_set(&payload)]
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            for t in m.payload.iter() {
                if self.ta.insert(t) {
                    self.active.insert(t, self.activity);
                }
            }
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done || self.active.is_empty()
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.activity, self.max_rounds);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_cluster::hierarchy::Role;

    fn view<'a>(round: usize, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me: NodeId(0),
            round,
            role: Role::Member,
            cluster: None,
            head: None,
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn token_retires_after_activity_rounds() {
        let mut p = KActiveFlood::new(2, 100);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        assert_eq!(
            p.send(&view(0, &nbrs))[0].payload.to_vec(),
            vec![TokenId(1)]
        );
        assert_eq!(
            p.send(&view(1, &nbrs))[0].payload.to_vec(),
            vec![TokenId(1)]
        );
        assert!(p.send(&view(2, &nbrs)).is_empty(), "retired after 2 sends");
        assert!(p.finished(), "nothing active anymore");
        assert!(p.known().contains(&TokenId(1)), "still known");
    }

    #[test]
    fn relearning_does_not_reactivate() {
        let mut p = KActiveFlood::new(1, 100);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        let _ = p.send(&view(0, &nbrs));
        p.receive(
            &view(0, &nbrs),
            &[Incoming::one(NodeId(1), false, TokenId(1))],
        );
        assert!(
            p.send(&view(1, &nbrs)).is_empty(),
            "already-known token stays retired"
        );
    }

    #[test]
    fn fresh_token_becomes_active() {
        let mut p = KActiveFlood::new(3, 100);
        p.on_start(NodeId(0), &[]);
        let nbrs = [NodeId(1)];
        assert!(p.send(&view(0, &nbrs)).is_empty());
        p.receive(
            &view(0, &nbrs),
            &[Incoming::one(NodeId(1), false, TokenId(9))],
        );
        assert_eq!(
            p.send(&view(1, &nbrs))[0].payload.to_vec(),
            vec![TokenId(9)]
        );
    }

    #[test]
    #[should_panic(expected = "active at least one round")]
    fn zero_activity_rejected() {
        let _ = KActiveFlood::new(0, 10);
    }
}
