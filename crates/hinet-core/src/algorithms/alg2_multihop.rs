//! Multi-hop extension of Algorithm 2 for d-hop clusters (§VI future work).

use hinet_cluster::hierarchy::Role;
use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{TokenId, TokenSet};

/// Algorithm 2 generalised to **d-hop clusters**, where members may sit
/// several hops from their head and must both *relay upward* (their own
/// and their subtree's tokens toward the head) and *relay downward* (the
/// head's broadcasts toward deeper members).
///
/// Per-role behaviour:
///
/// * **Head / gateway** — broadcasts its whole `TA` every round, exactly
///   as in Algorithm 2.
/// * **Member** — unicasts its `TA` to its **parent** (the next hop toward
///   the head, from the cluster's BFS tree) whenever its affiliation is
///   fresh (round 0 or parent changed) **or its `TA` grew** in the
///   previous round; and it additionally **broadcasts** its `TA` in the
///   round after a growth, which carries the head's tokens down to deeper
///   tree levels.
///
/// Under a hierarchy stable for at least `d` consecutive rounds, each
/// token climbs one tree level per round via the parent unicasts and
/// descends one level per round via the growth-triggered member
/// broadcasts, so intra-cluster convergence needs ≤ 2d rounds per head
/// update. Member traffic is growth-bounded: a member transmits only
/// `O(k)` times per affiliation (its `TA` can grow at most `k` times),
/// versus every round for flooding. With `d = 1` the behaviour is
/// Algorithm 2 plus at most one extra member broadcast per growth —
/// the price of not knowing the cluster is flat.
#[derive(Clone, Debug)]
pub struct HiNetFullExchangeMH {
    rounds: usize,
    me: NodeId,
    ta: TokenSet,
    last_parent: Option<NodeId>,
    grew: bool,
    started: bool,
    done: bool,
}

impl HiNetFullExchangeMH {
    /// Multi-hop Algorithm 2 running for `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        HiNetFullExchangeMH {
            rounds,
            me: NodeId(0),
            ta: TokenSet::new(),
            last_parent: None,
            grew: false,
            started: false,
            done: false,
        }
    }
}

impl Protocol for HiNetFullExchangeMH {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        self.me = me;
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.rounds {
            self.done = true;
            return vec![];
        }
        let out = match view.role {
            Role::Head | Role::Gateway => {
                if self.ta.is_empty() {
                    vec![]
                } else {
                    vec![Outgoing::broadcast_set(&self.ta)]
                }
            }
            Role::Member => {
                let fresh = !self.started || self.last_parent != view.parent;
                let mut out = Vec::new();
                if !self.ta.is_empty() {
                    if fresh || self.grew {
                        if let Some(p) = view.parent {
                            out.push(Outgoing::unicast_set(p, &self.ta));
                        }
                    }
                    if self.grew {
                        // Downward relay: push the news to the subtree.
                        out.push(Outgoing::broadcast_set(&self.ta));
                    }
                }
                out
            }
        };
        self.started = true;
        self.last_parent = view.parent;
        self.grew = false;
        out
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            for t in m.payload.iter() {
                if self.ta.insert(t) {
                    self.grew = true;
                }
            }
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.rounds);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_cluster::hierarchy::ClusterId;

    fn deep_member_view<'a>(
        round: usize,
        head: NodeId,
        parent: NodeId,
        neighbors: &'a [NodeId],
    ) -> LocalView<'a> {
        LocalView {
            me: NodeId(9),
            round,
            role: Role::Member,
            cluster: Some(ClusterId(head)),
            head: Some(head),
            parent: Some(parent),
            neighbors,
        }
    }

    #[test]
    fn member_unicasts_to_parent_not_head() {
        let mut p = HiNetFullExchangeMH::new(10);
        p.on_start(NodeId(9), &[TokenId(4)]);
        let (head, parent) = (NodeId(0), NodeId(3));
        let nbrs = [parent];
        let out = p.send(&deep_member_view(0, head, parent, &nbrs));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].dest,
            hinet_sim::protocol::Destination::Unicast(parent)
        );
    }

    #[test]
    fn growth_triggers_upward_and_downward_relay() {
        let mut p = HiNetFullExchangeMH::new(10);
        p.on_start(NodeId(9), &[TokenId(1)]);
        let (head, parent) = (NodeId(0), NodeId(3));
        let nbrs = [parent, NodeId(5)];
        let v0 = deep_member_view(0, head, parent, &nbrs);
        let _ = p.send(&v0);
        p.receive(&v0, &[Incoming::one(parent, false, TokenId(7))]);
        let out = p.send(&deep_member_view(1, head, parent, &nbrs));
        assert_eq!(out.len(), 2, "unicast up + broadcast down");
        assert!(out
            .iter()
            .any(|o| o.dest == hinet_sim::protocol::Destination::Unicast(parent)));
        assert!(out
            .iter()
            .any(|o| o.dest == hinet_sim::protocol::Destination::Broadcast));
        // Quiet once nothing grows.
        assert!(p.send(&deep_member_view(2, head, parent, &nbrs)).is_empty());
    }

    #[test]
    fn parent_change_retriggers_upload() {
        let mut p = HiNetFullExchangeMH::new(10);
        p.on_start(NodeId(9), &[TokenId(2)]);
        let head = NodeId(0);
        let (p1, p2) = (NodeId(3), NodeId(4));
        let nbrs = [p1, p2];
        let _ = p.send(&deep_member_view(0, head, p1, &nbrs));
        assert!(p.send(&deep_member_view(1, head, p1, &nbrs)).is_empty());
        let out = p.send(&deep_member_view(2, head, p2, &nbrs));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, hinet_sim::protocol::Destination::Unicast(p2));
    }

    #[test]
    fn head_behaviour_matches_alg2() {
        let mut p = HiNetFullExchangeMH::new(3);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        let head_view = LocalView {
            me: NodeId(0),
            round: 0,
            role: Role::Head,
            cluster: Some(ClusterId(NodeId(0))),
            head: Some(NodeId(0)),
            parent: None,
            neighbors: &nbrs,
        };
        let out = p.send(&head_view);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, hinet_sim::protocol::Destination::Broadcast);
    }
}
