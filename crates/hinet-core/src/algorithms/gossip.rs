//! Randomised push gossip baseline.

use hinet_graph::graph::NodeId;
use hinet_graph::rng::{stream_rng, Rng, Xoshiro256StarStar};
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{TokenId, TokenSet};

/// Push gossip (Pittel-style rumor spreading adapted to dynamic graphs):
/// each round every node sends its whole `TA` to **one uniformly random
/// current neighbor**.
///
/// Gossip is the classic probabilistic alternative the paper's related-work
/// section surveys; it has no deterministic delivery guarantee in
/// adversarial dynamics, which is exactly the contrast the extension
/// experiments illustrate (it completes fast on benign topologies and can
/// stall against the worst-case path adversary).
#[derive(Debug)]
pub struct Gossip {
    rounds: usize,
    seed: u64,
    ta: TokenSet,
    rng: Xoshiro256StarStar,
    done: bool,
}

impl Gossip {
    /// Gossip for at most `rounds` rounds; per-node determinism derives
    /// from `(seed, node)` at [`Protocol::on_start`].
    pub fn new(rounds: usize, seed: u64) -> Self {
        Gossip {
            rounds,
            seed,
            ta: TokenSet::new(),
            rng: stream_rng(seed, 0),
            done: false,
        }
    }
}

impl Protocol for Gossip {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        self.rng = stream_rng(self.seed, me.0 as u64);
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.rounds {
            self.done = true;
            return vec![];
        }
        if self.ta.is_empty() || view.neighbors.is_empty() {
            return vec![];
        }
        let target = view.neighbors[self.rng.random_range(0..view.neighbors.len())];
        vec![Outgoing::unicast_set(target, &self.ta)]
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            m.payload.union_into(&mut self.ta);
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.rounds, self.seed);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_cluster::hierarchy::Role;
    use hinet_sim::protocol::Destination;

    fn view<'a>(round: usize, me: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me,
            round,
            role: Role::Member,
            cluster: None,
            head: None,
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn targets_are_neighbors() {
        let mut p = Gossip::new(50, 7);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(3), NodeId(8), NodeId(9)];
        for r in 0..50 {
            let out = p.send(&view(r, NodeId(0), &nbrs));
            assert_eq!(out.len(), 1);
            match out[0].dest {
                Destination::Unicast(t) => assert!(nbrs.contains(&t)),
                _ => panic!("gossip must unicast"),
            }
        }
    }

    #[test]
    fn eventually_uses_multiple_targets() {
        let mut p = Gossip::new(100, 11);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1), NodeId(2)];
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..100 {
            if let Destination::Unicast(t) = p.send(&view(r, NodeId(0), &nbrs))[0].dest {
                seen.insert(t);
            }
        }
        assert_eq!(
            seen.len(),
            2,
            "both neighbors should be picked over 100 rounds"
        );
    }

    #[test]
    fn silent_with_no_neighbors_or_tokens() {
        let mut p = Gossip::new(10, 3);
        p.on_start(NodeId(0), &[]);
        assert!(p.send(&view(0, NodeId(0), &[NodeId(1)])).is_empty());
        let mut q = Gossip::new(10, 3);
        q.on_start(NodeId(0), &[TokenId(1)]);
        assert!(q.send(&view(0, NodeId(0), &[])).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Destination> {
            let mut p = Gossip::new(20, seed);
            p.on_start(NodeId(4), &[TokenId(0)]);
            let nbrs = [NodeId(1), NodeId(2), NodeId(3)];
            (0..20)
                .map(|r| p.send(&view(r, NodeId(4), &nbrs))[0].dest.clone())
                .collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
