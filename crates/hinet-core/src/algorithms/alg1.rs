//! Algorithm 1: phase-based k-token dissemination in (T, L)-HiNet.

use crate::params::PhasePlan;
use hinet_cluster::hierarchy::Role;
use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{max_not_in, max_not_in_either, min_not_in, TokenId, TokenSet};

/// Algorithm 1 of the paper (Fig. 4): k-token dissemination in a
/// (T, L)-HiNet, `M` phases of `T` rounds each.
///
/// Per-role behaviour, as in the pseudocode:
///
/// * **Member** — at each phase start, if its cluster head changed, it
///   empties `TS` and `TR`. Each round it picks the *maximum-id* token in
///   `TA \ (TS ∪ TR)` (a token the current head provably does not yet know
///   via this member) and sends it to the head; tokens received from the
///   head go into `TA` and `TR`.
/// * **Head / gateway** — each round it picks the *minimum-id* token in
///   `TA \ TS` and broadcasts it; at each phase end it empties `TS`.
///
/// With `assume_stable_heads = true` the Remark 1 variant is selected:
/// members never reset `TS`/`TR` on re-affiliation (their collected tokens
/// were already delivered to the stable backbone in the first phase), which
/// removes the `n_m·n_r·k` re-send term from the communication cost.
///
/// Correct delivery is guaranteed by Theorem 1 when the plan uses
/// `T ≥ k + α·L` and `M ≥ ⌈θ/α⌉ + 1` (see [`crate::params::alg1_plan`]).
///
/// Nodes whose role changes across phases (head rotation) reset their
/// per-phase state at the phase boundary, which is exactly when a
/// (T, L)-HiNet permits the hierarchy to change.
///
/// # Retransmission recovery
///
/// With [`HiNetPhased::with_retransmit`] the protocol tolerates lossy links
/// and crash/restart faults that the paper's fault-free model rules out:
///
/// * a **member** that has pushed every token at least once falls back to
///   stop-and-wait ARQ — it re-pushes the largest token the head has not
///   yet echoed back (the head's broadcast doubles as the acknowledgement)
///   until the echo arrives;
/// * a **head** that has drained its broadcast queue starts another pass
///   over `TA` instead of going silent, so members that lost a broadcast
///   get it again within the same phase;
/// * Remark 1's never-re-send economy is suspended: a crash can replace a
///   "stable" head, so re-affiliated members must re-deliver.
///
/// Recovery messages are tagged via [`Outgoing::mark_retransmit`] so the
/// engine can count them separately; in a fault-free run the protocol's
/// primary sends are unchanged.
#[derive(Clone, Debug)]
pub struct HiNetPhased {
    plan: PhasePlan,
    assume_stable_heads: bool,
    retransmit: bool,
    recovery_pass: bool,
    me: NodeId,
    ta: TokenSet,
    ts: TokenSet,
    tr: TokenSet,
    last_head: Option<NodeId>,
    last_role: Option<Role>,
    done: bool,
}

impl HiNetPhased {
    /// Algorithm 1 with the given phase plan.
    pub fn new(plan: PhasePlan) -> Self {
        HiNetPhased {
            plan,
            assume_stable_heads: false,
            retransmit: false,
            recovery_pass: false,
            me: NodeId(0),
            ta: TokenSet::new(),
            ts: TokenSet::new(),
            tr: TokenSet::new(),
            last_head: None,
            last_role: None,
            done: false,
        }
    }

    /// The Remark 1 variant for ∞-interval stable head sets.
    pub fn remark1(plan: PhasePlan) -> Self {
        HiNetPhased {
            assume_stable_heads: true,
            ..Self::new(plan)
        }
    }

    /// The phase plan in force.
    pub fn plan(&self) -> PhasePlan {
        self.plan
    }

    /// Enable (or disable) retransmission recovery for lossy or crash-prone
    /// runs. See the type-level docs for the recovery rules.
    pub fn with_retransmit(mut self, on: bool) -> Self {
        self.retransmit = on;
        self
    }

    fn phase_start_bookkeeping(&mut self, view: &LocalView<'_>) {
        if !self.plan.is_phase_start(view.round) {
            return;
        }
        let role_changed = self.last_role.is_some_and(|r| r != view.role);
        match view.role {
            Role::Member => {
                let head_changed = self.last_head != view.head;
                // Remark 1's never-re-send rule presumes the backbone is
                // stable forever; under retransmission recovery a head change
                // may be a crash replacement, so the rule is suspended.
                let trust_stable_heads = self.assume_stable_heads && !self.retransmit;
                let must_reset = role_changed || (head_changed && !trust_stable_heads);
                if must_reset && view.round > 0 {
                    self.ts.clear();
                    self.tr.clear();
                }
            }
            Role::Head | Role::Gateway => {
                // A broadcaster starts each phase with a clean send-log; for
                // continuing heads this matches the pseudocode's phase-end
                // clear, and for freshly rotated-in heads it initialises it.
                self.ts.clear();
                self.recovery_pass = false;
            }
        }
        self.last_head = view.head;
        self.last_role = Some(view.role);
    }
}

impl Protocol for HiNetPhased {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        self.me = me;
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if self.plan.exhausted(view.round) {
            self.done = true;
            return vec![];
        }
        self.phase_start_bookkeeping(view);
        match view.role {
            Role::Member => {
                let Some(head) = view.head else {
                    return vec![];
                };
                debug_assert_ne!(head, self.me, "a member is not its own head");
                if let Some(t) = max_not_in_either(&self.ta, &self.ts, &self.tr) {
                    self.ts.insert(t);
                    return vec![Outgoing::unicast_one(head, t)];
                }
                if self.retransmit {
                    // ARQ fallback: every token went out once, but the head
                    // has not echoed all of them back — a push may have been
                    // lost, or the head may have restarted. Re-push the
                    // largest unacknowledged token until its echo arrives.
                    if let Some(t) = max_not_in(&self.ta, &self.tr) {
                        return vec![Outgoing::unicast_one(head, t).mark_retransmit()];
                    }
                }
                vec![]
            }
            Role::Head | Role::Gateway => {
                let mut pick = min_not_in(&self.ta, &self.ts);
                if pick.is_none() && self.retransmit && !self.ta.is_empty() {
                    // The broadcast queue drained, but under faults some
                    // deliveries may have been lost: start another pass over
                    // TA instead of going silent for the rest of the phase.
                    self.ts.clear();
                    self.recovery_pass = true;
                    pick = min_not_in(&self.ta, &self.ts);
                }
                match pick {
                    Some(t) => {
                        self.ts.insert(t);
                        let out = Outgoing::broadcast_one(t);
                        vec![if self.recovery_pass {
                            out.mark_retransmit()
                        } else {
                            out
                        }]
                    }
                    None => vec![],
                }
            }
        }
    }

    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            m.payload.union_into(&mut self.ta);
            if view.role == Role::Member && Some(m.from) == view.head {
                m.payload.union_into(&mut self.tr);
            }
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = HiNetPhased {
            assume_stable_heads: self.assume_stable_heads,
            retransmit: self.retransmit,
            ..Self::new(self.plan)
        };
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::alg1_plan;
    use hinet_cluster::hierarchy::ClusterId;

    fn member_view<'a>(round: usize, head: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me: NodeId(5),
            round,
            role: Role::Member,
            cluster: Some(ClusterId(head)),
            head: Some(head),
            parent: Some(head),
            neighbors,
        }
    }

    fn head_view<'a>(round: usize, me: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me,
            round,
            role: Role::Head,
            cluster: Some(ClusterId(me)),
            head: Some(me),
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn member_sends_max_id_unknown_token() {
        let plan = alg1_plan(3, 1, 1, 2);
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(5), &[TokenId(1), TokenId(7), TokenId(3)]);
        let head = NodeId(0);
        let nbrs = [head];
        let out = p.send(&member_view(0, head, &nbrs));
        assert_eq!(out, vec![Outgoing::unicast_one(head, TokenId(7))]);
        let out = p.send(&member_view(1, head, &nbrs));
        assert_eq!(out, vec![Outgoing::unicast_one(head, TokenId(3))]);
        let out = p.send(&member_view(2, head, &nbrs));
        assert_eq!(out, vec![Outgoing::unicast_one(head, TokenId(1))]);
        // Everything sent: silence.
        assert!(p.send(&member_view(3, head, &nbrs)).is_empty());
    }

    #[test]
    fn member_skips_tokens_received_from_head() {
        let plan = alg1_plan(4, 1, 1, 2);
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(5), &[TokenId(2)]);
        let head = NodeId(0);
        let nbrs = [head];
        // Head broadcasts token 9 to us in round 0.
        let view = member_view(0, head, &nbrs);
        let _ = p.send(&view);
        p.receive(&view, &[Incoming::one(head, false, TokenId(9))]);
        // Round 1: token 9 is in TR — head already knows it; nothing to send
        // (2 already sent in round 0).
        assert!(p.send(&member_view(1, head, &nbrs)).is_empty());
        assert!(p.known().contains(&TokenId(9)));
    }

    #[test]
    fn head_broadcasts_min_id_first() {
        let plan = alg1_plan(3, 1, 1, 2);
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(5), TokenId(2)]);
        let nbrs = [NodeId(1), NodeId(2)];
        let out = p.send(&head_view(0, NodeId(0), &nbrs));
        assert_eq!(out, vec![Outgoing::broadcast_one(TokenId(2))]);
        let out = p.send(&head_view(1, NodeId(0), &nbrs));
        assert_eq!(out, vec![Outgoing::broadcast_one(TokenId(5))]);
        assert!(p.send(&head_view(2, NodeId(0), &nbrs)).is_empty());
    }

    #[test]
    fn head_rebroadcasts_each_phase() {
        // T = 3+1·1 = 4, so phase 1 starts at round 4.
        let plan = alg1_plan(3, 1, 1, 3);
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        assert_eq!(
            p.send(&head_view(0, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(1))]
        );
        assert!(p.send(&head_view(1, NodeId(0), &nbrs)).is_empty());
        assert!(p.send(&head_view(3, NodeId(0), &nbrs)).is_empty());
        // New phase: TS cleared, token 1 goes out again.
        assert_eq!(
            p.send(&head_view(4, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(1))]
        );
    }

    #[test]
    fn member_resends_after_head_change() {
        let plan = alg1_plan(2, 1, 1, 3); // T = 3
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(5), &[TokenId(4)]);
        let (h1, h2) = (NodeId(0), NodeId(1));
        let nbrs = [h1, h2];
        assert_eq!(
            p.send(&member_view(0, h1, &nbrs)),
            vec![Outgoing::unicast_one(h1, TokenId(4))]
        );
        assert!(p.send(&member_view(1, h1, &nbrs)).is_empty());
        // Phase 1 (round 3) with a new head: TS/TR reset, token resent.
        assert_eq!(
            p.send(&member_view(3, h2, &nbrs)),
            vec![Outgoing::unicast_one(h2, TokenId(4))]
        );
    }

    #[test]
    fn remark1_member_does_not_resend_after_head_change() {
        let plan = alg1_plan(2, 1, 1, 3);
        let mut p = HiNetPhased::remark1(plan);
        p.on_start(NodeId(5), &[TokenId(4)]);
        let (h1, h2) = (NodeId(0), NodeId(1));
        let nbrs = [h1, h2];
        assert_eq!(
            p.send(&member_view(0, h1, &nbrs)),
            vec![Outgoing::unicast_one(h1, TokenId(4))]
        );
        assert!(p.send(&member_view(3, h2, &nbrs)).is_empty());
        assert!(p.send(&member_view(6, h1, &nbrs)).is_empty());
    }

    #[test]
    fn exhausted_plan_goes_silent() {
        let plan = PhasePlan {
            rounds_per_phase: 2,
            phases: 1,
        };
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(0)]);
        let nbrs = [NodeId(1)];
        assert!(!p.send(&head_view(0, NodeId(0), &nbrs)).is_empty());
        assert!(p.send(&head_view(2, NodeId(0), &nbrs)).is_empty());
        assert!(p.send(&head_view(100, NodeId(0), &nbrs)).is_empty());
    }

    #[test]
    fn retransmit_member_re_pushes_until_acknowledged() {
        let plan = alg1_plan(4, 1, 1, 2); // T = 5
        let mut p = HiNetPhased::new(plan).with_retransmit(true);
        p.on_start(NodeId(5), &[TokenId(3)]);
        let head = NodeId(0);
        let nbrs = [head];
        // Primary push: unmarked.
        let out = p.send(&member_view(0, head, &nbrs));
        assert_eq!(out, vec![Outgoing::unicast_one(head, TokenId(3))]);
        // No echo yet: ARQ fallback re-pushes, marked as a retransmission.
        let out = p.send(&member_view(1, head, &nbrs));
        assert_eq!(out.len(), 1);
        assert!(out[0].retransmit);
        assert_eq!(out[0].payload.to_vec(), vec![TokenId(3)]);
        // The head's broadcast echoes token 3 — acknowledged, so silence.
        let view = member_view(1, head, &nbrs);
        p.receive(&view, &[Incoming::one(head, false, TokenId(3))]);
        assert!(p.send(&member_view(2, head, &nbrs)).is_empty());
    }

    #[test]
    fn retransmit_head_restarts_broadcast_pass_instead_of_going_silent() {
        let plan = alg1_plan(4, 1, 1, 2); // T = 5
        let mut p = HiNetPhased::new(plan).with_retransmit(true);
        p.on_start(NodeId(0), &[TokenId(1), TokenId(2)]);
        let nbrs = [NodeId(1)];
        // Primary pass: min-id first, unmarked.
        let out = p.send(&head_view(0, NodeId(0), &nbrs));
        assert_eq!(out, vec![Outgoing::broadcast_one(TokenId(1))]);
        let out = p.send(&head_view(1, NodeId(0), &nbrs));
        assert_eq!(out, vec![Outgoing::broadcast_one(TokenId(2))]);
        // Queue drained: recovery pass restarts from the minimum, marked.
        let out = p.send(&head_view(2, NodeId(0), &nbrs));
        assert_eq!(out.len(), 1);
        assert!(out[0].retransmit);
        assert_eq!(out[0].payload.to_vec(), vec![TokenId(1)]);
        let out = p.send(&head_view(3, NodeId(0), &nbrs));
        assert!(out[0].retransmit);
        assert_eq!(out[0].payload.to_vec(), vec![TokenId(2)]);
    }

    #[test]
    fn retransmit_suspends_remark1_resend_economy() {
        let plan = alg1_plan(2, 1, 1, 3);
        let mut p = HiNetPhased::remark1(plan).with_retransmit(true);
        p.on_start(NodeId(5), &[TokenId(4)]);
        let (h1, h2) = (NodeId(0), NodeId(1));
        let nbrs = [h1, h2];
        assert_eq!(
            p.send(&member_view(0, h1, &nbrs)),
            vec![Outgoing::unicast_one(h1, TokenId(4))]
        );
        // Under plain Remark 1 this send would be skipped; a head change may
        // now be a crash replacement, so the token must be re-delivered.
        let out = p.send(&member_view(3, h2, &nbrs));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.to_vec(), vec![TokenId(4)]);
    }

    #[test]
    fn duplicate_pushes_from_restarted_member_do_not_poison_head_send_log() {
        // A member crashes mid-phase, restarts with volatile state lost and
        // re-pushes a token the head already received and broadcast. The
        // head's min-id-first selection must skip it — no re-broadcast, no
        // panic, and the rest of the queue still drains in order.
        let plan = alg1_plan(4, 1, 1, 2); // T = 5
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(2), TokenId(6)]);
        let nbrs = [NodeId(1)];
        let view = head_view(0, NodeId(0), &nbrs);
        assert_eq!(p.send(&view), vec![Outgoing::broadcast_one(TokenId(2))]);
        // The restarted member re-delivers token 2 (already in TA and TS).
        p.receive(&view, &[Incoming::one(NodeId(1), true, TokenId(2))]);
        // Selection skips the duplicate and moves on to token 6.
        assert_eq!(
            p.send(&head_view(1, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(6))]
        );
        assert!(p.send(&head_view(2, NodeId(0), &nbrs)).is_empty());
    }

    #[test]
    fn member_crash_restart_resends_from_initial_tokens() {
        // Simulate the engine's crash/restart: a fresh protocol instance is
        // started with the retained (initial) tokens mid-phase. Its clean
        // TS/TR must make it re-push from scratch without tripping the
        // phase-start bookkeeping.
        let plan = alg1_plan(4, 1, 1, 2);
        let mut p = HiNetPhased::new(plan).with_retransmit(true);
        p.on_start(NodeId(5), &[TokenId(8)]);
        let head = NodeId(0);
        let nbrs = [head];
        let _ = p.send(&member_view(0, head, &nbrs)); // TS = {8}
        let mut restarted = HiNetPhased::new(plan).with_retransmit(true);
        restarted.on_start(NodeId(5), &[TokenId(8)]);
        // Restarted mid-phase (round 2, not a phase boundary).
        let out = restarted.send(&member_view(2, head, &nbrs));
        assert_eq!(out, vec![Outgoing::unicast_one(head, TokenId(8))]);
    }

    #[test]
    fn role_switch_member_to_head_resets_send_log() {
        let plan = alg1_plan(2, 1, 1, 3); // T = 3
        let mut p = HiNetPhased::new(plan);
        p.on_start(NodeId(5), &[TokenId(4)]);
        let h1 = NodeId(0);
        let nbrs = [h1];
        let _ = p.send(&member_view(0, h1, &nbrs)); // sends 4, TS = {4}
                                                    // Next phase this node is a head; it must broadcast 4 despite TS.
        let out = p.send(&head_view(3, NodeId(5), &nbrs));
        assert_eq!(out, vec![Outgoing::broadcast_one(TokenId(4))]);
    }
}
