//! The flat Kuhn–Lynch–Oshman baselines of Table 2.

use crate::params::PhasePlan;
use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{min_not_in, TokenId, TokenSet};

/// The KLO T-interval-connected k-token dissemination baseline: `M` phases
/// of `T` rounds; **every** node, regardless of role, broadcasts per round
/// the minimum-id token it has not yet broadcast this phase, and clears its
/// send-log at phase boundaries.
///
/// This is exactly Algorithm 1's head/gateway behaviour applied to a flat
/// network — the paper's Table 2 derives the baseline's `⌈n₀/2α⌉·n₀·k`
/// communication from every node broadcasting up to `k` tokens per phase.
/// Use [`crate::params::klo_plan`] for the Table 2 parameterisation.
#[derive(Clone, Debug)]
pub struct KloPhased {
    plan: PhasePlan,
    ta: TokenSet,
    ts: TokenSet,
    done: bool,
}

impl KloPhased {
    /// KLO baseline with the given plan.
    pub fn new(plan: PhasePlan) -> Self {
        KloPhased {
            plan,
            ta: TokenSet::new(),
            ts: TokenSet::new(),
            done: false,
        }
    }
}

impl Protocol for KloPhased {
    fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if self.plan.exhausted(view.round) {
            self.done = true;
            return vec![];
        }
        if self.plan.is_phase_start(view.round) {
            self.ts.clear();
        }
        match min_not_in(&self.ta, &self.ts) {
            Some(t) => {
                self.ts.insert(t);
                vec![Outgoing::broadcast_one(t)]
            }
            None => vec![],
        }
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            m.payload.union_into(&mut self.ta);
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.plan);
        self.on_start(me, retained);
    }
}

/// The KLO 1-interval-connected baseline: every node broadcasts its entire
/// `TA` every round for `n − 1` rounds — the token-forwarding flooding whose
/// `(n₀−1)·n₀·k` cost anchors Table 2's third row.
#[derive(Clone, Debug)]
pub struct KloFlood {
    rounds: usize,
    ta: TokenSet,
    done: bool,
}

impl KloFlood {
    /// Flood for `rounds` rounds (Theorem: `n − 1` suffices under
    /// 1-interval connectivity).
    pub fn new(rounds: usize) -> Self {
        KloFlood {
            rounds,
            ta: TokenSet::new(),
            done: false,
        }
    }
}

impl Protocol for KloFlood {
    fn on_start(&mut self, _me: NodeId, initial: &[TokenId]) {
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.rounds {
            self.done = true;
            return vec![];
        }
        if self.ta.is_empty() {
            vec![]
        } else {
            vec![Outgoing::broadcast_set(&self.ta)]
        }
    }

    fn receive(&mut self, _view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            m.payload.union_into(&mut self.ta);
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.rounds);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::klo_plan;
    use hinet_cluster::hierarchy::Role;

    fn flat_view<'a>(round: usize, me: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        // Baselines ignore the hierarchy; any role works.
        LocalView {
            me,
            round,
            role: Role::Member,
            cluster: None,
            head: None,
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn klo_phased_min_id_order_and_phase_reset() {
        let plan = klo_plan(2, 1, 1, 3); // T = 3, phases = 3
        let mut p = KloPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(9), TokenId(4)]);
        let nbrs = [NodeId(1)];
        assert_eq!(
            p.send(&flat_view(0, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(4))]
        );
        assert_eq!(
            p.send(&flat_view(1, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(9))]
        );
        assert!(p.send(&flat_view(2, NodeId(0), &nbrs)).is_empty());
        // New phase at round 3: log reset.
        assert_eq!(
            p.send(&flat_view(3, NodeId(0), &nbrs)),
            vec![Outgoing::broadcast_one(TokenId(4))]
        );
    }

    #[test]
    fn klo_phased_exhaustion() {
        let plan = PhasePlan {
            rounds_per_phase: 2,
            phases: 2,
        };
        let mut p = KloPhased::new(plan);
        p.on_start(NodeId(0), &[TokenId(0)]);
        let nbrs = [NodeId(1)];
        assert!(!p.send(&flat_view(0, NodeId(0), &nbrs)).is_empty());
        assert!(p.send(&flat_view(4, NodeId(0), &nbrs)).is_empty());
        assert!(p.finished());
    }

    #[test]
    fn klo_flood_sends_whole_ta() {
        let mut p = KloFlood::new(3);
        p.on_start(NodeId(0), &[TokenId(1)]);
        let nbrs = [NodeId(1)];
        let view = flat_view(0, NodeId(0), &nbrs);
        assert_eq!(p.send(&view)[0].payload.to_vec(), vec![TokenId(1)]);
        p.receive(&view, &[Incoming::one(NodeId(1), false, TokenId(5))]);
        assert_eq!(
            p.send(&flat_view(1, NodeId(0), &nbrs))[0].payload.to_vec(),
            vec![TokenId(1), TokenId(5)]
        );
        assert!(p.send(&flat_view(3, NodeId(0), &nbrs)).is_empty());
        assert!(p.finished());
    }
}
