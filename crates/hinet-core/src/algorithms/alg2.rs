//! Algorithm 2: full-`TA` k-token dissemination in (1, L)-HiNet.

use hinet_cluster::hierarchy::Role;
use hinet_graph::graph::NodeId;
use hinet_sim::protocol::{Incoming, LocalView, Outgoing, Protocol};
use hinet_sim::token::{TokenId, TokenSet};

/// Algorithm 2 of the paper (Fig. 5): dissemination under the weakest
/// hierarchy stability, (1, L)-HiNet, where the hierarchy may change every
/// round.
///
/// * **Head / gateway** — broadcasts its whole `TA` every round. This is
///   the price of weak stability: no per-phase send-log can be trusted, so
///   previously known tokens ride along in every packet.
/// * **Member** — sends its whole `TA` to its head in round 0, and again
///   *only* when its cluster head changes ("a member node sends tokens to a
///   cluster head only once" per affiliation). Otherwise it just listens.
///
/// Termination after `M` rounds; the paper proves correctness for
/// `M ≥ n − 1` under 1-interval connectivity (Theorem 2), `M ≥ ⌈θ/α⌉ + 1`
/// under (α·L)-interval head connectivity (Theorem 3), and `M ≥ θ·L + 1`
/// under an L-interval stable hierarchy (Theorem 4) — pick `M` with the
/// helpers in [`crate::params`].
///
/// # Retransmission recovery
///
/// Heads already re-broadcast their whole `TA` every round, so they need no
/// extra recovery. With [`HiNetFullExchange::with_retransmit`] the *member*
/// side is hardened too: instead of sending only once per affiliation, a
/// member keeps re-sending its `TA` — tagged via
/// [`Outgoing::mark_retransmit`] — until every token it holds has been
/// echoed back in its current head's broadcast, so a lost push or a head
/// restart no longer strands tokens.
#[derive(Clone, Debug)]
pub struct HiNetFullExchange {
    rounds: usize,
    retransmit: bool,
    me: NodeId,
    ta: TokenSet,
    from_head: TokenSet,
    last_head: Option<NodeId>,
    started: bool,
    done: bool,
}

impl HiNetFullExchange {
    /// Algorithm 2 running for `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        HiNetFullExchange {
            rounds,
            retransmit: false,
            me: NodeId(0),
            ta: TokenSet::new(),
            from_head: TokenSet::new(),
            last_head: None,
            started: false,
            done: false,
        }
    }

    /// The configured round budget `M`.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Enable (or disable) retransmission recovery for lossy or crash-prone
    /// runs. See the type-level docs for the recovery rule.
    pub fn with_retransmit(mut self, on: bool) -> Self {
        self.retransmit = on;
        self
    }
}

impl Protocol for HiNetFullExchange {
    fn on_start(&mut self, me: NodeId, initial: &[TokenId]) {
        self.me = me;
        self.ta.extend(initial.iter().copied());
    }

    fn send(&mut self, view: &LocalView<'_>) -> Vec<Outgoing> {
        if view.round >= self.rounds {
            self.done = true;
            return vec![];
        }
        let out = match view.role {
            Role::Head | Role::Gateway => {
                if self.ta.is_empty() {
                    vec![]
                } else {
                    vec![Outgoing::broadcast_set(&self.ta)]
                }
            }
            Role::Member => {
                let first = !self.started;
                let head_changed = self.last_head != view.head;
                if head_changed {
                    // Echoes from the previous head say nothing about the
                    // new one's state.
                    self.from_head.clear();
                }
                match view.head {
                    Some(h) if (first || head_changed) && !self.ta.is_empty() => {
                        vec![Outgoing::unicast_set(h, &self.ta)]
                    }
                    Some(h)
                        if self.retransmit
                            && !self.ta.is_empty()
                            && !self.ta.is_subset(&self.from_head) =>
                    {
                        // Recovery: the one-shot push may have been lost, or
                        // the head restarted without its volatile state.
                        // Keep re-sending until the head's broadcast echoes
                        // everything we hold.
                        vec![Outgoing::unicast_set(h, &self.ta).mark_retransmit()]
                    }
                    _ => vec![],
                }
            }
        };
        self.started = true;
        self.last_head = view.head;
        out
    }

    fn receive(&mut self, view: &LocalView<'_>, inbox: &[Incoming]) {
        for m in inbox {
            m.payload.union_into(&mut self.ta);
            if view.role == Role::Member && Some(m.from) == view.head {
                m.payload.union_into(&mut self.from_head);
            }
        }
    }

    fn known(&self) -> &TokenSet {
        &self.ta
    }

    fn finished(&self) -> bool {
        self.done
    }

    fn on_restart(&mut self, me: NodeId, retained: &[TokenId]) {
        *self = Self::new(self.rounds).with_retransmit(self.retransmit);
        self.on_start(me, retained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinet_cluster::hierarchy::ClusterId;

    fn member_view<'a>(round: usize, head: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me: NodeId(5),
            round,
            role: Role::Member,
            cluster: Some(ClusterId(head)),
            head: Some(head),
            parent: Some(head),
            neighbors,
        }
    }

    fn head_view<'a>(round: usize, me: NodeId, neighbors: &'a [NodeId]) -> LocalView<'a> {
        LocalView {
            me,
            round,
            role: Role::Head,
            cluster: Some(ClusterId(me)),
            head: Some(me),
            parent: None,
            neighbors,
        }
    }

    #[test]
    fn head_broadcasts_full_ta_every_round() {
        let mut p = HiNetFullExchange::new(5);
        p.on_start(NodeId(0), &[TokenId(1), TokenId(2)]);
        let nbrs = [NodeId(1)];
        for r in 0..5 {
            let out = p.send(&head_view(r, NodeId(0), &nbrs));
            assert_eq!(out.len(), 1, "round {r}");
            assert_eq!(out[0].payload.to_vec(), vec![TokenId(1), TokenId(2)]);
        }
        assert!(p.send(&head_view(5, NodeId(0), &nbrs)).is_empty());
        assert!(p.finished());
    }

    #[test]
    fn member_sends_once_per_affiliation() {
        let mut p = HiNetFullExchange::new(10);
        p.on_start(NodeId(5), &[TokenId(3)]);
        let (h1, h2) = (NodeId(0), NodeId(1));
        let nbrs = [h1, h2];
        // Round 0: initial send.
        assert_eq!(
            p.send(&member_view(0, h1, &nbrs)),
            vec![Outgoing::unicast_set(h1, &p.ta.clone())]
        );
        // Rounds 1-2: same head — silence.
        assert!(p.send(&member_view(1, h1, &nbrs)).is_empty());
        assert!(p.send(&member_view(2, h1, &nbrs)).is_empty());
        // Round 3: re-affiliated — full TA to the new head.
        let out = p.send(&member_view(3, h2, &nbrs));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, hinet_sim::protocol::Destination::Unicast(h2));
        // Round 4: settled again.
        assert!(p.send(&member_view(4, h2, &nbrs)).is_empty());
    }

    #[test]
    fn member_ta_grows_from_any_source() {
        let mut p = HiNetFullExchange::new(10);
        p.on_start(NodeId(5), &[]);
        let h = NodeId(0);
        let nbrs = [h, NodeId(2)];
        let view = member_view(0, h, &nbrs);
        let _ = p.send(&view);
        p.receive(
            &view,
            &[
                Incoming::one(h, false, TokenId(1)),
                Incoming::one(NodeId(2), false, TokenId(2)),
            ],
        );
        assert!(p.known().contains(&TokenId(1)));
        assert!(p.known().contains(&TokenId(2)));
    }

    #[test]
    fn empty_ta_sends_nothing() {
        let mut p = HiNetFullExchange::new(3);
        p.on_start(NodeId(0), &[]);
        let nbrs = [NodeId(1)];
        assert!(p.send(&head_view(0, NodeId(0), &nbrs)).is_empty());
        assert!(p.send(&member_view(1, NodeId(1), &nbrs)).is_empty());
    }

    #[test]
    fn retransmit_member_resends_until_echoed() {
        let mut p = HiNetFullExchange::new(10).with_retransmit(true);
        p.on_start(NodeId(5), &[TokenId(3)]);
        let h = NodeId(0);
        let nbrs = [h];
        // Round 0: the primary one-shot push, unmarked.
        let out = p.send(&member_view(0, h, &nbrs));
        assert_eq!(out.len(), 1);
        assert!(!out[0].retransmit);
        // Round 1: no echo yet — recovery re-send, marked.
        let out = p.send(&member_view(1, h, &nbrs));
        assert_eq!(out.len(), 1);
        assert!(out[0].retransmit);
        assert_eq!(out[0].payload.to_vec(), vec![TokenId(3)]);
        // The head's broadcast echoes everything we hold: silence resumes.
        let view = member_view(1, h, &nbrs);
        p.receive(&view, &[Incoming::set(h, false, &[TokenId(3), TokenId(9)])]);
        assert!(p.send(&member_view(2, h, &nbrs)).is_empty());
    }

    #[test]
    fn retransmit_member_restarts_arq_for_a_new_head() {
        let mut p = HiNetFullExchange::new(10).with_retransmit(true);
        p.on_start(NodeId(5), &[TokenId(3)]);
        let (h1, h2) = (NodeId(0), NodeId(1));
        let nbrs = [h1, h2];
        let view = member_view(0, h1, &nbrs);
        let _ = p.send(&view);
        p.receive(&view, &[Incoming::one(h1, false, TokenId(3))]);
        assert!(p.send(&member_view(1, h1, &nbrs)).is_empty());
        // Re-affiliation: the normal once-per-affiliation push fires...
        let out = p.send(&member_view(2, h2, &nbrs));
        assert_eq!(out.len(), 1);
        assert!(!out[0].retransmit);
        // ...and the old head's echoes no longer count as acknowledgements,
        // so ARQ keeps going until the *new* head echoes.
        let out = p.send(&member_view(3, h2, &nbrs));
        assert_eq!(out.len(), 1);
        assert!(out[0].retransmit);
    }

    #[test]
    fn member_role_switch_to_head_broadcasts() {
        let mut p = HiNetFullExchange::new(10);
        p.on_start(NodeId(5), &[TokenId(7)]);
        let nbrs = [NodeId(0)];
        let _ = p.send(&member_view(0, NodeId(0), &nbrs));
        let out = p.send(&head_view(1, NodeId(5), &nbrs));
        assert_eq!(out.len(), 1, "as head it must broadcast");
        assert_eq!(out[0].dest, hinet_sim::protocol::Destination::Broadcast);
    }
}
