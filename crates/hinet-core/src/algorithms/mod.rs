//! The dissemination algorithms.
//!
//! All are [`hinet_sim::Protocol`] implementations driven by the round
//! engine. The paper's two algorithms consult the node's role and cluster
//! from the [`hinet_sim::LocalView`]; the flat baselines ignore the
//! hierarchy entirely (they model the algorithms of Kuhn–Lynch–Oshman,
//! which predate any cluster structure).

mod alg1;
mod alg2;
mod alg2_multihop;
mod delta;
mod gossip;
mod kactive;
mod klo;

pub use alg1::HiNetPhased;
pub use alg2::HiNetFullExchange;
pub use alg2_multihop::HiNetFullExchangeMH;
pub use delta::DeltaFlood;
pub use gossip::Gossip;
pub use kactive::KActiveFlood;
pub use klo::{KloFlood, KloPhased};
