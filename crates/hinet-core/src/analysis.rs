//! The analytical cost model of the paper's evaluation (Section V).
//!
//! Table 2 gives closed-form time (rounds) and communication (total tokens
//! sent) costs for four algorithm × dynamics-model rows; Table 3
//! instantiates them at one example parameter set. Both are reproduced here
//! exactly, with the one arithmetic erratum in the paper documented at
//! [`table3`].

use crate::params;

/// Parameters of the analytical model — the notation of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelParams {
    /// `n₀` — total nodes in the network.
    pub n0: u64,
    /// `θ` — upper bound on the number of nodes that can be cluster head.
    pub theta: u64,
    /// `n_m` — average number of cluster member nodes in one round.
    pub n_m: u64,
    /// `n_r` — average number of re-affiliations a member conducts.
    pub n_r: u64,
    /// `k` — number of tokens to disseminate.
    pub k: u64,
    /// `α` — progress coefficient (any positive integer).
    pub alpha: u64,
    /// `L` — hop bound of cluster-head connectivity.
    pub l: u64,
}

impl ModelParams {
    /// The example network setup of Table 3 (with `n_r` for the
    /// (T, L)-HiNet scenario; use [`ModelParams::with_n_r`] for the
    /// (1, L) row's `n_r = 10`).
    pub fn table3() -> Self {
        ModelParams {
            n0: 100,
            theta: 30,
            n_m: 40,
            n_r: 3,
            k: 8,
            alpha: 5,
            l: 2,
        }
    }

    /// Same parameters with a different re-affiliation count.
    pub fn with_n_r(self, n_r: u64) -> Self {
        ModelParams { n_r, ..self }
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Row 1 time — KLO in the `(k+αL)`-interval connected model:
/// `⌈n₀/(αL)⌉ · (k + αL)` rounds.
pub fn klo_t_interval_time(p: &ModelParams) -> u64 {
    ceil_div(p.n0, p.alpha * p.l) * (p.k + p.alpha * p.l)
}

/// Row 1 communication — KLO in the `(k+αL)`-interval connected model:
/// `⌈n₀/(2α)⌉ · n₀ · k` tokens.
///
/// (The paper's phase counts differ between the time and communication
/// columns — `⌈n₀/(αL)⌉` vs `⌈n₀/(2α)⌉`; we reproduce each column exactly
/// as printed. See EXPERIMENTS.md, erratum E2-b.)
pub fn klo_t_interval_comm(p: &ModelParams) -> u64 {
    ceil_div(p.n0, 2 * p.alpha) * p.n0 * p.k
}

/// Row 2 time — Algorithm 1 in a `(k+αL, L)`-HiNet:
/// `(⌈θ/α⌉ + 1) · (k + αL)` rounds (Theorem 1).
pub fn hinet_tl_time(p: &ModelParams) -> u64 {
    (ceil_div(p.theta, p.alpha) + 1) * (p.k + p.alpha * p.l)
}

/// Row 2 communication — Algorithm 1 in a `(k+αL, L)`-HiNet:
/// `(⌈θ/α⌉ + 1) · (n₀ − n_m) · k + n_m · n_r · k` tokens.
pub fn hinet_tl_comm(p: &ModelParams) -> u64 {
    (ceil_div(p.theta, p.alpha) + 1) * (p.n0 - p.n_m) * p.k + p.n_m * p.n_r * p.k
}

/// Row 3 time — KLO flooding in the 1-interval connected model:
/// `n₀ − 1` rounds.
pub fn klo_1interval_time(p: &ModelParams) -> u64 {
    p.n0 - 1
}

/// Row 3 communication — KLO flooding in the 1-interval connected model:
/// `(n₀ − 1) · n₀ · k` tokens.
pub fn klo_1interval_comm(p: &ModelParams) -> u64 {
    (p.n0 - 1) * p.n0 * p.k
}

/// Row 4 time — Algorithm 2 in a (1, L)-HiNet: `n₀ − 1` rounds (Theorem 2).
pub fn hinet_1l_time(p: &ModelParams) -> u64 {
    p.n0 - 1
}

/// Row 4 communication — Algorithm 2 in a (1, L)-HiNet:
/// `(n₀ − 1) · (n₀ − n_m) · k + n_m · n_r · k` tokens.
pub fn hinet_1l_comm(p: &ModelParams) -> u64 {
    (p.n0 - 1) * (p.n0 - p.n_m) * p.k + p.n_m * p.n_r * p.k
}

/// Remark 1 time — Algorithm 1 with an ∞-interval stable head set of size
/// `|V_h| = actual_heads`: `(⌈|V_h|/α⌉ + 1) · (k + αL)` rounds.
pub fn remark1_time(p: &ModelParams, actual_heads: u64) -> u64 {
    (ceil_div(actual_heads, p.alpha) + 1) * (p.k + p.alpha * p.l)
}

/// Remark 1 communication: members pay `n_m · k` once (first phase, no
/// re-sending on re-affiliation), heads/gateways as in Row 2.
pub fn remark1_comm(p: &ModelParams, actual_heads: u64) -> u64 {
    (ceil_div(actual_heads, p.alpha) + 1) * (p.n0 - p.n_m) * p.k + p.n_m * p.k
}

/// One row of Table 2/Table 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostRow {
    /// Row label as printed in the paper.
    pub model: &'static str,
    /// "Spending Time (rounds)".
    pub time_rounds: u64,
    /// "Communication Cost (total size of packets)".
    pub comm_tokens: u64,
}

/// Compute all four Table 2 rows for the given parameters.
pub fn table2(p: &ModelParams, p_1l: &ModelParams) -> Vec<CostRow> {
    vec![
        CostRow {
            model: "(k+α·L)-interval connected [KLO]",
            time_rounds: klo_t_interval_time(p),
            comm_tokens: klo_t_interval_comm(p),
        },
        CostRow {
            model: "(k+α·L, L)-HiNet [Algorithm 1]",
            time_rounds: hinet_tl_time(p),
            comm_tokens: hinet_tl_comm(p),
        },
        CostRow {
            model: "1-interval connected [KLO]",
            time_rounds: klo_1interval_time(p_1l),
            comm_tokens: klo_1interval_comm(p_1l),
        },
        CostRow {
            model: "(1, L)-HiNet [Algorithm 2]",
            time_rounds: hinet_1l_time(p_1l),
            comm_tokens: hinet_1l_comm(p_1l),
        },
    ]
}

/// Table 3: the Table 2 rows at the paper's example parameters
/// (`n_r = 3` for the HiNet rows' stable scenario, `n_r = 10` for the
/// (1, L) scenario).
///
/// **Erratum (E2-a):** the paper prints 51680 for the (1, L)-HiNet row, but
/// the row-4 formula with the stated parameters gives
/// `99·(100−40)·8 + 40·10·8 = 47520 + 3200 = 50720`. We return the formula
/// value; the discrepancy is recorded in EXPERIMENTS.md.
pub fn table3() -> Vec<CostRow> {
    let p = ModelParams::table3();
    let p_1l = p.with_n_r(10);
    table2(&p, &p_1l)
}

/// Consistency check: the analytic time of Algorithm 1 equals the phase
/// plan's round count the simulator uses (keeps the analysis and the
/// executable parameterisation in lock-step).
pub fn alg1_time_matches_plan(p: &ModelParams) -> bool {
    let plan = params::alg1_plan(
        p.k as usize,
        p.alpha as usize,
        p.l as usize,
        p.theta as usize,
    );
    plan.total_rounds() as u64 == hinet_tl_time(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_rows_1_to_3() {
        let rows = table3();
        assert_eq!(rows[0].time_rounds, 180);
        assert_eq!(rows[0].comm_tokens, 8000);
        assert_eq!(rows[1].time_rounds, 126);
        assert_eq!(rows[1].comm_tokens, 4320);
        assert_eq!(rows[2].time_rounds, 99);
        assert_eq!(rows[2].comm_tokens, 79200);
        assert_eq!(rows[3].time_rounds, 99);
    }

    #[test]
    fn table3_row4_erratum_documented_value() {
        // The paper prints 51680; the printed formula yields 50720.
        let rows = table3();
        assert_eq!(rows[3].comm_tokens, 50_720);
        assert_ne!(rows[3].comm_tokens, 51_680, "paper's printed value");
    }

    #[test]
    fn hinet_beats_klo_on_communication_at_table3_params() {
        let rows = table3();
        assert!(rows[1].comm_tokens < rows[0].comm_tokens, "(T,L) row");
        assert!(rows[3].comm_tokens < rows[2].comm_tokens, "(1,L) row");
        // And time is no worse (the paper's headline claim).
        assert!(rows[1].time_rounds <= rows[0].time_rounds);
        assert!(rows[3].time_rounds <= rows[2].time_rounds);
    }

    #[test]
    fn headline_reduction_factor() {
        // Paper: "the benefit can be as much as 50%". At Table 3 params the
        // (T,L) reduction is 1 − 4320/8000 = 46%; (1,L) is ~36%.
        let rows = table3();
        let red_tl = 1.0 - rows[1].comm_tokens as f64 / rows[0].comm_tokens as f64;
        assert!(red_tl > 0.4 && red_tl < 0.5, "got {red_tl}");
    }

    #[test]
    fn analysis_consistent_with_phase_plan() {
        assert!(alg1_time_matches_plan(&ModelParams::table3()));
        let other = ModelParams {
            n0: 250,
            theta: 60,
            n_m: 100,
            n_r: 5,
            k: 16,
            alpha: 3,
            l: 4,
        };
        assert!(alg1_time_matches_plan(&other));
    }

    #[test]
    fn remark1_cheaper_than_alg1() {
        let p = ModelParams::table3();
        // With the same head count, Remark 1 saves the re-send term.
        assert!(remark1_comm(&p, p.theta) < hinet_tl_comm(&p) || p.n_r <= 1);
        assert_eq!(remark1_time(&p, p.theta), hinet_tl_time(&p));
        // Fewer actual heads terminate earlier.
        assert!(remark1_time(&p, 10) < hinet_tl_time(&p));
    }

    #[test]
    fn costs_monotone_in_k() {
        let p = ModelParams::table3();
        let p_bigger = ModelParams { k: 16, ..p };
        assert!(klo_t_interval_comm(&p_bigger) > klo_t_interval_comm(&p));
        assert!(hinet_tl_comm(&p_bigger) > hinet_tl_comm(&p));
        assert!(klo_1interval_comm(&p_bigger) > klo_1interval_comm(&p));
        assert!(hinet_1l_comm(&p_bigger) > hinet_1l_comm(&p));
    }

    #[test]
    fn costs_monotone_in_churn() {
        let p = ModelParams::table3();
        let noisy = p.with_n_r(20);
        assert!(hinet_tl_comm(&noisy) > hinet_tl_comm(&p));
        assert!(hinet_1l_comm(&noisy) > hinet_1l_comm(&p));
        // Flat baselines are churn-insensitive.
        assert_eq!(klo_1interval_comm(&noisy), klo_1interval_comm(&p));
    }
}
