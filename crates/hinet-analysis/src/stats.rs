//! Summary statistics over repeated seeded runs.
//!
//! Randomised dynamics mean one simulation is one sample; experiments
//! report mean ± standard deviation over a handful of seeds.

/// Mean, standard deviation and extremes of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarise integer samples.
    pub fn of_u64(samples: &[u64]) -> Self {
        let as_f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of(&as_f)
    }

    /// `"mean ± std"` report cell.
    pub fn cell(&self) -> String {
        if self.std_dev == 0.0 {
            crate::report::fmt_f64(self.mean)
        } else {
            format!(
                "{} ± {}",
                crate::report::fmt_f64(self.mean),
                crate::report::fmt_f64(self.std_dev)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.cell(), "4");
    }

    #[test]
    fn known_variance() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_sample_zero_std() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn u64_adapter() {
        let s = Summary::of_u64(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }
}
