//! The Table 2 rows as executable scenarios.
//!
//! Each scenario derives, from one [`ModelParams`], a dynamics generator
//! whose trace satisfies the row's model assumptions, the matching
//! algorithm with the paper's parameter plan, and the row's analytic
//! bounds — so measured and analytic costs always refer to the *same*
//! parameters.

use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::analysis::{self, ModelParams};
use hinet_core::params::{alg1_plan, klo_plan, remark1_phases, required_phase_length, PhasePlan};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::{BackboneKind, OneIntervalGen, TIntervalGen};
use hinet_sim::engine::{RunConfig, RunReport};
use hinet_sim::token::round_robin_assignment;

/// A scenario's analytic bounds paired with a measured run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Row label (matches Table 2/3).
    pub label: &'static str,
    /// Analytic "spending time" bound, in rounds.
    pub analytic_time: u64,
    /// Analytic communication bound, in tokens.
    pub analytic_comm: u64,
    /// The simulator's measurement.
    pub run: RunReport,
}

impl ScenarioReport {
    /// Measured completion rounds (panics if the run did not complete —
    /// scenario parameterisations are chosen so the theorems apply).
    pub fn measured_time(&self) -> u64 {
        self.run
            .completion_round
            .unwrap_or_else(|| panic!("{}: run did not complete", self.label)) as u64
    }

    /// Measured communication in tokens.
    pub fn measured_comm(&self) -> u64 {
        self.run.metrics.tokens_sent
    }
}

fn default_cfg() -> RunConfig<'static> {
    RunConfig::new().stop_on_completion(false)
}

/// Derive the HiNet generator head count that yields approximately the
/// model's `n_m` members: members = `n − h·L + (L−1)`, so
/// `h = (n + L − 1 − n_m) / L`, clamped to `[1, θ]` and to the backbone
/// feasibility bound.
pub fn heads_for_members(p: &ModelParams) -> usize {
    let (n, l, n_m) = (p.n0 as usize, p.l as usize, p.n_m as usize);
    let raw = (n + l - 1).saturating_sub(n_m) / l;
    raw.clamp(1, p.theta as usize)
}

/// Window-boundary re-affiliation probability that yields approximately
/// `n_r` re-affiliations per member over `windows` windows.
pub fn reaffil_prob_for(p: &ModelParams, windows: usize) -> f64 {
    if windows <= 1 {
        return 0.0;
    }
    (p.n_r as f64 / (windows - 1) as f64).min(1.0)
}

/// HiNet generator configuration realising the model parameters with
/// stability window `t`.
pub fn hinet_config(p: &ModelParams, t: usize, rotate_heads: bool, seed: u64) -> HiNetConfig {
    let num_heads = heads_for_members(p);
    HiNetConfig {
        n: p.n0 as usize,
        num_heads,
        theta: (p.theta as usize).max(num_heads),
        l: p.l as usize,
        t,
        reaffil_prob: 0.0, // set by callers that know their window count
        rotate_heads,
        noise_edges: p.n0 as usize / 5,
        seed,
    }
}

/// Row 1 — flat KLO on a `(k+αL)`-interval-connected adversary.
pub fn run_klo_t_interval(p: &ModelParams, seed: u64) -> ScenarioReport {
    let plan: PhasePlan = klo_plan(p.k as usize, p.alpha as usize, p.l as usize, p.n0 as usize);
    let gen = TIntervalGen::new(
        p.n0 as usize,
        plan.rounds_per_phase,
        BackboneKind::Path,
        p.n0 as usize / 5,
        seed,
    );
    let mut provider = FlatProvider::new(gen);
    let assignment = round_robin_assignment(p.n0 as usize, p.k as usize);
    let run = run_algorithm(
        &AlgorithmKind::KloPhased(plan),
        &mut provider,
        &assignment,
        default_cfg(),
    );
    ScenarioReport {
        label: "(k+α·L)-interval connected [KLO]",
        analytic_time: analysis::klo_t_interval_time(p),
        analytic_comm: analysis::klo_t_interval_comm(p),
        run,
    }
}

/// Row 2 — Algorithm 1 on a `(k+αL, L)`-HiNet.
pub fn run_hinet_tl(p: &ModelParams, seed: u64) -> ScenarioReport {
    let plan = alg1_plan(
        p.k as usize,
        p.alpha as usize,
        p.l as usize,
        p.theta as usize,
    );
    let mut cfg = hinet_config(p, plan.rounds_per_phase, true, seed);
    cfg.reaffil_prob = reaffil_prob_for(p, plan.phases);
    let mut provider = HiNetGen::new(cfg);
    let assignment = round_robin_assignment(p.n0 as usize, p.k as usize);
    let run = run_algorithm(
        &AlgorithmKind::HiNetPhased(plan),
        &mut provider,
        &assignment,
        default_cfg(),
    );
    ScenarioReport {
        label: "(k+α·L, L)-HiNet [Algorithm 1]",
        analytic_time: analysis::hinet_tl_time(p),
        analytic_comm: analysis::hinet_tl_comm(p),
        run,
    }
}

/// Remark 1 — Algorithm 1 with an ∞-stable head set.
pub fn run_remark1(p: &ModelParams, seed: u64) -> ScenarioReport {
    let t = required_phase_length(p.k as usize, p.alpha as usize, p.l as usize);
    let mut cfg = hinet_config(p, t, false, seed);
    let phases = remark1_phases(cfg.num_heads, p.alpha as usize);
    cfg.reaffil_prob = reaffil_prob_for(p, phases);
    let plan = PhasePlan {
        rounds_per_phase: t,
        phases,
    };
    let actual_heads = cfg.num_heads as u64;
    let mut provider = HiNetGen::new(cfg);
    let assignment = round_robin_assignment(p.n0 as usize, p.k as usize);
    let run = run_algorithm(
        &AlgorithmKind::HiNetRemark1(plan),
        &mut provider,
        &assignment,
        default_cfg(),
    );
    ScenarioReport {
        label: "(k+α·L, L)-HiNet, ∞-stable heads [Remark 1]",
        analytic_time: analysis::remark1_time(p, actual_heads),
        analytic_comm: analysis::remark1_comm(p, actual_heads),
        run,
    }
}

/// Row 3 — flat KLO full flooding on a 1-interval-connected adversary.
pub fn run_klo_1interval(p: &ModelParams, seed: u64) -> ScenarioReport {
    let n = p.n0 as usize;
    let gen = OneIntervalGen::new(n, true, n / 5, seed);
    let mut provider = FlatProvider::new(gen);
    let assignment = round_robin_assignment(n, p.k as usize);
    let run = run_algorithm(
        &AlgorithmKind::KloFlood { rounds: n - 1 },
        &mut provider,
        &assignment,
        default_cfg(),
    );
    ScenarioReport {
        label: "1-interval connected [KLO]",
        analytic_time: analysis::klo_1interval_time(p),
        analytic_comm: analysis::klo_1interval_comm(p),
        run,
    }
}

/// Row 4 — Algorithm 2 on a (1, L)-HiNet.
pub fn run_hinet_1l(p: &ModelParams, seed: u64) -> ScenarioReport {
    let n = p.n0 as usize;
    let mut cfg = hinet_config(p, 1, true, seed);
    cfg.reaffil_prob = reaffil_prob_for(p, n - 1);
    let mut provider = HiNetGen::new(cfg);
    let assignment = round_robin_assignment(n, p.k as usize);
    let run = run_algorithm(
        &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
        &mut provider,
        &assignment,
        default_cfg(),
    );
    ScenarioReport {
        label: "(1, L)-HiNet [Algorithm 2]",
        analytic_time: analysis::hinet_1l_time(p),
        analytic_comm: analysis::hinet_1l_comm(p),
        run,
    }
}

/// All four Table 2/3 rows, simulated.
pub fn run_all_rows(p: &ModelParams, p_1l: &ModelParams, seed: u64) -> Vec<ScenarioReport> {
    vec![
        run_klo_t_interval(p, seed),
        run_hinet_tl(p, seed),
        run_klo_1interval(p_1l, seed),
        run_hinet_1l(p_1l, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ModelParams {
        ModelParams {
            n0: 40,
            theta: 10,
            n_m: 20,
            n_r: 2,
            k: 4,
            alpha: 2,
            l: 2,
        }
    }

    #[test]
    fn heads_for_members_matches_member_target() {
        let p = small();
        let h = heads_for_members(&p);
        // members = n − h·L + (L−1)
        let members = p.n0 as usize + (p.l as usize - 1) - h * p.l as usize;
        assert!(
            (members as i64 - p.n_m as i64).abs() <= p.l as i64,
            "members {members} vs target {}",
            p.n_m
        );
        assert!(h <= p.theta as usize);
    }

    #[test]
    fn table3_head_derivation() {
        let p = ModelParams::table3();
        // n=100, L=2, n_m=40 → h = 61/2 = 30 (= θ exactly).
        assert_eq!(heads_for_members(&p), 30);
    }

    #[test]
    fn reaffil_prob_bounds() {
        let p = small();
        assert_eq!(reaffil_prob_for(&p, 1), 0.0);
        let pr = reaffil_prob_for(&p, 5);
        assert!((0.0..=1.0).contains(&pr));
        let heavy = ModelParams { n_r: 100, ..p };
        assert_eq!(reaffil_prob_for(&heavy, 3), 1.0);
    }

    #[test]
    fn all_rows_complete_within_analytic_time() {
        let p = small();
        let p_1l = p.with_n_r(4);
        for row in run_all_rows(&p, &p_1l, 11) {
            assert!(row.run.completed(), "{} did not complete", row.label);
            assert!(
                row.measured_time() <= row.analytic_time,
                "{}: measured {} > analytic {}",
                row.label,
                row.measured_time(),
                row.analytic_time
            );
        }
    }

    #[test]
    fn hinet_rows_beat_klo_rows_on_comm() {
        let p = small();
        let p_1l = p.with_n_r(4);
        let rows = run_all_rows(&p, &p_1l, 23);
        assert!(
            rows[1].measured_comm() < rows[0].measured_comm(),
            "(T,L): {} vs {}",
            rows[1].measured_comm(),
            rows[0].measured_comm()
        );
        assert!(
            rows[3].measured_comm() < rows[2].measured_comm(),
            "(1,L): {} vs {}",
            rows[3].measured_comm(),
            rows[2].measured_comm()
        );
    }

    #[test]
    fn remark1_completes_and_is_cheap() {
        let p = small();
        let r1 = run_remark1(&p, 7);
        assert!(r1.run.completed());
        let full = run_hinet_tl(&p, 7);
        assert!(r1.measured_comm() <= full.measured_comm() * 11 / 10);
    }
}
