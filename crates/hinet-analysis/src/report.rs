//! Table rendering for experiment output.
//!
//! Experiments produce small tabular results (a handful of rows of numbers
//! and labels). This module renders them as aligned plain text, GitHub
//! markdown, or CSV — deliberately hand-rolled: pulling in a serialisation
//! stack for four-row tables would be all cost and no benefit.

use std::fmt::Write as _;

/// A simple rectangular table: a header row plus data rows of strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column count.
    pub fn width(&self) -> usize {
        self.headers.len()
    }

    /// Row count (excluding header).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Append a row of displayable values.
    pub fn push_display_row<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.push_row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Access the raw rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Cell accessor (`row`, `col`), panicking out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Render as aligned plain text (the format the examples print).
    pub fn to_text(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        out
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with a sensible fixed precision for report cells.
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a ratio as a percentage string, e.g. `0.46` → `"46.0%"`.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["model", "time", "comm"]);
        t.push_row(vec!["klo".into(), "180".into(), "8000".into()]);
        t.push_row(vec!["hinet".into(), "126".into(), "4320".into()]);
        t
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "Demo");
        assert_eq!(t.width(), 3);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(1, 2), "4320");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn text_render_is_aligned() {
        let text = sample().to_text();
        assert!(text.contains("Demo"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].contains('+'));
        assert!(lines[3].contains("klo"));
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = sample().to_markdown();
        assert!(md.contains("| model | time | comm |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| hinet | 126 | 4320 |"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("X", &["a"]);
        t.push_row(vec!["hello, world".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(1.23456), "1.23");
        assert_eq!(fmt_pct(0.4621), "46.2%");
    }

    #[test]
    fn display_row_helper() {
        let mut t = Table::new("n", &["x", "y"]);
        t.push_display_row(&[1, 2]);
        assert_eq!(t.cell(0, 1), "2");
    }
}
