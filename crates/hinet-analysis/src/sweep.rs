//! Parallel parameter-sweep executor.
//!
//! Each cell of a sweep is an independent, deterministic simulation, so the
//! sweep is embarrassingly parallel. The executor lives in
//! [`hinet_rt::pool`]: a fixed pool of `std::thread::scope` workers pulling
//! from a shared atomic cursor (dynamic load balancing — simulation time
//! varies wildly across parameter cells), writing results into a pre-sized
//! slot vector so output order equals input order regardless of scheduling.
//! Worker panics propagate to the caller with the failing cell's index and
//! the original panic message.

pub use hinet_rt::pool::run_sweep;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_sweep(&inputs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let inputs = vec![1, 2, 3];
        assert_eq!(run_sweep(&inputs, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let inputs: Vec<u32> = (0..16).collect();
        assert_eq!(run_sweep(&inputs, 0, |&x| x).len(), 16);
    }

    #[test]
    fn empty_input() {
        let inputs: Vec<u32> = vec![];
        assert!(run_sweep(&inputs, 4, |&x| x).is_empty());
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let inputs: Vec<usize> = (0..57).collect();
        let counter = AtomicUsize::new(0);
        let out = run_sweep(&inputs, 5, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn uneven_work_balances() {
        // Cells with very different costs still all complete, in input
        // order, and the computed values (not just the echoed inputs)
        // arrive intact.
        let inputs: Vec<u64> = (0..24).collect();
        let out = run_sweep(&inputs, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let expect: Vec<u64> = inputs
            .iter()
            .map(|&x| (0..x * 1000).fold(0u64, |a, i| a.wrapping_add(i)))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panic_reaches_caller_with_cell_index() {
        let inputs: Vec<usize> = (0..6).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sweep(&inputs, 3, |&x| {
                assert!(x != 4, "cell {x} exploded");
                x
            })
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("input 4"), "missing cell index: {msg}");
        assert!(msg.contains("cell 4 exploded"), "missing payload: {msg}");
    }
}
