//! Parallel parameter-sweep executor.
//!
//! Each cell of a sweep is an independent, deterministic simulation, so the
//! sweep is embarrassingly parallel. We fan cells out over a fixed pool of
//! crossbeam scoped threads pulling from a shared atomic cursor (dynamic
//! load balancing — simulation time varies wildly across parameter cells),
//! and write results into a pre-sized slot vector so output order equals
//! input order regardless of scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every input, in parallel, preserving input order in the
/// output.
///
/// `threads = 0` selects the available parallelism (capped by the number of
/// inputs). `f` must be `Sync` because multiple workers call it
/// concurrently; inputs are only read.
pub fn run_sweep<I, O, F>(inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
    let threads = if threads == 0 { hw } else { threads }.min(inputs.len());
    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let out = f(&inputs[i]);
                *slots[i].lock() = Some(out);
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_sweep(&inputs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let inputs = vec![1, 2, 3];
        assert_eq!(run_sweep(&inputs, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let inputs: Vec<u32> = (0..16).collect();
        assert_eq!(run_sweep(&inputs, 0, |&x| x).len(), 16);
    }

    #[test]
    fn empty_input() {
        let inputs: Vec<u32> = vec![];
        assert!(run_sweep(&inputs, 4, |&x| x).is_empty());
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let inputs: Vec<usize> = (0..57).collect();
        let counter = AtomicUsize::new(0);
        let out = run_sweep(&inputs, 5, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn uneven_work_balances() {
        // Cells with very different costs still all complete correctly.
        let inputs: Vec<u64> = (0..24).collect();
        let out = run_sweep(&inputs, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, inputs);
    }
}
