//! E5–E10 — parameter sweeps ("figures" the paper's analysis implies).
//!
//! The paper evaluates a single parameter point (Table 3). These sweeps
//! trace each cost formula across one axis and validate the *shape* with
//! simulated runs at every grid point: who wins, by what factor, and where
//! the advantage grows or shrinks.

use super::ExperimentResult;
use crate::report::{fmt_pct, Table};
use crate::scenarios;
use crate::sweep::run_sweep;
use hinet_core::analysis::{self, ModelParams};

const SIM_SEED: u64 = 7;

/// Table-3-proportioned parameters scaled to network size `n`.
pub fn params_for_n(n: u64) -> ModelParams {
    ModelParams {
        n0: n,
        theta: (3 * n / 10).max(2),
        n_m: 4 * n / 10,
        n_r: 3,
        k: 8,
        alpha: 5,
        l: 2,
    }
}

/// One sweep row: analytic costs for rows 1–2 of Table 2 plus measured
/// communication from simulating both scenarios at the same parameters.
fn sweep_row(axis_label: String, p: &ModelParams) -> Vec<String> {
    let klo_time = analysis::klo_t_interval_time(p);
    let klo_comm = analysis::klo_t_interval_comm(p);
    let tl_time = analysis::hinet_tl_time(p);
    let tl_comm = analysis::hinet_tl_comm(p);
    let reduction = 1.0 - tl_comm as f64 / klo_comm as f64;

    let klo = scenarios::run_klo_t_interval(p, SIM_SEED);
    let tl = scenarios::run_hinet_tl(p, SIM_SEED);
    let measured_reduction = 1.0 - tl.measured_comm() as f64 / klo.measured_comm() as f64;
    vec![
        axis_label,
        klo_time.to_string(),
        tl_time.to_string(),
        klo_comm.to_string(),
        tl_comm.to_string(),
        fmt_pct(reduction),
        fmt_pct(measured_reduction),
    ]
}

const SWEEP_HEADERS: [&str; 7] = [
    "axis",
    "KLO time",
    "Alg1 time",
    "KLO comm",
    "Alg1 comm",
    "analytic reduction",
    "measured reduction",
];

fn sweep_over<I: Sync>(
    id: &'static str,
    title: &'static str,
    table_title: String,
    inputs: &[I],
    to_row: impl Fn(&I) -> Vec<String> + Sync,
    notes: Vec<String>,
) -> ExperimentResult {
    let rows = run_sweep(inputs, 0, to_row);
    let mut table = Table::new(table_title, &SWEEP_HEADERS);
    for r in rows {
        table.push_row(r);
    }
    ExperimentResult {
        id,
        title,
        tables: vec![table],
        notes,
    }
}

/// E5: cost vs network size `n₀` with Table-3 proportions held fixed.
pub fn e5_sweep_n() -> ExperimentResult {
    let ns: Vec<u64> = vec![40, 80, 120, 160, 200];
    sweep_over(
        "E5",
        "Sweep — cost vs network size n₀",
        "n₀ sweep (θ=0.3·n₀, n_m=0.4·n₀, k=8, α=5, L=2, n_r=3)".into(),
        &ns,
        |&n| sweep_row(format!("n₀={n}"), &params_for_n(n)),
        vec![
            "KLO communication grows ~quadratically in n₀ (⌈n₀/2α⌉·n₀·k); Algorithm 1's \
             grows linearly in n₀ for fixed θ-fraction, so the reduction widens with n₀."
                .into(),
        ],
    )
}

/// E6: cost vs token count `k`.
pub fn e6_sweep_k() -> ExperimentResult {
    let ks: Vec<u64> = vec![2, 4, 8, 16, 32];
    let base = ModelParams::table3();
    sweep_over(
        "E6",
        "Sweep — cost vs token count k",
        "k sweep (n₀=100, θ=30, n_m=40, α=5, L=2, n_r=3)".into(),
        &ks,
        |&k| sweep_row(format!("k={k}"), &ModelParams { k, ..base }),
        vec![
            "Both costs are linear in k; the reduction ratio is k-invariant in the \
             analytic model (every term carries one factor k)."
                .into(),
        ],
    )
}

/// E7: cost vs progress coefficient `α` — the stability/time trade-off:
/// higher α demands a longer stable window `T = k + αL` but buys fewer
/// phases.
pub fn e7_sweep_alpha() -> ExperimentResult {
    let alphas: Vec<u64> = vec![1, 2, 5, 10, 15];
    let base = ModelParams::table3();
    sweep_over(
        "E7",
        "Sweep — cost vs progress coefficient α",
        "α sweep (n₀=100, θ=30, n_m=40, k=8, L=2, n_r=3)".into(),
        &alphas,
        |&alpha| sweep_row(format!("α={alpha}"), &ModelParams { alpha, ..base }),
        vec![
            "α trades phase length against phase count: time is non-monotone \
             (minimised near α ≈ √(θ·k/L)), while the head/gateway communication \
             term shrinks with α for both algorithms."
                .into(),
        ],
    )
}

/// E8: cost vs hop bound `L` of cluster-head connectivity.
pub fn e8_sweep_l() -> ExperimentResult {
    let ls: Vec<u64> = vec![1, 2, 3, 4];
    let base = ModelParams::table3();
    sweep_over(
        "E8",
        "Sweep — cost vs hop bound L",
        "L sweep (n₀=100, θ=30, n_m=40, k=8, α=5, n_r=3)".into(),
        &ls,
        |&l| sweep_row(format!("L={l}"), &ModelParams { l, ..base }),
        vec![
            "Larger L lengthens the required stable window (T = k + αL) and the \
             phases, raising the time of both algorithms; communication moves \
             through the member/backbone split (more gateways per head at higher L)."
                .into(),
        ],
    )
}

/// E9: cost vs re-affiliation churn `n_r` — the axis where the hierarchy's
/// advantage erodes, including the crossover point.
pub fn e9_sweep_churn() -> ExperimentResult {
    let nrs: Vec<u64> = vec![0, 2, 4, 8, 16, 32, 64];
    let base = ModelParams::table3();
    let rows = run_sweep(&nrs, 0, |&n_r| {
        let p = base.with_n_r(n_r);
        // Churn only affects the HiNet rows; report the (1, L) pair where
        // members re-send their whole TA on each re-affiliation.
        let flood_comm = analysis::klo_1interval_comm(&p);
        let hinet_comm = analysis::hinet_1l_comm(&p);
        let reduction = 1.0 - hinet_comm as f64 / flood_comm as f64;
        let hinet = scenarios::run_hinet_1l(&p, SIM_SEED);
        let flood = scenarios::run_klo_1interval(&p, SIM_SEED);
        let measured_reduction = 1.0 - hinet.measured_comm() as f64 / flood.measured_comm() as f64;
        vec![
            format!("n_r={n_r}"),
            flood_comm.to_string(),
            hinet_comm.to_string(),
            fmt_pct(reduction),
            fmt_pct(measured_reduction),
            // The structured outcome, not a completed bool: under extreme
            // churn a stall would be attributable (no faults injected).
            hinet.run.outcome.to_string(),
        ]
    });
    let mut table = Table::new(
        "n_r sweep, (1, L) scenario (n₀=100, n_m=40, k=8)",
        &[
            "axis",
            "KLO flood comm",
            "Alg2 comm",
            "analytic reduction",
            "measured reduction",
            "Alg2 outcome",
        ],
    );
    for r in rows {
        table.push_row(r);
    }
    // Analytic crossover: hinet_1l_comm ≥ klo_1interval_comm when
    // n_m·n_r ≥ (n₀−1)·n_m  ⇔  n_r ≥ n₀−1.
    let crossover = base.n0 - 1;
    ExperimentResult {
        id: "E9",
        title: "Sweep — cost vs re-affiliation churn n_r",
        tables: vec![table],
        notes: vec![format!(
            "Analytic crossover: the hierarchy stops paying off only at n_r ≥ n₀−1 = \
             {crossover} re-affiliations per member — i.e. a member changing heads \
             essentially every round."
        )],
    }
}

/// E10: the headline claim — communication reduction across an (n₀, k)
/// grid, analytic, with the maximum called out.
pub fn e10_headline() -> ExperimentResult {
    let ns: [u64; 4] = [50, 100, 200, 400];
    let ks: [u64; 4] = [2, 8, 32, 128];
    let mut table = Table::new(
        "Analytic communication reduction of Algorithm 1 vs KLO, by (n₀, k)",
        &["n₀ \\ k", "k=2", "k=8", "k=32", "k=128"],
    );
    let mut best = f64::MIN;
    for &n in &ns {
        let mut row = vec![format!("n₀={n}")];
        for &k in &ks {
            let p = ModelParams {
                k,
                ..params_for_n(n)
            };
            let r =
                1.0 - analysis::hinet_tl_comm(&p) as f64 / analysis::klo_t_interval_comm(&p) as f64;
            best = best.max(r);
            row.push(fmt_pct(r));
        }
        table.push_row(row);
    }
    ExperimentResult {
        id: "E10",
        title: "Headline — communication reduction across regimes",
        tables: vec![table],
        notes: vec![format!(
            "Maximum reduction on this grid: {} — the paper's 'benefit can be as \
             much as 50%' is conservative at larger n₀.",
            fmt_pct(best)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn e5_reduction_widens_with_n() {
        let r = e5_sweep_n();
        let t = &r.tables[0];
        let first = parse_pct(t.cell(0, 5));
        let last = parse_pct(t.cell(t.len() - 1, 5));
        assert!(
            last > first,
            "reduction should grow with n₀: {first} → {last}"
        );
        // Measured reductions are positive everywhere.
        for row in t.rows() {
            assert!(parse_pct(&row[6]) > 0.0, "measured at {}", row[0]);
        }
    }

    #[test]
    fn e6_reduction_k_invariant_analytically() {
        let r = e6_sweep_k();
        let t = &r.tables[0];
        let base = parse_pct(t.cell(0, 5));
        for row in t.rows() {
            assert!((parse_pct(&row[5]) - base).abs() < 0.2, "at {}", row[0]);
        }
    }

    #[test]
    fn e9_crossover_matches_formula() {
        let r = e9_sweep_churn();
        assert!(r.notes[0].contains("99"));
        let t = &r.tables[0];
        // Reduction decreases monotonically with n_r, and the outcome
        // column carries the structured verdict for every churn level.
        let mut prev = f64::INFINITY;
        for row in t.rows() {
            let red = parse_pct(&row[3]);
            assert!(red <= prev);
            prev = red;
            assert!(
                row[5].starts_with("completed") || row[5].starts_with("stalled"),
                "outcome cell at {}: {}",
                row[0],
                row[5]
            );
        }
    }

    #[test]
    fn e10_best_reduction_exceeds_half() {
        let r = e10_headline();
        // At n₀=400 the analytic reduction exceeds 50%.
        let t = &r.tables[0];
        assert!(parse_pct(t.cell(3, 2)) > 50.0);
    }

    #[test]
    fn e7_and_e8_run() {
        assert_eq!(e7_sweep_alpha().tables[0].len(), 5);
        assert_eq!(e8_sweep_l().tables[0].len(), 4);
    }
}
