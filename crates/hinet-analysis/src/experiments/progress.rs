//! E16 — dissemination progress curves (informed nodes per round).

use super::ExperimentResult;
use crate::report::Table;
use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::OneIntervalGen;
use hinet_sim::engine::{RunConfig, RunReport};
use hinet_sim::token::round_robin_assignment;

/// E16: the per-round progress "figure" — how many nodes hold all `k`
/// tokens at the start of each round, for the (1, L) scenario pair plus
/// gossip, on comparable dynamics.
///
/// The shapes tell the mechanism story: flooding and Algorithm 2 are
/// S-curves completing in a handful of rounds (Algorithm 2's curve tracks
/// flooding at a fraction of the traffic since only the backbone speaks);
/// gossip's curve has a long stochastic tail.
pub fn e16_progress_curves() -> ExperimentResult {
    let n = 50;
    let k = 6;
    let seed = 12;
    let budget = 3 * n;
    let assignment = round_robin_assignment(n, k);

    let mut runs: Vec<(&'static str, RunReport)> = Vec::new();

    let mut flat = FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed));
    runs.push((
        "klo-flood",
        run_algorithm(
            &AlgorithmKind::KloFlood { rounds: budget },
            &mut flat,
            &assignment,
            RunConfig::new().record_rounds(true),
        ),
    ));

    let mut hinet = HiNetGen::new(HiNetConfig {
        n,
        num_heads: n / 6,
        theta: n / 3,
        l: 2,
        t: 1,
        reaffil_prob: 0.2,
        rotate_heads: true,
        noise_edges: n / 5,
        seed,
    });
    runs.push((
        "alg2-hinet",
        run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: budget },
            &mut hinet,
            &assignment,
            RunConfig::new().record_rounds(true),
        ),
    ));

    let mut flat = FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed));
    runs.push((
        "gossip",
        run_algorithm(
            &AlgorithmKind::Gossip {
                rounds: budget,
                seed,
            },
            &mut flat,
            &assignment,
            RunConfig::new().record_rounds(true),
        ),
    ));

    let max_rounds = runs
        .iter()
        .map(|(_, r)| r.metrics.rounds.len())
        .max()
        .unwrap_or(0);
    let mut table = Table::new(
        format!("Informed nodes at round start (n={n}, k={k}); '-' = already finished"),
        &["round", "klo-flood", "alg2-hinet", "gossip"],
    );
    for round in 0..max_rounds {
        let mut row = vec![round.to_string()];
        for (_, r) in &runs {
            row.push(
                r.metrics
                    .rounds
                    .get(round)
                    .map_or("-".into(), |m| m.informed_nodes.to_string()),
            );
        }
        table.push_row(row);
    }

    let notes = runs
        .iter()
        .map(|(label, r)| {
            format!(
                "{label}: completed in {} rounds, {} tokens sent",
                r.completion_round.map_or(0, |x| x),
                r.metrics.tokens_sent
            )
        })
        .collect();

    ExperimentResult {
        id: "E16",
        title: "Figure — dissemination progress curves",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_terminal() {
        let r = e16_progress_curves();
        let t = &r.tables[0];
        for col in 1..=3 {
            let mut prev = 0i64;
            for row in t.rows() {
                let cell = &row[col];
                if cell == "-" {
                    continue;
                }
                let v: i64 = cell.parse().unwrap();
                assert!(v >= prev, "column {col} not monotone: {v} < {prev}");
                prev = v;
            }
        }
        assert!(r.notes.iter().all(|n| n.contains("completed")));
    }

    #[test]
    fn deterministic_algorithms_start_uninformed() {
        let r = e16_progress_curves();
        let t = &r.tables[0];
        // Round 0: nobody holds all k tokens (k > 1 spread round-robin).
        assert_eq!(t.cell(0, 1), "0");
        assert_eq!(t.cell(0, 2), "0");
    }
}
