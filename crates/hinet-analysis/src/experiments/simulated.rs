//! E3 / E11 / E12 — simulated experiments.

use super::ExperimentResult;
use crate::report::{fmt_pct, Table};
use crate::scenarios::{self, ScenarioReport};
use crate::stats::Summary;
use crate::sweep::run_sweep;
use hinet_cluster::clustering::ClusteringKind;
use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::ClusteredMobilityGen;
use hinet_core::analysis::ModelParams;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::EdgeMarkovianGen;
use hinet_sim::engine::RunConfig;
use hinet_sim::token::round_robin_assignment;

const SEEDS: [u64; 3] = [11, 42, 97];

fn summarise_rows(rows_by_seed: &[Vec<ScenarioReport>]) -> Table {
    let mut table = Table::new(
        "Measured (mean over seeds) vs analytic bound",
        &[
            "network model",
            "analytic time",
            "measured time",
            "analytic comm",
            "measured comm",
            "comm / bound",
        ],
    );
    let row_count = rows_by_seed[0].len();
    for i in 0..row_count {
        let label = rows_by_seed[0][i].label;
        let analytic_time = rows_by_seed[0][i].analytic_time;
        let analytic_comm = rows_by_seed[0][i].analytic_comm;
        let times: Vec<u64> = rows_by_seed.iter().map(|r| r[i].measured_time()).collect();
        let comms: Vec<u64> = rows_by_seed.iter().map(|r| r[i].measured_comm()).collect();
        let (ts, cs) = (Summary::of_u64(&times), Summary::of_u64(&comms));
        table.push_row(vec![
            label.into(),
            analytic_time.to_string(),
            ts.cell(),
            analytic_comm.to_string(),
            cs.cell(),
            fmt_pct(cs.mean / analytic_comm as f64),
        ]);
    }
    table
}

/// E3: run the four Table 3 rows on the simulator at the paper's parameters
/// and compare measured time/communication to the analytic bounds.
///
/// Measured values are *below* the bounds (they are worst-case upper
/// bounds: nodes stop sending a token once their send-logs cover their
/// knowledge, and completion usually lands before the last phase); the
/// *ordering* — HiNet ≪ KLO on communication at similar-or-better time —
/// is the property the paper claims and the one asserted in tests.
pub fn e3_simulated_table3() -> ExperimentResult {
    let p = ModelParams::table3();
    let p_1l = p.with_n_r(10);
    let rows_by_seed: Vec<Vec<ScenarioReport>> =
        run_sweep(&SEEDS, 0, |&seed| scenarios::run_all_rows(&p, &p_1l, seed));
    let table = summarise_rows(&rows_by_seed);

    let mean = |i: usize, f: &dyn Fn(&ScenarioReport) -> u64| -> f64 {
        rows_by_seed.iter().map(|r| f(&r[i]) as f64).sum::<f64>() / rows_by_seed.len() as f64
    };
    let comm_reduction_tl = 1.0 - mean(1, &|r| r.measured_comm()) / mean(0, &|r| r.measured_comm());
    let comm_reduction_1l = 1.0 - mean(3, &|r| r.measured_comm()) / mean(2, &|r| r.measured_comm());
    ExperimentResult {
        id: "E3",
        title: "Table 3, simulated — measured vs analytic",
        tables: vec![table],
        notes: vec![
            format!(
                "Measured communication reduction vs KLO: {} in the (T, L) scenario, {} \
                 in the (1, L) scenario (paper's analytic: 46% / 35%).",
                fmt_pct(comm_reduction_tl),
                fmt_pct(comm_reduction_1l)
            ),
            "Measured costs sit below the analytic bounds — the formulas are \
             worst-case; the win ordering is what the paper claims and what holds."
                .into(),
        ],
    }
}

/// E11: ablation — Remark 1's ∞-stable-heads variant against plain
/// Algorithm 1 on the same stable-head dynamics.
pub fn e11_remark1_ablation() -> ExperimentResult {
    let p = ModelParams::table3();
    let pairs: Vec<(ScenarioReport, ScenarioReport)> = run_sweep(&SEEDS, 0, |&seed| {
        (
            scenarios::run_hinet_tl(&p, seed),
            scenarios::run_remark1(&p, seed),
        )
    });
    let mut table = Table::new(
        "Algorithm 1 vs Remark 1 variant (mean over seeds)",
        &["variant", "measured time", "measured comm", "member tokens"],
    );
    for (label, pick) in [
        ("Algorithm 1 (rotating heads)", 0usize),
        ("Remark 1 (∞-stable heads)", 1),
    ] {
        fn sel(pair: &(ScenarioReport, ScenarioReport), pick: usize) -> &ScenarioReport {
            if pick == 0 {
                &pair.0
            } else {
                &pair.1
            }
        }
        let times: Vec<u64> = pairs.iter().map(|p| sel(p, pick).measured_time()).collect();
        let comms: Vec<u64> = pairs.iter().map(|p| sel(p, pick).measured_comm()).collect();
        let member_tokens: Vec<u64> = pairs
            .iter()
            .map(|p| sel(p, pick).run.metrics.tokens_by_role[2])
            .collect();
        table.push_row(vec![
            label.into(),
            Summary::of_u64(&times).cell(),
            Summary::of_u64(&comms).cell(),
            Summary::of_u64(&member_tokens).cell(),
        ]);
    }
    ExperimentResult {
        id: "E11",
        title: "Ablation — Remark 1 (∞-stable heads) vs Algorithm 1",
        tables: vec![table],
        notes: vec![
            "Remark 1 removes member re-sends after re-affiliation and terminates \
             by the actual head count rather than the bound θ."
                .into(),
        ],
    }
}

/// E12: the paper's future-work direction — clusters over an
/// edge-Markovian dynamic graph. Algorithm 2 over an emergent (lowest-ID)
/// hierarchy vs flat KLO flooding, on identical EMDG dynamics.
pub fn e12_emdg_clusters() -> ExperimentResult {
    let n = 60;
    let k = 6;
    let outcomes: Vec<(u64, u64, u64, u64)> = run_sweep(&SEEDS, 0, |&seed| {
        let assignment = round_robin_assignment(n, k);
        let make_emdg = || EdgeMarkovianGen::new(n, 0.002, 0.05, 0.04, true, seed);

        let mut clustered =
            ClusteredMobilityGen::new(make_emdg(), ClusteringKind::GreedyDominating, true);
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: n - 1 },
            &mut clustered,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        let mut flat = FlatProvider::new(make_emdg());
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: n - 1 },
            &mut flat,
            &assignment,
            RunConfig::new().stop_on_completion(false),
        );
        (
            alg2.completion_round
                .expect("alg2 on connected EMDG completes") as u64,
            alg2.metrics.tokens_sent,
            flood.completion_round.expect("flooding completes") as u64,
            flood.metrics.tokens_sent,
        )
    });
    let mut table = Table::new(
        format!(
            "EMDG (n={n}, p=0.002, q=0.05, ~20-round link persistence), k={k}, mean over seeds"
        ),
        &["algorithm", "measured time", "measured comm"],
    );
    let a_time: Vec<u64> = outcomes.iter().map(|o| o.0).collect();
    let a_comm: Vec<u64> = outcomes.iter().map(|o| o.1).collect();
    let f_time: Vec<u64> = outcomes.iter().map(|o| o.2).collect();
    let f_comm: Vec<u64> = outcomes.iter().map(|o| o.3).collect();
    table.push_row(vec![
        "Algorithm 2 over dominating-set clusters".into(),
        Summary::of_u64(&a_time).cell(),
        Summary::of_u64(&a_comm).cell(),
    ]);
    table.push_row(vec![
        "KLO full flooding (flat)".into(),
        Summary::of_u64(&f_time).cell(),
        Summary::of_u64(&f_comm).cell(),
    ]);
    let reduction = 1.0 - Summary::of_u64(&a_comm).mean / Summary::of_u64(&f_comm).mean;
    ExperimentResult {
        id: "E12",
        title: "Extension — clusters over edge-Markovian dynamics",
        tables: vec![table],
        notes: vec![format!(
            "Hierarchy still pays off on EMDG dynamics the paper never evaluated: \
             {} less communication than flat flooding.",
            fmt_pct(reduction)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_rows_complete_and_order_holds() {
        let r = e3_simulated_table3();
        let t = &r.tables[0];
        assert_eq!(t.len(), 4);
        // comm/bound column parses as a percentage below ~120%.
        for row in t.rows() {
            let pct: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(pct <= 120.0, "{}: {pct}% of bound", row[0]);
        }
    }

    #[test]
    fn e11_remark1_not_more_expensive() {
        let r = e11_remark1_ablation();
        let t = &r.tables[0];
        let parse_mean =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        let alg1_comm = parse_mean(t.cell(0, 2));
        let remark1_comm = parse_mean(t.cell(1, 2));
        assert!(
            remark1_comm <= alg1_comm * 1.1,
            "remark1 {remark1_comm} vs alg1 {alg1_comm}"
        );
    }

    #[test]
    fn e12_clusters_beat_flooding_on_emdg() {
        let r = e12_emdg_clusters();
        assert!(r.notes[0].contains("less communication"), "{}", r.notes[0]);
        let t = &r.tables[0];
        let parse_mean =
            |cell: &str| -> f64 { cell.split('±').next().unwrap().trim().parse().unwrap() };
        assert!(parse_mean(t.cell(0, 2)) < parse_mean(t.cell(1, 2)));
    }
}
