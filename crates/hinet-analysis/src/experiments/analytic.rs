//! E1/E2 — the paper's analytical tables.

use super::ExperimentResult;
use crate::report::{fmt_pct, Table};
use hinet_core::analysis::{self, ModelParams};

/// E1: Table 2 — the closed-form cost model, evaluated at the paper's
/// example parameters and at a second, larger parameter point to show the
/// formulas rather than one instantiation.
pub fn e1_table2() -> ExperimentResult {
    let formula_rows: [(&str, &str, &str); 4] = [
        (
            "(k+α·L)-interval connected [KLO]",
            "⌈n₀/(α·L)⌉·(k+α·L)",
            "⌈n₀/(2α)⌉·n₀·k",
        ),
        (
            "(k+α·L, L)-HiNet [Algorithm 1]",
            "(⌈θ/α⌉+1)·(k+α·L)",
            "(⌈θ/α⌉+1)·(n₀−n_m)·k + n_m·n_r·k",
        ),
        ("1-interval connected [KLO]", "n₀−1", "(n₀−1)·n₀·k"),
        (
            "(1, L)-HiNet [Algorithm 2]",
            "n₀−1",
            "(n₀−1)·(n₀−n_m)·k + n_m·n_r·k",
        ),
    ];
    let mut formulas = Table::new(
        "Table 2 — closed forms",
        &["network model", "time (rounds)", "communication (tokens)"],
    );
    for (m, t, c) in formula_rows {
        formulas.push_row(vec![m.into(), t.into(), c.into()]);
    }

    let evaluate = |title: String, p: ModelParams, p_1l: ModelParams| -> Table {
        let mut t = Table::new(
            title,
            &["network model", "time (rounds)", "communication (tokens)"],
        );
        for row in analysis::table2(&p, &p_1l) {
            t.push_row(vec![
                row.model.into(),
                row.time_rounds.to_string(),
                row.comm_tokens.to_string(),
            ]);
        }
        t
    };

    let p = ModelParams::table3();
    let big = ModelParams {
        n0: 500,
        theta: 120,
        n_m: 220,
        n_r: 4,
        k: 20,
        alpha: 6,
        l: 3,
    };
    ExperimentResult {
        id: "E1",
        title: "Table 2 — analytical cost model",
        tables: vec![
            formulas,
            evaluate("Evaluated at Table 3 parameters".into(), p, p.with_n_r(10)),
            evaluate(
                "Evaluated at n₀=500 parameters".into(),
                big,
                big.with_n_r(12),
            ),
        ],
        notes: vec![
            "Erratum E2-b: the paper's KLO row uses ⌈n₀/(α·L)⌉ phases in the time \
             column but ⌈n₀/(2α)⌉ in the communication column; both are reproduced \
             as printed."
                .into(),
        ],
    }
}

/// E2: Table 3 — paper-printed values vs the formulas' values, row by row.
pub fn e2_table3() -> ExperimentResult {
    let paper = [
        ("(k+α·L)-interval connected [KLO]", 180u64, 8000u64),
        ("(k+α·L, L)-HiNet [Algorithm 1]", 126, 4320),
        ("1-interval connected [KLO]", 99, 79200),
        ("(1, L)-HiNet [Algorithm 2]", 99, 51680),
    ];
    let computed = analysis::table3();
    let mut t = Table::new(
        "Table 3 — paper vs computed (n₀=100, θ=30, n_m=40, k=8, α=5, L=2, n_r=3/10)",
        &[
            "network model",
            "paper time",
            "computed time",
            "paper comm",
            "computed comm",
            "match",
        ],
    );
    let mut notes = Vec::new();
    for (row, (label, p_time, p_comm)) in computed.iter().zip(paper) {
        let matches = row.time_rounds == p_time && row.comm_tokens == p_comm;
        t.push_row(vec![
            label.into(),
            p_time.to_string(),
            row.time_rounds.to_string(),
            p_comm.to_string(),
            row.comm_tokens.to_string(),
            if matches {
                "yes".into()
            } else {
                "NO (see note)".into()
            },
        ]);
        if !matches {
            notes.push(format!(
                "Erratum E2-a: '{label}' — the paper prints comm {p_comm}, the printed \
                 formula gives {} (99·60·8 + 40·10·8 = 50720).",
                row.comm_tokens
            ));
        }
    }
    let reduction_tl = 1.0 - computed[1].comm_tokens as f64 / computed[0].comm_tokens as f64;
    let reduction_1l = 1.0 - computed[3].comm_tokens as f64 / computed[2].comm_tokens as f64;
    notes.push(format!(
        "Communication reduction vs KLO: {} in the (T, L) scenario, {} in the (1, L) \
         scenario — consistent with the paper's 'benefit can be as much as 50%'.",
        fmt_pct(reduction_tl),
        fmt_pct(reduction_1l)
    ));
    ExperimentResult {
        id: "E2",
        title: "Table 3 — numerical instantiation (paper vs formulas)",
        tables: vec![t],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_has_three_tables() {
        let r = e1_table2();
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].len(), 4);
        // Evaluated table carries the known Table 3 numbers.
        assert_eq!(r.tables[1].cell(0, 1), "180");
        assert_eq!(r.tables[1].cell(1, 2), "4320");
    }

    #[test]
    fn e2_matches_three_rows_and_flags_the_fourth() {
        let r = e2_table3();
        let t = &r.tables[0];
        assert_eq!(t.cell(0, 5), "yes");
        assert_eq!(t.cell(1, 5), "yes");
        assert_eq!(t.cell(2, 5), "yes");
        assert!(t.cell(3, 5).starts_with("NO"));
        assert!(r.notes.iter().any(|n| n.contains("50720")));
    }

    #[test]
    fn e2_reports_headline_reduction() {
        let r = e2_table3();
        assert!(r.notes.iter().any(|n| n.contains("46.0%")));
    }
}
