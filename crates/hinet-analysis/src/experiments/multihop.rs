//! E14 — multi-hop (d-hop) clusters: the paper's §VI future work,
//! implemented and measured.

use super::ExperimentResult;
use crate::report::Table;
use crate::stats::Summary;
use crate::sweep::run_sweep;
use hinet_cluster::clustering::{ClusterScheme, ClusteringKind, GatewayPolicy};
use hinet_cluster::ctvg::{CtvgTrace, FlatProvider};
use hinet_cluster::generators::ClusteredMobilityGen;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::{RandomWaypointGen, WaypointConfig};
use hinet_sim::engine::RunConfig;
use hinet_sim::token::round_robin_assignment;

const SEEDS: [u64; 3] = [5, 31, 88];

fn slow_field(n: usize, seed: u64) -> RandomWaypointGen {
    RandomWaypointGen::new(
        n,
        WaypointConfig {
            radius: 0.18,
            min_speed: 0.001,
            max_speed: 0.006,
            ensure_connected: true,
        },
        seed,
    )
}

/// E14: on identical slow-mobility dynamics, compare 1-hop clusters with
/// Algorithm 2 against d-hop clusters (d = 2, 3) with the multi-hop
/// variant, plus flat flooding as the reference.
///
/// Larger `d` thins the backbone (fewer heads and gateways broadcasting
/// every round) but adds growth-triggered member relays; the experiment
/// measures where the balance falls and reports the measured head counts
/// alongside the costs.
pub fn e14_multihop_clusters() -> ExperimentResult {
    let n = 70;
    let k = 8;
    let budget = n - 1;

    struct Cell {
        completed: bool,
        rounds: Option<usize>,
        comm: u64,
        heads: usize,
    }

    let variants: Vec<(&'static str, Option<ClusterScheme>)> = vec![
        (
            "Alg2, 1-hop lowest-ID clusters",
            Some(ClusterScheme::OneHop(
                ClusteringKind::LowestId,
                GatewayPolicy::MinimalPairwise,
            )),
        ),
        (
            "Alg2-MH, 2-hop clusters",
            Some(ClusterScheme::DHop {
                d: 2,
                policy: GatewayPolicy::MinimalPairwise,
            }),
        ),
        (
            "Alg2-MH, 3-hop clusters",
            Some(ClusterScheme::DHop {
                d: 3,
                policy: GatewayPolicy::MinimalPairwise,
            }),
        ),
        ("KLO full flooding (flat)", None),
    ];

    let runs: Vec<Vec<Cell>> = run_sweep(&SEEDS, 0, |&seed| {
        let assignment = round_robin_assignment(n, k);
        variants
            .iter()
            .map(|(_, scheme)| match scheme {
                Some(scheme) => {
                    let mut provider =
                        ClusteredMobilityGen::with_scheme(slow_field(n, seed), *scheme, true);
                    let kind = match scheme {
                        ClusterScheme::OneHop(..) => {
                            AlgorithmKind::HiNetFullExchange { rounds: budget }
                        }
                        ClusterScheme::DHop { .. } => {
                            AlgorithmKind::HiNetFullExchangeMH { rounds: budget }
                        }
                    };
                    let report = run_algorithm(&kind, &mut provider, &assignment, RunConfig::new());
                    let trace = CtvgTrace::capture(&mut provider, 4);
                    let heads = trace.hierarchy(0).heads().len();
                    Cell {
                        completed: report.completed(),
                        rounds: report.completion_round,
                        comm: report.metrics.tokens_sent,
                        heads,
                    }
                }
                None => {
                    let mut provider = FlatProvider::new(slow_field(n, seed));
                    let report = run_algorithm(
                        &AlgorithmKind::KloFlood { rounds: budget },
                        &mut provider,
                        &assignment,
                        RunConfig::new(),
                    );
                    Cell {
                        completed: report.completed(),
                        rounds: report.completion_round,
                        comm: report.metrics.tokens_sent,
                        heads: n,
                    }
                }
            })
            .collect()
    });

    let mut table = Table::new(
        format!(
            "d-hop clusters on slow mobility (n={n}, k={k}, mean over {} seeds)",
            SEEDS.len()
        ),
        &[
            "variant",
            "completed",
            "rounds",
            "tokens sent",
            "heads (round 0)",
        ],
    );
    for (i, (label, _)) in variants.iter().enumerate() {
        let all_completed = runs.iter().all(|r| r[i].completed);
        let rounds: Vec<u64> = runs
            .iter()
            .filter_map(|r| r[i].rounds.map(|x| x as u64))
            .collect();
        let comm: Vec<u64> = runs.iter().map(|r| r[i].comm).collect();
        let heads: Vec<u64> = runs.iter().map(|r| r[i].heads as u64).collect();
        table.push_row(vec![
            (*label).into(),
            all_completed.to_string(),
            if rounds.is_empty() {
                "never".into()
            } else {
                Summary::of_u64(&rounds).cell()
            },
            Summary::of_u64(&comm).cell(),
            Summary::of_u64(&heads).cell(),
        ]);
    }

    let mean_comm = |i: usize| -> f64 {
        runs.iter().map(|r| r[i].comm as f64).sum::<f64>() / runs.len() as f64
    };
    let notes = vec![
        format!(
            "Head-count thinning: 1-hop uses ~{:.0} heads, 2-hop ~{:.0}, 3-hop ~{:.0} \
             (of {n} nodes).",
            runs.iter().map(|r| r[0].heads as f64).sum::<f64>() / runs.len() as f64,
            runs.iter().map(|r| r[1].heads as f64).sum::<f64>() / runs.len() as f64,
            runs.iter().map(|r| r[2].heads as f64).sum::<f64>() / runs.len() as f64,
        ),
        format!(
            "Communication: 1-hop {:.0}, 2-hop {:.0}, 3-hop {:.0}, flooding {:.0} tokens.",
            mean_comm(0),
            mean_comm(1),
            mean_comm(2),
            mean_comm(3)
        ),
        "Finding: multi-hop clusters thin the backbone substantially, but the \
         growth-triggered member relays needed to bridge multi-hop member–head \
         paths give back most of the savings at this scale and density — the \
         1-hop hierarchy the paper analyses remains the best configuration, \
         which is a concrete answer to the §VI open question."
            .into(),
    ];

    ExperimentResult {
        id: "E14",
        title: "Extension — multi-hop (d-hop) clusters",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_complete() {
        let r = e14_multihop_clusters();
        let t = &r.tables[0];
        for row in t.rows() {
            assert_eq!(row[1], "true", "variant '{}' failed to complete", row[0]);
        }
    }

    #[test]
    fn deeper_clusters_have_fewer_heads() {
        let r = e14_multihop_clusters();
        let t = &r.tables[0];
        let heads = |row: usize| -> f64 {
            t.cell(row, 4)
                .split('±')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(heads(1) < heads(0), "2-hop should thin the head set");
        assert!(heads(2) <= heads(1), "3-hop at most as many as 2-hop");
    }

    #[test]
    fn one_hop_beats_flooding() {
        // The robust claim (matching the paper): the 1-hop hierarchy saves
        // communication vs flat flooding. The d-hop variants' relay
        // overhead is reported descriptively (see the experiment notes) —
        // their net effect is configuration-dependent.
        let r = e14_multihop_clusters();
        let t = &r.tables[0];
        let comm = |row: usize| -> f64 {
            t.cell(row, 3)
                .split('±')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            comm(0) < comm(3),
            "1-hop {} !< flooding {}",
            comm(0),
            comm(3)
        );
    }
}
