//! E17 — graceful degradation under message loss: Algorithm 2 (with ARQ
//! retransmission) vs KLO full flooding vs RLNC on the same lossy channel.

use super::ExperimentResult;
use crate::report::Table;
use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::netcode::run_rlnc;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::OneIntervalGen;
use hinet_rt::obs::{ObsConfig, Tracer};
use hinet_sim::engine::RunConfig;
use hinet_sim::fault::FaultPlan;
use hinet_sim::token::round_robin_assignment;

/// Dynamics seed (matches the E15 family) and fault-plane seed. Both are
/// pinned: the whole experiment replays exactly.
const SEED: u64 = 17;
const FAULT_SEED: u64 = 7;

/// Per-delivery loss rates swept, in parts per million.
const LOSS_PPM: [u32; 3] = [0, 50_000, 100_000];

/// E17: how each dissemination strategy degrades when the per-round
/// delivery assumption (stability Definition 1) is violated by seeded
/// i.i.d. message loss.
///
/// The three rows stress three different robustness mechanisms:
/// full flooding survives by blind redundancy (every neighbour repeats
/// everything, so a dropped copy is re-offered next round); Algorithm 2
/// has no redundancy — members send their TA once — so it needs the
/// explicit ARQ retransmission wrapper to complete (`retransmits` counts
/// the extra sends the recovery costs); RLNC survives because any
/// innovative coded packet replaces any other, making individual losses
/// fungible. Losses are charged to the sender (the packet was on the air),
/// so the `tokens sent` column shows what the channel consumed, not what
/// arrived.
pub fn e17_loss_resilience() -> ExperimentResult {
    let n = 60;
    let k = 8;
    let budget = 3 * n;
    let assignment = round_robin_assignment(n, k);

    let mut table = Table::new(
        format!(
            "Degradation under message loss (n={n}, k={k}, 1-interval dynamics, \
             fault seed {FAULT_SEED})"
        ),
        &[
            "loss",
            "algorithm",
            "outcome",
            "rounds",
            "tokens sent",
            "drops",
            "retransmits",
        ],
    );

    for ppm in LOSS_PPM {
        let faults = FaultPlan::new(FAULT_SEED).with_loss_ppm(ppm);
        let loss_label = format!("{}%", ppm as f64 / 10_000.0);

        // KLO full flooding on flat 1-interval dynamics. Flooding has no
        // ACK to wait on, so the retransmission wrapper does not apply —
        // its redundancy *is* the recovery mechanism.
        let mut flat = FlatProvider::new(OneIntervalGen::new(n, true, n / 5, SEED));
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: budget },
            &mut flat,
            &assignment,
            RunConfig::new().faults(faults.clone()),
        );
        table.push_row(vec![
            loss_label.clone(),
            "klo-flood".into(),
            flood.outcome.to_string(),
            flood
                .completion_round
                .map_or("never".into(), |r| r.to_string()),
            flood.metrics.tokens_sent.to_string(),
            flood.metrics.faults_injected.to_string(),
            flood.metrics.retransmits.to_string(),
        ]);

        // Algorithm 2 on a (1, L)-HiNet. The 0% row runs the protocol as
        // published (assumptions hold, no wrapper); lossy rows arm the ARQ
        // wrapper, whose re-pushes also fire while a member merely *waits*
        // for the head's echo — the retransmit count is the full price of
        // not trusting the channel, not just the lost packets replayed.
        let retransmit = ppm > 0;
        let mut hinet = HiNetGen::new(HiNetConfig {
            n,
            num_heads: n / 6,
            theta: n / 3,
            l: 2,
            t: 1,
            reaffil_prob: 0.2,
            rotate_heads: true,
            noise_edges: n / 5,
            seed: SEED,
        });
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: budget },
            &mut hinet,
            &assignment,
            RunConfig::new()
                .faults(faults.clone())
                .retransmit(retransmit),
        );
        table.push_row(vec![
            loss_label.clone(),
            if retransmit {
                "alg2 + retransmit".into()
            } else {
                "alg2".into()
            },
            alg2.outcome.to_string(),
            alg2.completion_round
                .map_or("never".into(), |r| r.to_string()),
            alg2.metrics.tokens_sent.to_string(),
            alg2.metrics.faults_injected.to_string(),
            alg2.metrics.retransmits.to_string(),
        ]);

        // RLNC on the same flat dynamics. The report carries no fault
        // counters, so drops come from the tracer's exact totals.
        let mut flat = OneIntervalGen::new(n, true, n / 5, SEED);
        let mut tracer = Tracer::new(ObsConfig::full());
        let rlnc = run_rlnc(
            &mut flat,
            &assignment,
            SEED,
            RunConfig::new()
                .max_rounds(budget)
                .faults(faults.clone())
                .tracer(&mut tracer),
        );
        table.push_row(vec![
            loss_label.clone(),
            "rlnc".into(),
            rlnc.completion_round.map_or_else(
                || "stalled (budget exhausted)".into(),
                |r| format!("completed in {r} rounds"),
            ),
            rlnc.completion_round
                .map_or("never".into(), |r| r.to_string()),
            rlnc.packets_sent.to_string(),
            tracer.counters().faults_injected.to_string(),
            "0".into(),
        ]);
    }

    ExperimentResult {
        id: "E17",
        title: "Robustness — graceful degradation under message loss",
        tables: vec![table],
        notes: vec![
            "Flooding and RLNC absorb loss through redundancy (every neighbour \
             repeats / any innovative packet substitutes); Algorithm 2 sends each \
             TA exactly once, so without --retransmit a single dropped member push \
             can stall the cluster forever. The ARQ wrapper restores completion at \
             the price of the retransmit count shown."
                .into(),
            "Same fault seed → same drop schedule → identical counters on every \
             rerun; the table is a fixed point of `hinet exp E17`."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_rows_are_fault_free_and_complete() {
        let r = e17_loss_resilience();
        let t = &r.tables[0];
        for row in 0..3 {
            assert!(
                t.cell(row, 2).starts_with("completed"),
                "row {row}: {}",
                t.cell(row, 2)
            );
            assert_eq!(t.cell(row, 5), "0", "row {row} injected faults at 0 loss");
            assert_eq!(t.cell(row, 6), "0", "row {row} retransmitted at 0 loss");
        }
    }

    #[test]
    fn all_three_strategies_complete_under_five_percent_loss() {
        let r = e17_loss_resilience();
        let t = &r.tables[0];
        for row in 3..6 {
            assert!(
                t.cell(row, 2).starts_with("completed"),
                "{} at {} loss: {}",
                t.cell(row, 1),
                t.cell(row, 0),
                t.cell(row, 2)
            );
            let drops: u64 = t.cell(row, 5).parse().unwrap();
            assert!(drops > 0, "row {row}: lossy run injected no faults");
        }
    }

    #[test]
    fn alg2_recovery_costs_retransmissions_under_loss() {
        let r = e17_loss_resilience();
        let t = &r.tables[0];
        // Rows 4 and 7 are the alg2 rows at 5% and 10% loss.
        for row in [4, 7] {
            let retransmits: u64 = t.cell(row, 6).parse().unwrap();
            assert!(retransmits > 0, "row {row}: ARQ never fired under loss");
        }
    }

    #[test]
    fn the_experiment_is_deterministic() {
        let a = e17_loss_resilience();
        let b = e17_loss_resilience();
        assert_eq!(a.tables[0].to_text(), b.tables[0].to_text());
    }
}
