//! The experiment registry (E1–E17).
//!
//! Each experiment regenerates one artifact of the paper's evaluation (or
//! one of the sweep "figures" the analysis implies but never measured —
//! see DESIGN.md §4 for the experiment ↔ artifact index) and returns
//! rendered tables plus free-form notes. Experiments are deterministic:
//! fixed seeds, fixed parameter grids.

mod adversarial;
mod analytic;
mod faults;
mod lattice;
mod multihop;
mod netcode;
mod progress;
mod simulated;
mod sweeps;

pub use adversarial::e13_quiescence_trap;
pub use analytic::{e1_table2, e2_table3};
pub use faults::e17_loss_resilience;
pub use lattice::e4_definition_lattice;
pub use multihop::e14_multihop_clusters;
pub use netcode::e15_network_coding;
pub use progress::e16_progress_curves;
pub use simulated::{e11_remark1_ablation, e12_emdg_clusters, e3_simulated_table3};
pub use sweeps::{
    e10_headline, e5_sweep_n, e6_sweep_k, e7_sweep_alpha, e8_sweep_l, e9_sweep_churn, params_for_n,
};

use crate::report::Table;

/// Output of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"E3"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Observations / errata callouts the tables don't carry.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Render the whole result as plain text.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Render the whole result as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out
    }
}

/// A registry entry.
pub struct Experiment {
    /// Experiment id, e.g. `"E5"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Runner.
    pub run: fn() -> ExperimentResult,
}

/// Every experiment, in id order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            title: "Table 2 — analytical cost model",
            run: e1_table2,
        },
        Experiment {
            id: "E2",
            title: "Table 3 — numerical instantiation (paper vs formulas)",
            run: e2_table3,
        },
        Experiment {
            id: "E3",
            title: "Table 3, simulated — measured vs analytic",
            run: e3_simulated_table3,
        },
        Experiment {
            id: "E4",
            title: "Fig. 2 — stability-definition lattice",
            run: e4_definition_lattice,
        },
        Experiment {
            id: "E5",
            title: "Sweep — cost vs network size n₀",
            run: e5_sweep_n,
        },
        Experiment {
            id: "E6",
            title: "Sweep — cost vs token count k",
            run: e6_sweep_k,
        },
        Experiment {
            id: "E7",
            title: "Sweep — cost vs progress coefficient α",
            run: e7_sweep_alpha,
        },
        Experiment {
            id: "E8",
            title: "Sweep — cost vs hop bound L",
            run: e8_sweep_l,
        },
        Experiment {
            id: "E9",
            title: "Sweep — cost vs re-affiliation churn n_r",
            run: e9_sweep_churn,
        },
        Experiment {
            id: "E10",
            title: "Headline — communication reduction across regimes",
            run: e10_headline,
        },
        Experiment {
            id: "E11",
            title: "Ablation — Remark 1 (∞-stable heads) vs Algorithm 1",
            run: e11_remark1_ablation,
        },
        Experiment {
            id: "E12",
            title: "Extension — clusters over edge-Markovian dynamics",
            run: e12_emdg_clusters,
        },
        Experiment {
            id: "E13",
            title: "Adversarial — the quiescence trap",
            run: e13_quiescence_trap,
        },
        Experiment {
            id: "E14",
            title: "Extension — multi-hop (d-hop) clusters",
            run: e14_multihop_clusters,
        },
        Experiment {
            id: "E15",
            title: "Extension — network coding vs token forwarding",
            run: e15_network_coding,
        },
        Experiment {
            id: "E16",
            title: "Figure — dissemination progress curves",
            run: e16_progress_curves,
        },
        Experiment {
            id: "E17",
            title: "Robustness — graceful degradation under message loss",
            run: e17_loss_resilience,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_ordered() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 17);
        let ids: Vec<_> = exps.iter().map(|e| e.id).collect();
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert_eq!(ids[0], "E1");
        assert_eq!(ids[16], "E17");
    }

    #[test]
    fn result_rendering_includes_everything() {
        let r = ExperimentResult {
            id: "EX",
            title: "demo",
            tables: vec![Table::new("t", &["a"])],
            notes: vec!["a note".into()],
        };
        let text = r.to_text();
        assert!(text.contains("EX"));
        assert!(text.contains("a note"));
        let md = r.to_markdown();
        assert!(md.contains("## EX"));
        assert!(md.contains("> a note"));
    }
}
