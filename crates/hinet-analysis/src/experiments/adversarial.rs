//! E13 — why guaranteed dissemination must keep transmitting: the
//! quiescence trap.

use super::ExperimentResult;
use crate::report::Table;
use hinet_cluster::ctvg::FlatProvider;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::{QuiescenceTrapGen, RandomWaypointGen, WaypointConfig};
use hinet_sim::engine::{RunConfig, RunReport};
use hinet_sim::token::single_source_assignment;

/// E13: delta-triggered flooding (broadcast only after knowledge growth)
/// against full flooding, on (a) the adversarial quiescence-trap schedule
/// and (b) benign slow-mobility dynamics — both 1-interval connected.
///
/// The trap starves the quiescent protocol forever while full flooding
/// sails through; under slow mobility (links persist across rounds, so
/// fresh nodes are still talking when they meet uninformed ones) the
/// quiescent protocol completes at a fraction of flooding's cost. This is
/// the executable justification for the paper's design choice: to save
/// communication *without* losing the delivery guarantee you need
/// structural knowledge (the cluster backbone and its stability model),
/// not just send-suppression heuristics. (Memoryless per-round churn also
/// defeats delta-flooding — links vanish before the news crosses them —
/// which only sharpens the point.)
pub fn e13_quiescence_trap() -> ExperimentResult {
    let n = 30;
    let budget = 4 * n; // generous: n−1 suffices for the guaranteed one
    let assignment = single_source_assignment(n, 1, 0);

    let mut table = Table::new(
        format!("Quiescence trap vs benign churn (n={n}, k=1 at node 0, budget {budget} rounds)"),
        &["dynamics", "algorithm", "outcome", "rounds", "tokens sent"],
    );
    let mut record = |dynamics: &str, algorithm: &str, report: &RunReport| {
        table.push_row(vec![
            dynamics.into(),
            algorithm.into(),
            report.outcome.to_string(),
            report
                .completion_round
                .map_or("never".into(), |r| r.to_string()),
            report.metrics.tokens_sent.to_string(),
        ]);
    };

    // (a) The trap.
    let mut trap = FlatProvider::new(QuiescenceTrapGen::new(n));
    let delta_trap = run_algorithm(
        &AlgorithmKind::DeltaFlood { rounds: budget },
        &mut trap,
        &assignment,
        RunConfig::new(),
    );
    record("quiescence trap", "delta-flood", &delta_trap);
    let mut trap = FlatProvider::new(QuiescenceTrapGen::new(n));
    let flood_trap = run_algorithm(
        &AlgorithmKind::KloFlood { rounds: budget },
        &mut trap,
        &assignment,
        RunConfig::new(),
    );
    record("quiescence trap", "klo-flood", &flood_trap);

    // (b) Benign slow mobility: links persist across rounds.
    let benign = || {
        FlatProvider::new(RandomWaypointGen::new(
            n,
            WaypointConfig {
                radius: 0.35,
                min_speed: 0.002,
                max_speed: 0.01,
                ensure_connected: true,
            },
            99,
        ))
    };
    let mut churn = benign();
    let delta_churn = run_algorithm(
        &AlgorithmKind::DeltaFlood { rounds: budget },
        &mut churn,
        &assignment,
        RunConfig::new(),
    );
    record("slow mobility", "delta-flood", &delta_churn);
    let mut churn = benign();
    let flood_churn = run_algorithm(
        &AlgorithmKind::KloFlood { rounds: budget },
        &mut churn,
        &assignment,
        RunConfig::new(),
    );
    record("slow mobility", "klo-flood", &flood_churn);

    let notes = vec![
        if delta_trap.completed() {
            "UNEXPECTED: delta-flood completed on the trap — adversary broken".into()
        } else {
            format!(
                "Delta-flood never delivers to the victim on the trap (starved for all \
                 {budget} rounds) while full flooding completes in {} rounds — quiescence \
                 heuristics forfeit the 1-interval delivery guarantee.",
                flood_trap.completion_round.unwrap()
            )
        },
        format!(
            "Under slow mobility delta-flood completes in {} rounds with {} tokens vs \
             flooding's {} tokens: the savings are real, just not *guaranteed* — \
             which is the gap (T, L)-HiNet closes soundly.",
            delta_churn.completion_round.map_or(0, |r| r),
            delta_churn.metrics.tokens_sent,
            flood_churn.metrics.tokens_sent
        ),
    ];

    ExperimentResult {
        id: "E13",
        title: "Adversarial — the quiescence trap (why broadcasting must continue)",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_starves_delta_but_not_flooding() {
        let r = e13_quiescence_trap();
        let t = &r.tables[0];
        // Row 0: delta on trap — stalled, and attributably so (no faults
        // were injected, so the structured outcome names the protocol, not
        // the round budget's arbitrariness, as what to investigate).
        assert!(t.cell(0, 2).starts_with("stalled"), "{}", t.cell(0, 2));
        assert_eq!(t.cell(0, 3), "never");
        // Row 1: flooding on trap — complete.
        assert!(t.cell(1, 2).starts_with("completed"), "{}", t.cell(1, 2));
        // Rows 2-3: both complete on benign churn.
        assert!(t.cell(2, 2).starts_with("completed"), "{}", t.cell(2, 2));
        assert!(t.cell(3, 2).starts_with("completed"), "{}", t.cell(3, 2));
    }

    #[test]
    fn delta_is_cheaper_on_benign_churn() {
        let r = e13_quiescence_trap();
        let t = &r.tables[0];
        let delta: u64 = t.cell(2, 4).parse().unwrap();
        let flood: u64 = t.cell(3, 4).parse().unwrap();
        assert!(delta < flood, "delta {delta} vs flood {flood}");
    }
}
