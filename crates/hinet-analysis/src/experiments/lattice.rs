//! E4 — the Fig. 2 definition lattice, checked on generated traces.

use super::ExperimentResult;
use crate::report::Table;
use hinet_cluster::ctvg::CtvgTrace;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_cluster::hierarchy::ClusterId;
use hinet_cluster::stability::{
    cluster_stable_in_window, has_t_interval_l_hop_connectivity, head_connectivity_in_window,
    is_head_set_t_stable, is_hierarchy_t_stable, is_t_l_hinet, l_hop_in_window,
};

/// One implication `antecedent ⇒ consequent` checked over many traces.
struct Implication {
    name: &'static str,
    holds: usize,
    vacuous: usize,
    violated: usize,
}

/// E4: empirically exercise the Fig. 2 lattice — on a family of generated
/// traces spanning stable and churning regimes, whenever a higher-level
/// definition holds, all of its children must hold. A single violation
/// falsifies the verifier stack (the property tests at workspace level do
/// the same with random parameters).
pub fn e4_definition_lattice() -> ExperimentResult {
    let mut imps = vec![
        Implication {
            name: "Def 8 ⇒ Def 4 (stable hierarchy)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
        Implication {
            name: "Def 8 ⇒ Def 7 (T-interval L-hop conn.)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
        Implication {
            name: "Def 4 ⇒ Def 2 (stable head set)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
        Implication {
            name: "Def 4 ⇒ Def 3 (each cluster stable)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
        Implication {
            name: "Def 7 ⇒ Def 5 (head connectivity)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
        Implication {
            name: "Def 7 ⇒ Def 6 (L-hop bound)",
            holds: 0,
            vacuous: 0,
            violated: 0,
        },
    ];

    let mut traces_checked = 0;
    for (t, l, rotate, reaffil, seed) in [
        (4usize, 2usize, false, 0.0, 1u64),
        (4, 2, true, 0.3, 2),
        (1, 3, true, 0.5, 3),
        (6, 1, false, 0.2, 4),
        (3, 4, true, 0.0, 5),
        (2, 2, true, 0.9, 6),
    ] {
        let cfg = HiNetConfig {
            n: 36,
            num_heads: 4,
            theta: 9,
            l,
            t,
            reaffil_prob: reaffil,
            rotate_heads: rotate,
            noise_edges: 5,
            seed,
        };
        let mut gen = HiNetGen::new(cfg);
        let trace = CtvgTrace::capture(&mut gen, 3 * t);
        traces_checked += 1;

        let def8 = is_t_l_hinet(&trace, t, l);
        let def4 = is_hierarchy_t_stable(&trace, t);
        let def7 = has_t_interval_l_hop_connectivity(&trace, t, l);
        let def2 = is_head_set_t_stable(&trace, t);
        let def3_all = trace
            .hierarchy(0)
            .heads()
            .iter()
            .all(|&h| cluster_stable_in_window(&trace, ClusterId(h), 0, t.min(trace.len())));
        let win = t.min(trace.len());
        let def5 = head_connectivity_in_window(&trace, 0, win);
        let def6 = l_hop_in_window(&trace, 0, win, l);

        let mut score = |idx: usize, ante: bool, cons: bool| {
            if !ante {
                imps[idx].vacuous += 1;
            } else if cons {
                imps[idx].holds += 1;
            } else {
                imps[idx].violated += 1;
            }
        };
        score(0, def8, def4);
        score(1, def8, def7);
        score(2, def4, def2);
        score(3, def4, def3_all);
        score(4, def7, def5);
        score(5, def7, def6);
    }

    let mut table = Table::new(
        format!("Definition lattice over {traces_checked} generated traces"),
        &["implication", "holds", "vacuous", "violated"],
    );
    let mut violated_any = false;
    for imp in &imps {
        violated_any |= imp.violated > 0;
        table.push_row(vec![
            imp.name.into(),
            imp.holds.to_string(),
            imp.vacuous.to_string(),
            imp.violated.to_string(),
        ]);
    }
    ExperimentResult {
        id: "E4",
        title: "Fig. 2 — stability-definition lattice",
        tables: vec![table],
        notes: vec![if violated_any {
            "VIOLATION FOUND — verifier stack inconsistent with Fig. 2".into()
        } else {
            "All implications hold on every checked trace, matching Fig. 2.".into()
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_no_violations() {
        let r = e4_definition_lattice();
        let t = &r.tables[0];
        for row in t.rows() {
            assert_eq!(row[3], "0", "implication '{}' violated", row[0]);
        }
        assert!(r.notes[0].contains("All implications hold"));
    }

    #[test]
    fn lattice_not_fully_vacuous() {
        // At least the constructed stable traces must trigger the
        // antecedents, otherwise the experiment tests nothing.
        let r = e4_definition_lattice();
        let t = &r.tables[0];
        for row in t.rows() {
            let holds: usize = row[1].parse().unwrap();
            assert!(holds > 0, "implication '{}' never exercised", row[0]);
        }
    }
}
