//! E15 — random linear network coding vs token forwarding vs HiNet.

use super::ExperimentResult;
use crate::report::Table;
use crate::stats::Summary;
use crate::sweep::run_sweep;
use hinet_cluster::ctvg::FlatProvider;
use hinet_cluster::generators::{HiNetConfig, HiNetGen};
use hinet_core::netcode::run_rlnc;
use hinet_core::runner::{run_algorithm, AlgorithmKind};
use hinet_graph::generators::OneIntervalGen;
use hinet_sim::engine::{CostWeights, RunConfig};
use hinet_sim::token::round_robin_assignment;

const SEEDS: [u64; 3] = [3, 17, 59];

/// E15: Haeupler–Karger-style RLNC against the paper's Algorithm 2 and the
/// flat flooding baseline, all under 1-interval-connected dynamics at the
/// same scale, in both the paper's token metric and the byte metric
/// (coded packets pay a k-bit coefficient header).
///
/// The expected shape: RLNC crushes the *token* metric (one payload per
/// packet per round instead of k), while the byte metric narrows the gap;
/// the HiNet hierarchy attacks an orthogonal axis — *who* transmits —
/// so its savings stack conceptually with coding, which the paper's
/// related-work section hints at via \[8\].
pub fn e15_network_coding() -> ExperimentResult {
    let n = 60;
    let k = 8;
    let budget = 3 * n;
    let weights = CostWeights::default();

    struct Cell {
        completed: bool,
        rounds: Option<usize>,
        tokens: u64,
        bytes: u64,
    }

    let runs: Vec<Vec<Cell>> = run_sweep(&SEEDS, 0, |&seed| {
        let assignment = round_robin_assignment(n, k);
        let mut out = Vec::new();

        // Flat flooding.
        let mut flat = FlatProvider::new(OneIntervalGen::new(n, true, n / 5, seed));
        let flood = run_algorithm(
            &AlgorithmKind::KloFlood { rounds: budget },
            &mut flat,
            &assignment,
            RunConfig::new().cost_weights(weights),
        );
        out.push(Cell {
            completed: flood.completed(),
            rounds: flood.completion_round,
            tokens: flood.metrics.tokens_sent,
            bytes: flood.total_bytes(),
        });

        // Algorithm 2 on a (1, L)-HiNet at matching scale.
        let mut hinet = HiNetGen::new(HiNetConfig {
            n,
            num_heads: n / 6,
            theta: n / 3,
            l: 2,
            t: 1,
            reaffil_prob: 0.2,
            rotate_heads: true,
            noise_edges: n / 5,
            seed,
        });
        let alg2 = run_algorithm(
            &AlgorithmKind::HiNetFullExchange { rounds: budget },
            &mut hinet,
            &assignment,
            RunConfig::new().cost_weights(weights),
        );
        out.push(Cell {
            completed: alg2.completed(),
            rounds: alg2.completion_round,
            tokens: alg2.metrics.tokens_sent,
            bytes: alg2.total_bytes(),
        });

        // RLNC on the same flat dynamics as flooding.
        let mut flat = OneIntervalGen::new(n, true, n / 5, seed);
        let rlnc = run_rlnc(
            &mut flat,
            &assignment,
            seed,
            RunConfig::new().max_rounds(budget),
        );
        out.push(Cell {
            completed: rlnc.completed(),
            rounds: rlnc.completion_round,
            tokens: rlnc.packets_sent,
            bytes: rlnc.total_bytes(weights),
        });
        out
    });

    let labels = [
        "KLO full flooding (flat)",
        "Algorithm 2 on (1, L)-HiNet",
        "RLNC network coding (flat)",
    ];
    let mut table = Table::new(
        format!(
            "Coding vs forwarding (n={n}, k={k}, 1-interval dynamics, mean over {} seeds)",
            SEEDS.len()
        ),
        &[
            "algorithm",
            "completed",
            "rounds",
            "tokens sent",
            "bytes on air",
        ],
    );
    for (i, label) in labels.iter().enumerate() {
        let all_completed = runs.iter().all(|r| r[i].completed);
        let rounds: Vec<u64> = runs
            .iter()
            .filter_map(|r| r[i].rounds.map(|x| x as u64))
            .collect();
        let tokens: Vec<u64> = runs.iter().map(|r| r[i].tokens).collect();
        let bytes: Vec<u64> = runs.iter().map(|r| r[i].bytes).collect();
        table.push_row(vec![
            (*label).into(),
            all_completed.to_string(),
            if rounds.is_empty() {
                "never".into()
            } else {
                Summary::of_u64(&rounds).cell()
            },
            Summary::of_u64(&tokens).cell(),
            Summary::of_u64(&bytes).cell(),
        ]);
    }

    ExperimentResult {
        id: "E15",
        title: "Extension — network coding (Haeupler–Karger) vs token forwarding",
        tables: vec![table],
        notes: vec![
            "RLNC sends one coded payload per node per round (vs up to k tokens), so it \
             dominates the token metric; the byte metric adds the k-bit coefficient \
             header per packet. The hierarchy's lever is orthogonal: it reduces *who* \
             transmits, not *what*."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(cell: &str) -> f64 {
        cell.split('±').next().unwrap().trim().parse().unwrap()
    }

    #[test]
    fn all_three_complete() {
        let r = e15_network_coding();
        for row in r.tables[0].rows() {
            assert_eq!(row[1], "true", "'{}' failed", row[0]);
        }
    }

    #[test]
    fn rlnc_wins_the_token_metric() {
        let r = e15_network_coding();
        let t = &r.tables[0];
        assert!(mean(t.cell(2, 3)) < mean(t.cell(0, 3)), "RLNC vs flooding");
        assert!(mean(t.cell(2, 3)) < mean(t.cell(1, 3)), "RLNC vs Alg2");
    }

    #[test]
    fn hierarchy_beats_flooding_in_both_metrics() {
        let r = e15_network_coding();
        let t = &r.tables[0];
        assert!(mean(t.cell(1, 3)) < mean(t.cell(0, 3)), "tokens");
        assert!(mean(t.cell(1, 4)) < mean(t.cell(0, 4)), "bytes");
    }
}
