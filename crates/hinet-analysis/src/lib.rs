//! # hinet-analysis
//!
//! Experiment harness: regenerates every table of the paper's evaluation
//! and the empirical sweeps that extend it.
//!
//! * [`report`] — plain-text/markdown/CSV table rendering for experiment
//!   output (no serde; the tables are small and the formats trivial).
//! * [`stats`] — summary statistics over repeated seeded runs.
//! * [`sweep`] — a scoped-thread parallel executor for parameter sweeps
//!   (each cell of a sweep is an independent deterministic simulation),
//!   re-exported from [`hinet_rt::pool`].
//! * [`scenarios`] — the four Table 2 rows as *executable* scenarios:
//!   dynamics generator + algorithm + parameter plan, derived from one
//!   [`hinet_core::analysis::ModelParams`].
//! * [`experiments`] — the experiment registry E1–E15 (see DESIGN.md for
//!   the experiment ↔ paper-artifact index).
//! * [`artifacts`] — persist experiment tables as markdown/CSV files.

pub mod artifacts;
pub mod experiments;
pub mod report;
pub mod scenarios;
pub mod stats;
pub mod sweep;

pub use experiments::{all_experiments, Experiment, ExperimentResult};
pub use report::Table;
