//! Persist experiment results to disk.
//!
//! `cargo run --example export_results` writes one markdown file and one
//! CSV per experiment table into an output directory, so downstream
//! plotting/diffing doesn't have to scrape terminal output. Formats come
//! from [`crate::report::Table`]'s own renderers — no serialization stack.

use crate::experiments::ExperimentResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Slugify a table title into a filename fragment.
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_dash = true;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
        if out.len() >= 60 {
            break;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Files written for one experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrittenArtifacts {
    /// The markdown report path.
    pub markdown: PathBuf,
    /// One CSV per table, in table order.
    pub csvs: Vec<PathBuf>,
}

/// Write `result` under `dir` (created if missing): `<id>.md` plus
/// `<id>-<table-slug>.csv` per table.
pub fn write_experiment(dir: &Path, result: &ExperimentResult) -> io::Result<WrittenArtifacts> {
    fs::create_dir_all(dir)?;
    let md_path = dir.join(format!("{}.md", result.id));
    fs::write(&md_path, result.to_markdown())?;
    let mut csvs = Vec::new();
    for (i, table) in result.tables.iter().enumerate() {
        let name = format!("{}-{}-{}.csv", result.id, i, slug(table.title()));
        let path = dir.join(name);
        fs::write(&path, table.to_csv())?;
        csvs.push(path);
    }
    Ok(WrittenArtifacts {
        markdown: md_path,
        csvs,
    })
}

/// Run every registered experiment and write all artifacts under `dir`.
/// Returns the paths written, in experiment order.
pub fn export_all(dir: &Path) -> io::Result<Vec<WrittenArtifacts>> {
    crate::experiments::all_experiments()
        .iter()
        .map(|e| write_experiment(dir, &(e.run)()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hinet-artifacts-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn slugify() {
        assert_eq!(slug("Table 2 — closed forms"), "table-2-closed-forms");
        assert_eq!(slug("a/b\\c"), "a-b-c");
        assert_eq!(slug("--x--"), "x");
    }

    #[test]
    fn writes_markdown_and_csvs() {
        let dir = tmpdir("write");
        let mut t = Table::new("Demo table", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let result = ExperimentResult {
            id: "EX",
            title: "demo",
            tables: vec![t],
            notes: vec!["note".into()],
        };
        let written = write_experiment(&dir, &result).unwrap();
        let md = fs::read_to_string(&written.markdown).unwrap();
        assert!(md.contains("## EX"));
        assert_eq!(written.csvs.len(), 1);
        let csv = fs::read_to_string(&written.csvs[0]).unwrap();
        assert!(csv.starts_with("a,b"));
        assert!(csv.contains("1,2"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_cheap_experiment_roundtrip() {
        // Only export the analytic experiments here (the full export runs
        // in the example binary); verifies path construction end to end.
        let dir = tmpdir("analytic");
        let r = crate::experiments::e2_table3();
        let written = write_experiment(&dir, &r).unwrap();
        assert!(written.markdown.exists());
        assert!(written.csvs.iter().all(|p| p.exists()));
        fs::remove_dir_all(&dir).unwrap();
    }
}
