//! A zero-dependency timing harness: the in-tree replacement for criterion.
//!
//! Benchmarks keep the shape they had under criterion — a suite function
//! receives a [`Bench`], opens [`Group`]s, and registers closures against a
//! [`Bencher`] — so porting a criterion bench file is mechanical:
//!
//! ```
//! use hinet_rt::bench::{Bench, BenchConfig, BenchmarkId};
//!
//! fn suite(c: &mut Bench) {
//!     let mut group = c.benchmark_group("example");
//!     group.sample_size(10);
//!     group.bench_function("fib_10", |b| b.iter(|| (1..10u64).product::<u64>()));
//!     group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
//!         b.iter(|| (0..n).sum::<u64>())
//!     });
//!     group.finish();
//! }
//!
//! let mut bench = Bench::new(BenchConfig::fast());
//! suite(&mut bench);
//! assert_eq!(bench.take_results().len(), 2);
//! ```
//!
//! Measurement model: a monotonic-clock warmup estimates the cost of one
//! iteration, [`stats::calibrate_batch`] turns that estimate into an
//! iteration batch per timing sample, and the sample set is summarised with
//! outlier-robust statistics ([`stats::Stats`]). Every benchmark runs under
//! a wall-clock budget: sampling stops early (keeping at least
//! [`MIN_SAMPLES`]) once the budget is spent, so a slow benchmark degrades
//! to fewer samples instead of hanging the suite.
//!
//! Results serialise to `BENCH_<suite>.json` ([`SuiteReport`]) with
//! environment metadata, and [`compare`] implements the `--baseline`
//! regression gate over the medians.

pub mod json;
pub mod stats;

pub use stats::{calibrate_batch, median, percentile, Stats};

use json::Json;
use std::collections::BTreeSet;
use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples always collected before the wall-clock budget may stop a
/// benchmark early (a median needs a few points to mean anything).
pub const MIN_SAMPLES: usize = 5;

/// Default per-benchmark sample count (groups may override).
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Harness-level configuration (one per [`Bench`]).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Overrides every group's sample count when set (`--sample-size`).
    pub sample_size_override: Option<usize>,
    /// Wall-clock budget per benchmark, warmup included (`--budget-ms`).
    pub budget: Duration,
    /// Suppress per-benchmark result lines (artifacts are unaffected).
    pub quiet: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sample_size_override: None,
            budget: Duration::from_millis(2000),
            quiet: false,
        }
    }
}

impl BenchConfig {
    /// A configuration for smoke tests: tiny budget, few samples, quiet.
    pub fn fast() -> Self {
        BenchConfig {
            sample_size_override: Some(MIN_SAMPLES),
            budget: Duration::from_millis(20),
            quiet: true,
        }
    }
}

/// One measured benchmark, ready for the JSON artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Full id: `group/function` or `group/function/param`.
    pub id: String,
    /// Timing samples actually collected.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Per-iteration summary statistics.
    pub stats: Stats,
}

/// The harness handle a suite function receives (criterion's `Criterion`).
pub struct Bench {
    cfg: BenchConfig,
    results: Vec<BenchResult>,
    printed: BTreeSet<String>,
}

impl Bench {
    /// A harness with the given configuration.
    pub fn new(cfg: BenchConfig) -> Self {
        Bench {
            cfg,
            results: Vec::new(),
            printed: BTreeSet::new(),
        }
    }

    /// Open a named benchmark group (ids become `name/...`).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            bench: self,
        }
    }

    /// Print a reproduction table once per harness, keyed by `key` — the
    /// harness-owned replacement for the old caller-supplied
    /// `static Once` + `print_once` pattern. Suites may be invoked any
    /// number of times; `render` runs only on the first call for its key.
    pub fn print_table(&mut self, key: &str, render: impl FnOnce() -> String) {
        if self.printed.insert(key.to_string()) && !self.cfg.quiet {
            println!("\n{}", render());
        }
    }

    /// Drain the results measured so far.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one(&mut self, id: String, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size,
            budget: self.cfg.budget,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            // The closure never called `iter` — nothing to record.
            if !self.cfg.quiet {
                println!("{id:<44}  skipped (no iter() call)");
            }
            return;
        }
        let stats = Stats::from_samples(&bencher.samples);
        if !self.cfg.quiet {
            println!(
                "{id:<44}  median {:>9}  min {:>9}  p95 {:>9}  ({} samples x {} iters)",
                fmt_ns(stats.median_ns),
                fmt_ns(stats.min_ns),
                fmt_ns(stats.p95_ns),
                bencher.samples.len(),
                bencher.iters_per_sample,
            );
        }
        self.results.push(BenchResult {
            id,
            samples: bencher.samples.len(),
            iters_per_sample: bencher.iters_per_sample,
            stats,
        });
    }
}

/// Group sample-size override is applied via [`Group::sample_size`]; the
/// harness-level `--sample-size` flag wins over both.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Set the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().full_id(&self.name);
        let sample_size = self.effective_sample_size();
        self.bench.run_one(id, sample_size, f);
        self
    }

    /// Measure one benchmark parameterised by `input` (criterion's
    /// `bench_with_input`; the input only feeds the closure, the id's
    /// parameter half carries it into the artifact).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.full_id(&self.name);
        let sample_size = self.effective_sample_size();
        self.bench.run_one(id, sample_size, |b| f(b, input));
        self
    }

    /// Close the group (symmetry with criterion; all work is eager).
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.bench
            .cfg
            .sample_size_override
            .unwrap_or(self.sample_size)
            .max(1)
    }
}

/// A benchmark id: function name plus an optional parameter rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` id (criterion's constructor).
    pub fn new(function: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            param: Some(param.to_string()),
        }
    }

    fn full_id(&self, group: &str) -> String {
        match &self.param {
            Some(p) => format!("{group}/{}/{p}", self.function),
            None => format!("{group}/{}", self.function),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            param: None,
        }
    }
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `f`: warm up on the monotonic clock, calibrate an iteration
    /// batch so each timing sample costs roughly `budget / sample_size`,
    /// then collect samples until the count or the wall-clock budget is
    /// reached (whichever comes first, but never fewer than
    /// [`MIN_SAMPLES`]).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        // Warmup: a slice of the budget, at least one iteration.
        let warmup =
            (self.budget / 10).clamp(Duration::from_micros(500), Duration::from_millis(200));
        let mut warm_iters = 0u64;
        while warm_iters == 0 || start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = start.elapsed().as_nanos() as f64 / warm_iters as f64;

        let remaining = self.budget.saturating_sub(start.elapsed());
        let target_sample_ns = remaining.as_nanos() as f64 / self.sample_size as f64;
        let batch = calibrate_batch(per_iter_ns, target_sample_ns);

        self.samples.clear();
        self.iters_per_sample = batch;
        for s in 0..self.sample_size {
            if s >= MIN_SAMPLES && start.elapsed() >= self.budget {
                break;
            }
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// Human-readable nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Artifact schema identifier (bump on breaking JSON changes).
pub const SCHEMA: &str = "hinet-bench/v1";

/// Environment metadata recorded in every artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Meta {
    /// `git rev-parse --short HEAD` at measurement time, or `"unknown"`.
    pub commit: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Seed the suites were invoked with (informational; suites derive
    /// their own per-iteration seeds).
    pub seed: u64,
    /// Milliseconds since the Unix epoch at capture time.
    pub unix_ms: u64,
}

impl Meta {
    /// Capture the current environment.
    pub fn capture(seed: u64) -> Meta {
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into());
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Meta {
            commit,
            os: std::env::consts::OS.into(),
            arch: std::env::consts::ARCH.into(),
            seed,
            unix_ms,
        }
    }
}

/// One suite's measurements plus metadata — the `BENCH_<suite>.json` schema.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteReport {
    /// Suite name (`sweep_n`, `headline`, ...).
    pub suite: String,
    /// Environment metadata.
    pub meta: Meta,
    /// Per-benchmark results in registration order.
    pub benchmarks: Vec<BenchResult>,
}

impl SuiteReport {
    /// Artifact file name: `BENCH_<suite>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Serialise to the artifact JSON (pretty-printed).
    pub fn to_json(&self) -> String {
        let benchmarks = self
            .benchmarks
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(b.id.clone())),
                    ("samples".into(), Json::Num(b.samples as f64)),
                    (
                        "iters_per_sample".into(),
                        Json::Num(b.iters_per_sample as f64),
                    ),
                    ("min_ns".into(), Json::Num(b.stats.min_ns)),
                    ("max_ns".into(), Json::Num(b.stats.max_ns)),
                    ("mean_ns".into(), Json::Num(b.stats.mean_ns)),
                    ("median_ns".into(), Json::Num(b.stats.median_ns)),
                    ("p95_ns".into(), Json::Num(b.stats.p95_ns)),
                ])
            })
            .collect();
        let root = Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("suite".into(), Json::Str(self.suite.clone())),
            (
                "meta".into(),
                Json::Obj(vec![
                    ("commit".into(), Json::Str(self.meta.commit.clone())),
                    ("os".into(), Json::Str(self.meta.os.clone())),
                    ("arch".into(), Json::Str(self.meta.arch.clone())),
                    ("seed".into(), Json::Num(self.meta.seed as f64)),
                    ("unix_ms".into(), Json::Num(self.meta.unix_ms as f64)),
                ]),
            ),
            ("benchmarks".into(), Json::Arr(benchmarks)),
        ]);
        let mut text = root.pretty();
        text.push('\n');
        text
    }

    /// Parse an artifact produced by [`SuiteReport::to_json`].
    pub fn from_json(text: &str) -> Result<SuiteReport, String> {
        let root = Json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("schema '{schema}' is not '{SCHEMA}'"));
        }
        let suite = root
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing 'suite'")?
            .to_string();
        let meta = root.get("meta").ok_or("missing 'meta'")?;
        let meta_str = |key: &str| -> Result<String, String> {
            meta.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing meta.{key}"))
        };
        let meta = Meta {
            commit: meta_str("commit")?,
            os: meta_str("os")?,
            arch: meta_str("arch")?,
            seed: meta
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing meta.seed")?,
            unix_ms: meta
                .get("unix_ms")
                .and_then(Json::as_u64)
                .ok_or("missing meta.unix_ms")?,
        };
        let mut benchmarks = Vec::new();
        for b in root
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("missing 'benchmarks'")?
        {
            let num = |key: &str| -> Result<f64, String> {
                b.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("missing benchmark field '{key}'"))
            };
            benchmarks.push(BenchResult {
                id: b
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("missing benchmark 'id'")?
                    .to_string(),
                samples: num("samples")? as usize,
                iters_per_sample: num("iters_per_sample")? as u64,
                stats: Stats {
                    min_ns: num("min_ns")?,
                    max_ns: num("max_ns")?,
                    mean_ns: num("mean_ns")?,
                    median_ns: num("median_ns")?,
                    p95_ns: num("p95_ns")?,
                },
            });
        }
        Ok(SuiteReport {
            suite,
            meta,
            benchmarks,
        })
    }
}

/// One benchmark whose median slowed past the gate threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark id.
    pub id: String,
    /// Baseline median (ns/iter).
    pub baseline_ns: f64,
    /// Current median (ns/iter).
    pub current_ns: f64,
    /// Relative change in percent (positive = slower).
    pub change_pct: f64,
}

/// Outcome of a baseline comparison.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Benchmarks present in both reports.
    pub compared: usize,
    /// Benchmarks beyond the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Ids present in only one of the two reports.
    pub missing: Vec<String>,
}

/// Compare `current` medians against `baseline`, flagging anything more
/// than `max_regress_pct` percent slower.
pub fn compare(baseline: &SuiteReport, current: &SuiteReport, max_regress_pct: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for cur in &current.benchmarks {
        let Some(base) = baseline.benchmarks.iter().find(|b| b.id == cur.id) else {
            cmp.missing.push(cur.id.clone());
            continue;
        };
        cmp.compared += 1;
        if base.stats.median_ns <= 0.0 {
            continue; // a zero baseline cannot express a ratio
        }
        let change_pct = (cur.stats.median_ns / base.stats.median_ns - 1.0) * 100.0;
        if change_pct > max_regress_pct {
            cmp.regressions.push(Regression {
                id: cur.id.clone(),
                baseline_ns: base.stats.median_ns,
                current_ns: cur.stats.median_ns,
                change_pct,
            });
        }
    }
    for base in &baseline.benchmarks {
        if !current.benchmarks.iter().any(|c| c.id == base.id) {
            cmp.missing.push(base.id.clone());
        }
    }
    cmp.regressions
        .sort_by(|a, b| b.change_pct.total_cmp(&a.change_pct));
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite(c: &mut Bench) {
        c.print_table("tiny", || "TABLE".into());
        let mut group = c.benchmark_group("tiny");
        group.sample_size(6);
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_records_ids_and_positive_stats() {
        let mut bench = Bench::new(BenchConfig::fast());
        tiny_suite(&mut bench);
        let results = bench.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "tiny/sum");
        assert_eq!(results[1].id, "tiny/sum_n/128");
        for r in &results {
            assert!(r.samples >= 1);
            assert!(r.iters_per_sample >= 1);
            assert!(r.stats.min_ns >= 0.0);
            assert!(r.stats.min_ns <= r.stats.median_ns);
            assert!(r.stats.median_ns <= r.stats.p95_ns);
            assert!(r.stats.p95_ns <= r.stats.max_ns);
        }
        // take_results drains.
        assert!(bench.take_results().is_empty());
    }

    #[test]
    fn print_table_renders_once_per_key() {
        let mut bench = Bench::new(BenchConfig {
            quiet: false,
            ..BenchConfig::fast()
        });
        let mut calls = 0;
        for _ in 0..3 {
            bench.print_table("t", || {
                calls += 1;
                String::new()
            });
        }
        assert_eq!(calls, 1);
        bench.print_table("other", || {
            calls += 1;
            String::new()
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn budget_caps_samples_but_keeps_the_minimum() {
        let mut bench = Bench::new(BenchConfig {
            sample_size_override: Some(1000),
            budget: Duration::from_millis(5),
            quiet: true,
        });
        let mut group = bench.benchmark_group("slow");
        group.bench_function("sleep", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(300)))
        });
        group.finish();
        let results = bench.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].samples >= MIN_SAMPLES);
        assert!(results[0].samples < 1000, "budget should stop sampling");
    }

    fn sample_report() -> SuiteReport {
        SuiteReport {
            suite: "sweep_n".into(),
            meta: Meta {
                commit: "abc123def456".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                seed: 42,
                unix_ms: 1_700_000_000_000,
            },
            benchmarks: vec![
                BenchResult {
                    id: "sweep_n/alg1_vs_klo/40".into(),
                    samples: 10,
                    iters_per_sample: 4,
                    stats: Stats {
                        min_ns: 100.0,
                        max_ns: 200.0,
                        mean_ns: 150.5,
                        median_ns: 149.0,
                        p95_ns: 190.0,
                    },
                },
                BenchResult {
                    id: "sweep_n/alg1_vs_klo/80".into(),
                    samples: 10,
                    iters_per_sample: 2,
                    stats: Stats {
                        min_ns: 400.0,
                        max_ns: 900.0,
                        mean_ns: 600.0,
                        median_ns: 550.0,
                        p95_ns: 880.0,
                    },
                },
            ],
        }
    }

    #[test]
    fn suite_report_json_round_trips() {
        let report = sample_report();
        let text = report.to_json();
        assert!(text.contains("\"schema\""));
        assert!(text.contains("hinet-bench/v1"));
        let parsed = SuiteReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.file_name(), "BENCH_sweep_n.json");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_missing_fields() {
        assert!(SuiteReport::from_json("{}").is_err());
        let wrong = sample_report().to_json().replace(SCHEMA, "other/v9");
        assert!(SuiteReport::from_json(&wrong).is_err());
    }

    #[test]
    fn compare_flags_regressions_past_the_threshold() {
        let base = sample_report();
        let mut slowed = base.clone();
        slowed.benchmarks[1].stats.median_ns *= 1.5; // +50%
        let cmp = compare(&base, &slowed, 10.0);
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "sweep_n/alg1_vs_klo/80");
        assert!((cmp.regressions[0].change_pct - 50.0).abs() < 1e-9);
        // Within threshold: no regression.
        assert!(compare(&base, &slowed, 60.0).regressions.is_empty());
        // Identical reports: clean.
        let clean = compare(&base, &base, 0.5);
        assert!(clean.regressions.is_empty());
        assert!(clean.missing.is_empty());
    }

    #[test]
    fn compare_reports_missing_ids_from_both_sides() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.benchmarks[0].id = "sweep_n/renamed/40".into();
        let cmp = compare(&base, &cur, 10.0);
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.missing.len(), 2);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 us");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }
}
