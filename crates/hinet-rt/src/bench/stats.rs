//! Sample statistics for the bench harness.
//!
//! All summaries are computed over *per-iteration* nanosecond samples. The
//! headline statistic is the median — wall-clock timings on shared machines
//! have a one-sided noise distribution (interrupts, frequency scaling), so
//! the median is the robust location estimate; min and p95 bound the
//! distribution from both sides for the JSON artifacts.

/// Summary statistics over a set of per-iteration nanosecond samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Fastest sample — the least-perturbed observation.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Arithmetic mean (reported, but noise-sensitive; gate on the median).
    pub mean_ns: f64,
    /// Outlier-robust location estimate; the regression gate compares this.
    pub median_ns: f64,
    /// Nearest-rank 95th percentile — the tail the mean hides.
    pub p95_ns: f64,
}

impl Stats {
    /// Summarise a non-empty sample set.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "Stats::from_samples on empty input");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Stats {
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median_ns: median_sorted(&sorted),
            p95_ns: percentile_sorted(&sorted, 95.0),
        }
    }
}

/// Median of a sample set; even-length sets average the middle pair.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    median_sorted(&sorted)
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "median of empty input");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of a sample set.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "percentile of empty input");
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Iterations to batch into one timing sample so the batch costs about
/// `target_sample_ns`.
///
/// Monotone by construction: non-increasing in the per-iteration estimate,
/// non-decreasing in the target, and never zero (every sample runs the
/// benchmarked closure at least once). The upper clamp keeps a mis-estimated
/// sub-nanosecond closure from requesting an unbounded batch.
pub fn calibrate_batch(per_iter_ns: f64, target_sample_ns: f64) -> u64 {
    let per_iter = per_iter_ns.max(1.0);
    let batch = (target_sample_ns.max(0.0) / per_iter).floor() as u64;
    batch.clamp(1, 1 << 24)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_known_samples() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        // Robustness: one huge outlier does not move the median.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0, 1e12]), 3.0);
    }

    #[test]
    fn percentile_nearest_rank_on_known_samples() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        // Small sets: p95 of 10 samples is the 10th order statistic.
        let ten: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&ten, 95.0), 10.0);
        assert_eq!(percentile(&ten, 90.0), 9.0);
    }

    #[test]
    fn stats_summary_matches_hand_computation() {
        let s = Stats::from_samples(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.min_ns, 2.0);
        assert_eq!(s.max_ns, 8.0);
        assert_eq!(s.mean_ns, 5.0);
        assert_eq!(s.median_ns, 5.0);
        assert_eq!(s.p95_ns, 8.0);
    }

    #[test]
    fn calibration_is_monotone_in_both_arguments() {
        // Slower iterations → no larger batches (fixed target).
        let target = 1_000_000.0;
        let mut last = u64::MAX;
        for per_iter in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let b = calibrate_batch(per_iter, target);
            assert!(b <= last, "batch grew as iterations slowed");
            assert!(b >= 1);
            last = b;
        }
        // Larger budgets → no smaller batches (fixed iteration cost).
        let mut last = 0u64;
        for target in [0.0, 1e3, 1e5, 1e7, 1e9] {
            let b = calibrate_batch(100.0, target);
            assert!(b >= last, "batch shrank as the target grew");
            last = b;
        }
    }

    #[test]
    fn calibration_clamps_degenerate_inputs() {
        assert_eq!(calibrate_batch(0.0, 0.0), 1);
        assert_eq!(calibrate_batch(-5.0, 1e9), calibrate_batch(1.0, 1e9));
        assert_eq!(calibrate_batch(1.0, f64::INFINITY), 1 << 24);
    }
}
