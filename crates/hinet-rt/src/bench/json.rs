//! A minimal JSON tree, writer, and parser — just enough for the
//! `BENCH_*.json` artifacts (objects, arrays, strings, f64 numbers, bools,
//! null) without a registry dependency. Numbers round-trip exactly for the
//! integer range the artifacts use (|x| < 2⁵³).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are preserved exactly up to 2⁵³.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation (the artifact format: diffable and
    /// greppable in CI logs).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => out.push_str(&self.to_string()),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    /// Compact single-line rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if !x.is_finite() {
                    f.write_str("null") // JSON has no NaN/∞; degrade explicitly
                } else if x.fract() == 0.0 && x.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{x:.0}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                let mut out = String::new();
                write_string(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_string(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the artifact
                            // schema; map lone surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("unknown escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse(r#""a\nb\"cA""#).unwrap(),
            Json::Str("a\nb\"cA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "{,}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("sweep \"n\"\n".into())),
            ("median_ns".into(), Json::Num(1234.5)),
            ("count".into(), Json::Num(10.0)),
            ("ok".into(), Json::Bool(true)),
            (
                "tags".into(),
                Json::Arr(vec![Json::Null, Json::Num(-2.0), Json::Str("µs".into())]),
            ),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_exponents() {
        assert_eq!(Json::Num(1_700_000_000_000.0).to_string(), "1700000000000");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
