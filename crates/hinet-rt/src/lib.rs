//! # hinet-rt — hermetic std-only runtime
//!
//! The workspace's determinism and parallelism layers, in-tree and free of
//! external dependencies, so the default build is hermetic and offline by
//! construction:
//!
//! * [`rng`] — the deterministic RNG stack: SplitMix64 seeding into
//!   xoshiro256\*\*, the `(seed, stream)` splitting contract used by every
//!   generator, and the [`rng::Rng`]/[`rng::SliceRandom`] trait surface
//!   (`random`, `random_range`, `random_bool`, `shuffle`, `choose`).
//! * [`pool`] — a scoped worker pool with atomic-cursor dynamic load
//!   balancing ([`pool::run_sweep`]) and explicit worker-panic propagation.
//! * [`check`] — a minimal seeded property-test harness: per-case seeds
//!   derived deterministically from the property name, failing-seed
//!   reporting, and re-run-by-seed via `HINET_CHECK_SEED`.
//! * [`bench`](mod@bench) — a zero-dependency timing harness (criterion-shaped
//!   `Bench`/`Group`/`Bencher` surface, calibrated iteration batching,
//!   outlier-robust statistics, `BENCH_*.json` artifacts, and the
//!   `--baseline` regression gate).
//! * [`flags`] — typed `--flag` parsing with declared specs, shared by the
//!   `hinet` CLI and the bench binary.
//! * [`obs`] — structured per-round tracing and metrics: typed events in a
//!   bounded ring buffer, exact monotonic counters, phase spans, and the
//!   `hinet-trace/v1` JSONL artifact with its [`obs::TraceSummary`]
//!   aggregator.
//!
//! Reproducibility is the backbone of this reproduction: experiment runs
//! must replay byte-for-byte across machines and refactors. Owning the RNG
//! stream-splitting contract (rather than inheriting whatever a registry
//! crate's `StdRng` happens to be this year) is what makes that guarantee
//! enforceable — the golden-value tests in the workspace pin the exact
//! output streams produced here.

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod flags;
pub mod obs;
pub mod pool;
pub mod rng;
