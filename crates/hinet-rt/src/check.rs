//! Minimal seeded property-test harness.
//!
//! A property is a closure over a [`CaseCtx`] — a per-case RNG plus draw
//! helpers — that asserts with the ordinary `assert!` family. The runner
//! executes `cases` independently seeded cases; the seed of case `i` is
//! derived deterministically from the property name and `i`, so two
//! consecutive runs (or two machines) execute byte-for-byte identical
//! cases.
//!
//! On failure the harness reports the failing case's seed and the exact
//! command to replay it:
//!
//! ```text
//! property 'alg1_completes_within_theorem1_bound' failed on case 17/32
//! (seed 0x8d33…): assertion failed: report.completed()
//!     re-run just this case with: HINET_CHECK_SEED=0x8d33… cargo test …
//! ```
//!
//! Environment knobs:
//!
//! * `HINET_CHECK_SEED` — hex (`0x…` or bare) or decimal case seed: run the
//!   property once with exactly that seed, without catching the panic, so
//!   backtraces point at the failing assertion.
//! * `HINET_CHECK_CASES` — override the case count of every property (e.g.
//!   a 10× soak in CI).
//!
//! Unlike proptest there is no shrinking: cases are cheap and fully
//! replayable by seed, which in practice localises failures just as fast
//! for the scalar-parameter properties this workspace uses.

use crate::rng::{mix, Rng, SliceRandom, Xoshiro256StarStar};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-case context: a deterministic RNG identified by its seed, plus draw
/// helpers. All [`Rng`] methods are available directly on the context.
pub struct CaseCtx {
    seed: u64,
    rng: Xoshiro256StarStar,
}

impl CaseCtx {
    /// Context for one case of `seed`. Public so a failing case can also be
    /// replayed programmatically (e.g. from a unit test or a debugger).
    pub fn from_seed(seed: u64) -> Self {
        CaseCtx {
            seed,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// The case seed (what `HINET_CHECK_SEED` accepts).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniformly random element of a non-empty slice — the `prop_oneof`
    /// replacement for enum-valued parameters.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        options
            .choose(&mut self.rng)
            .expect("pick from empty slice")
    }

    /// A vector of `len` draws from `gen`.
    pub fn vec_of<T>(&mut self, len: usize, mut gen: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| gen(self)).collect()
    }
}

impl Rng for CaseCtx {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a over the property name: the root of the per-property seed
/// sequence. Deterministic across runs, platforms and compilers.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seed of case `i` of property `name`.
pub fn case_seed(name: &str, i: usize) -> u64 {
    mix(fnv1a(name), i as u64)
}

/// Run `cases` seeded cases of a property, reporting the failing seed.
///
/// `name` should be the test function's name — it keys the seed sequence
/// and appears in the failure report.
///
/// # Panics
/// Re-panics on the first failing case with the case index, its seed, the
/// original assertion message and the `HINET_CHECK_SEED` replay command.
pub fn check(name: &str, cases: usize, prop: impl Fn(&mut CaseCtx)) {
    if let Some(seed) = env_seed() {
        eprintln!("HINET_CHECK_SEED set: replaying '{name}' with seed {seed:#018x}");
        // No catch_unwind: let the backtrace point at the assertion.
        prop(&mut CaseCtx::from_seed(seed));
        return;
    }
    let cases = env_cases().unwrap_or(cases).max(1);
    for i in 0..cases {
        let seed = case_seed(name, i);
        run_case(name, i, cases, seed, &prop);
    }
}

fn run_case(name: &str, i: usize, cases: usize, seed: u64, prop: &impl Fn(&mut CaseCtx)) {
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut CaseCtx::from_seed(seed))));
    if let Err(payload) = outcome {
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_owned());
        panic!(
            "property '{name}' failed on case {i}/{cases} (seed {seed:#018x}): {msg}\n    \
             re-run just this case with: HINET_CHECK_SEED={seed:#x} cargo test {name}"
        );
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("HINET_CHECK_SEED").ok()?;
    let parsed = parse_seed(&raw);
    assert!(
        parsed.is_some(),
        "HINET_CHECK_SEED={raw:?} is neither hex (0x… or bare) nor decimal"
    );
    parsed
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    // Bare hex beats decimal for round-tripping reported seeds; all-decimal
    // strings parse identically either way only when < 10, so prefer
    // decimal and fall back to hex.
    raw.parse::<u64>()
        .ok()
        .or_else(|| u64::from_str_radix(raw, 16).ok())
}

fn env_cases() -> Option<usize> {
    let raw = std::env::var("HINET_CHECK_CASES").ok()?;
    let parsed = raw.trim().parse::<usize>();
    assert!(
        parsed.is_ok(),
        "HINET_CHECK_CASES={raw:?} is not a case count"
    );
    parsed.ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_exactly_n_cases() {
        let ran = AtomicUsize::new(0);
        check("runs_exactly_n_cases", 17, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        // env overrides only apply when the variables are set; the tier-1
        // run leaves them unset.
        if std::env::var("HINET_CHECK_CASES").is_err() && std::env::var("HINET_CHECK_SEED").is_err()
        {
            assert_eq!(ran.load(Ordering::Relaxed), 17);
        }
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..32).map(|i| case_seed("some_prop", i)).collect();
        let b: Vec<u64> = (0..32).map(|i| case_seed("some_prop", i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "case seeds must not collide");
        assert_ne!(case_seed("some_prop", 0), case_seed("other_prop", 0));
    }

    #[test]
    fn failure_reports_seed_and_replay_command() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 8, |c| {
                let x = c.random_range(0usize..100);
                assert!(x > 1000, "x was {x}");
            });
        }))
        .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("harness panics with String");
        assert!(msg.contains("property 'always_fails' failed on case 0/8"));
        assert!(msg.contains("x was"), "original assertion lost: {msg}");
        assert!(
            msg.contains("HINET_CHECK_SEED=0x"),
            "no replay command: {msg}"
        );
        // The reported seed replays to the same failure.
        let seed = case_seed("always_fails", 0);
        assert!(msg.contains(&format!("{seed:#018x}")));
        let replay = catch_unwind(AssertUnwindSafe(|| {
            let mut c = CaseCtx::from_seed(seed);
            let x = c.random_range(0usize..100);
            assert!(x > 1000, "x was {x}");
        }));
        assert!(replay.is_err(), "replay by seed must reproduce the failure");
    }

    #[test]
    fn same_seed_same_draws() {
        let mut a = CaseCtx::from_seed(0xfeed);
        let mut b = CaseCtx::from_seed(0xfeed);
        assert_eq!(a.seed(), 0xfeed);
        for _ in 0..8 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
            assert_eq!(a.random_range(0usize..50), b.random_range(0usize..50));
        }
        let xs = a.vec_of(5, |c| c.random::<u32>());
        let ys = b.vec_of(5, |c| c.random::<u32>());
        assert_eq!(xs, ys);
        assert_eq!(xs.len(), 5);
    }

    #[test]
    fn pick_selects_from_slice() {
        let mut c = CaseCtx::from_seed(9);
        let opts = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(opts.contains(c.pick(&opts)));
        }
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X10"), Some(16));
        assert_eq!(parse_seed("16"), Some(16));
        assert_eq!(parse_seed(" 0xdeadbeef "), Some(0xdead_beef));
        assert_eq!(parse_seed("ff"), Some(255), "bare hex fallback");
        assert_eq!(parse_seed("zz"), None);
    }
}
