//! Scoped worker pool for parameter sweeps.
//!
//! Each cell of a sweep is an independent, deterministic simulation, so the
//! sweep is embarrassingly parallel. Cells fan out over a fixed pool of
//! `std::thread::scope` threads pulling from a shared atomic cursor
//! (dynamic load balancing — simulation time varies wildly across parameter
//! cells), and results land in a pre-sized slot vector so output order
//! equals input order regardless of scheduling.
//!
//! Worker panics are caught per-cell and re-raised on the calling thread
//! with the failing input's index and the original panic payload — a sweep
//! failure names the cell that died instead of a bare "worker panicked".

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over every input, in parallel, preserving input order in the
/// output.
///
/// `threads = 0` selects the available parallelism; any request is clamped
/// to the number of inputs (spawning more workers than cells is pure
/// overhead). `f` must be `Sync` because multiple workers call it
/// concurrently; inputs are only read.
///
/// # Panics
/// If `f` panics on some input, the first such panic is re-raised here with
/// the input index and original message attached; remaining workers stop
/// picking up new cells.
pub fn run_sweep<I, O, F>(inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
    let threads = if threads == 0 { hw } else { threads }.min(inputs.len());
    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<O>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(&inputs[i]))) {
                    Ok(out) => *slots[i].lock().expect("slot lock") = Some(out),
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first = failure.lock().expect("failure lock");
                        if first.is_none() {
                            *first = Some((i, payload));
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some((i, payload)) = failure.into_inner().expect("failure lock") {
        match panic_message(payload.as_ref()) {
            Some(msg) => panic!("sweep worker panicked on input {i}: {msg}"),
            None => resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

/// Run `f(i, &mut items[i])` over every element, in parallel, preserving
/// input order in the output — the mutable sibling of [`run_sweep`] used by
/// the simulation engine's per-node round phases.
///
/// Work is split into `threads` contiguous chunks (one scoped thread each):
/// per-node phase work is uniform enough that static partitioning wins over
/// cursor-based balancing, and contiguous chunks keep each worker streaming
/// through adjacent node state (the flat-arena layout's whole point).
/// `threads = 0` selects the available parallelism; `threads <= 1` or a
/// short input runs inline with no thread overhead.
///
/// # Panics
/// If `f` panics on some element, the first such panic is re-raised here
/// with the element index and original message attached.
pub fn map_mut<T, O, F>(items: &mut [T], threads: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, &mut T) -> O + Sync,
{
    let n = items.len();
    let hw = std::thread::available_parallelism().map_or(4, |p| p.get());
    let threads = if threads == 0 { hw } else { threads }.min(n);
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let failure: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);
    let mut out: Vec<Vec<O>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut rest = items;
        let mut start = 0usize;
        for w in 0..threads {
            // Spread the remainder over the first chunks so sizes differ
            // by at most one.
            let size = (n - start) / (threads - w);
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            let f = &f;
            let failure = &failure;
            handles.push(scope.spawn(move || {
                let mut res = Vec::with_capacity(chunk.len());
                for (j, t) in chunk.iter_mut().enumerate() {
                    match catch_unwind(AssertUnwindSafe(|| f(start + j, t))) {
                        Ok(o) => res.push(o),
                        Err(payload) => {
                            let mut first = failure.lock().expect("failure lock");
                            if first.is_none() {
                                *first = Some((start + j, payload));
                            }
                            break;
                        }
                    }
                }
                res
            }));
            start += size;
        }
        for h in handles {
            out.push(h.join().expect("worker panics are caught per-element"));
        }
    });

    if let Some((i, payload)) = failure.into_inner().expect("failure lock") {
        match panic_message(payload.as_ref()) {
            Some(msg) => panic!("map_mut worker panicked on element {i}: {msg}"),
            None => resume_unwind(payload),
        }
    }
    out.into_iter().flatten().collect()
}

/// Extract the human-readable message from a panic payload, when it has one
/// (`panic!("…")` yields `&str` or `String`).
fn panic_message(payload: &(dyn Any + Send)) -> Option<&str> {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn preserves_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_sweep(&inputs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let inputs = vec![1, 2, 3];
        assert_eq!(run_sweep(&inputs, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_uses_default() {
        let inputs: Vec<u32> = (0..16).collect();
        assert_eq!(run_sweep(&inputs, 0, |&x| x).len(), 16);
    }

    #[test]
    fn empty_input() {
        let inputs: Vec<u32> = vec![];
        assert!(run_sweep(&inputs, 4, |&x| x).is_empty());
    }

    #[test]
    fn every_input_processed_exactly_once() {
        let inputs: Vec<usize> = (0..57).collect();
        let counter = AtomicUsize::new(0);
        let out = run_sweep(&inputs, 5, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn thread_count_clamped_to_inputs() {
        let inputs: Vec<usize> = (0..3).collect();
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let out = run_sweep(&inputs, 1000, |&x| {
            ids.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert_eq!(out, inputs);
        assert!(
            ids.lock().unwrap().len() <= 3,
            "requested 1000 threads must clamp to the 3 inputs"
        );
    }

    #[test]
    fn worker_panic_carries_payload_and_index() {
        let inputs: Vec<usize> = (0..8).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_sweep(&inputs, 4, |&x| {
                if x == 5 {
                    panic!("boom at cell {x}");
                }
                x
            })
        }))
        .expect_err("sweep must propagate the worker panic");
        let msg = panic_message(err.as_ref()).expect("string payload");
        assert!(msg.contains("input 5"), "missing index: {msg}");
        assert!(msg.contains("boom at cell 5"), "missing payload: {msg}");
    }

    #[test]
    fn non_string_panic_payload_resumes_verbatim() {
        let inputs = vec![1u32, 2];
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_sweep(&inputs, 2, |&x| {
                if x == 2 {
                    std::panic::panic_any(x);
                }
                x
            })
        }))
        .expect_err("must propagate");
        assert_eq!(*err.downcast_ref::<u32>().expect("u32 payload"), 2);
    }

    #[test]
    fn map_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..101).collect();
        let out = map_mut(&mut items, 8, |i, x| {
            *x += 1;
            (i as u64) * 10
        });
        assert_eq!(items, (1..=101).collect::<Vec<u64>>());
        assert_eq!(out, (0..101).map(|i| i * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn map_mut_inline_paths() {
        let mut empty: Vec<u32> = vec![];
        assert!(map_mut(&mut empty, 4, |_, x| *x).is_empty());
        let mut one = vec![7u32];
        assert_eq!(map_mut(&mut one, 0, |i, x| (i, *x)), vec![(0, 7)]);
        let mut items = vec![1u32, 2, 3];
        assert_eq!(map_mut(&mut items, 1, |_, x| *x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn map_mut_panic_carries_payload_and_index() {
        let mut items: Vec<usize> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_mut(&mut items, 4, |i, _| {
                if i == 13 {
                    panic!("boom at element {i}");
                }
                i
            })
        }))
        .expect_err("map_mut must propagate the worker panic");
        let msg = panic_message(err.as_ref()).expect("string payload");
        assert!(msg.contains("element 13"), "missing index: {msg}");
        assert!(msg.contains("boom at element 13"), "missing payload: {msg}");
    }

    #[test]
    fn uneven_work_balances() {
        // Cells with very different costs still all complete, in order,
        // with the right values.
        let inputs: Vec<u64> = (0..24).collect();
        let out = run_sweep(&inputs, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let expect: Vec<u64> = inputs
            .iter()
            .map(|&x| (0..x * 1000).fold(0u64, |a, i| a.wrapping_add(i)))
            .collect();
        assert_eq!(out, expect);
    }
}
