//! Structured per-round tracing and metrics — the observability layer.
//!
//! The paper's correctness claims (Theorems 1–4) are stated per *round* and
//! per *phase*: members push max-id-first, heads broadcast min-id-first,
//! stability windows (Definitions 2–8) open and close. An end-of-run report
//! cannot show *why* a run took `⌈θ/α⌉ + 1` phases or where a stability
//! window broke, so this module records the run as it happens:
//!
//! * [`Event`] — the typed event taxonomy (round starts, token pushes,
//!   head broadcasts, phase advances, re-affiliations, stability windows,
//!   run end), stamped with their round into [`TraceEvent`]s.
//! * [`Tracer`] — the recording handle: a fixed-capacity ring-buffer event
//!   sink (overflow evicts the oldest events and is *counted*, never
//!   silent), monotonic [`Counters`], a rounds-per-phase [`Histogram`], and
//!   span-style phase scoping ([`Tracer::phase_span`]).
//! * [`ObsConfig`] / [`ObsMode`] — off (near-zero cost: one branch per
//!   instrumentation site), sampled (structural events always recorded,
//!   high-volume data events one-in-N), or full.
//! * JSONL export/import — [`Tracer::to_jsonl`] writes the
//!   [`SCHEMA`] (`hinet-trace/v1`) artifact reusing the
//!   [`crate::bench::json`] writer; [`ParsedTrace::parse_jsonl`] reads it
//!   back; [`TraceSummary`] aggregates either side into per-phase round
//!   counts and totals.
//!
//! ```
//! use hinet_rt::obs::{Event, ObsConfig, ParsedTrace, Role, TraceSummary, Tracer};
//!
//! let mut tracer = Tracer::new(ObsConfig::full());
//! tracer.set_phase_len(2); // auto-emit PhaseAdvance every 2 rounds
//! for round in 0..4 {
//!     tracer.round_start(round);
//!     tracer.token_push(round, 5, 9, 1, Role::Member, 0, 40);
//! }
//! tracer.run_end(4, true);
//!
//! let jsonl = tracer.to_jsonl();
//! assert!(jsonl.starts_with("{\"schema\":\"hinet-trace/v1\""));
//! let parsed = ParsedTrace::parse_jsonl(&jsonl).unwrap();
//! let summary = TraceSummary::from_trace(&parsed);
//! assert_eq!(summary.rounds, 4);
//! assert_eq!(summary.per_phase_rounds, vec![2, 2]);
//! assert_eq!(summary.counters.tokens_sent, 4);
//! ```

pub mod diff;

use crate::bench::json::Json;
use std::collections::BTreeMap;

/// Trace artifact schema identifier (bump on breaking JSONL changes).
pub const SCHEMA: &str = "hinet-trace/v1";

/// Default ring capacity: generous for CLI-scale runs (hundreds of rounds,
/// ≲ a thousand packets per round) while bounding memory at a few tens of
/// megabytes in the worst case.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Sender role as seen by the tracer — a dependency-free mirror of the
/// cluster hierarchy's role set (hinet-rt sits below the cluster crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Cluster head.
    Head,
    /// Gateway between clusters.
    Gateway,
    /// Ordinary member.
    Member,
}

impl Role {
    /// Stable wire name (`"head"` / `"gateway"` / `"member"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Head => "head",
            Role::Gateway => "gateway",
            Role::Member => "member",
        }
    }

    /// Index into per-role counter arrays (`[head, gateway, member]`).
    pub fn slot(self) -> usize {
        match self {
            Role::Head => 0,
            Role::Gateway => 1,
            Role::Member => 2,
        }
    }

    /// Inverse of [`Role::as_str`].
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "head" => Some(Role::Head),
            "gateway" => Some(Role::Gateway),
            "member" => Some(Role::Member),
            _ => None,
        }
    }
}

/// Which fault class dropped a delivery (see [`Event::FaultInjected`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Seeded random message loss.
    Loss,
    /// A partition window severed the link.
    Partition,
}

impl FaultKind {
    /// Stable wire name (`"loss"` / `"partition"`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Partition => "partition",
        }
    }

    /// Inverse of [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "loss" => Some(FaultKind::Loss),
            "partition" => Some(FaultKind::Partition),
            _ => None,
        }
    }
}

/// One trace event. High-volume *data* events ([`Event::TokenPush`],
/// [`Event::HeadBroadcast`], [`Event::FaultInjected`],
/// [`Event::Retransmit`]) may be sampled under [`ObsMode::Sampled`];
/// *structural* events (everything else) are always recorded, so per-phase
/// round counts stay exact even in sampled traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A simulation round began.
    RoundStart,
    /// A directed token send (a member pushing toward its head).
    TokenPush {
        /// Sending node id.
        node: u64,
        /// First (max-id under Algorithm 1) token in the payload.
        token: u64,
        /// Payload size in tokens (Algorithm 1 sends 1; Algorithm 2 sends
        /// whole `TA` sets).
        count: u64,
        /// Sender's role this round.
        role: Role,
        /// Unicast target (the member's head under the HiNet algorithms).
        dst: u64,
    },
    /// A broadcast send (a head/gateway disseminating over the backbone —
    /// or any broadcaster under flat baselines).
    HeadBroadcast {
        /// Sending node id.
        node: u64,
        /// First (min-id under Algorithm 1) token in the payload.
        token: u64,
        /// Payload size in tokens.
        count: u64,
        /// Sender's role this round.
        role: Role,
    },
    /// A new phase began (emitted at the phase's first round).
    PhaseAdvance {
        /// Zero-based phase index.
        phase: u64,
    },
    /// A node's cluster head changed between rounds.
    Reaffiliation {
        /// The re-affiliating node.
        node: u64,
        /// Previous head (`None` if previously unclustered).
        from: Option<u64>,
        /// New head (`None` if now unclustered).
        to: Option<u64>,
    },
    /// A stability window (paper Definitions 2–8) opened or closed.
    ///
    /// Stability is verified *post hoc* over the captured trace, so the
    /// verdict is known at open time too; `held` carries it on both edges.
    StabilityWindow {
        /// Definition number (2–8).
        def: u8,
        /// `true` at the window's first round, `false` at its last.
        open: bool,
        /// Whether the definition held over the window.
        held: bool,
    },
    /// The fault plane dropped a delivery.
    FaultInjected {
        /// Sending node id.
        node: u64,
        /// Dropped delivery's target (`None` when the whole send was
        /// suppressed rather than one receiver's copy).
        dst: Option<u64>,
        /// Which fault class fired.
        kind: FaultKind,
    },
    /// A node crashed: volatile protocol state lost, silent while down.
    Crash {
        /// The crashed node.
        node: u64,
        /// Whether its learned tokens survive the crash.
        durable: bool,
    },
    /// A crashed node restarted and rejoined the run.
    Recover {
        /// The recovering node.
        node: u64,
    },
    /// A recovery retransmission was sent (the send itself is also traced
    /// as a [`Event::TokenPush`]/[`Event::HeadBroadcast`]; this marks it).
    Retransmit {
        /// Sending node id.
        node: u64,
        /// Payload size in tokens.
        count: u64,
        /// Unicast target, `None` for broadcasts.
        dst: Option<u64>,
    },
    /// The fault plane held a delivery back: the envelope matures into the
    /// receiver's inbox `rounds` rounds later instead of this round.
    Delayed {
        /// Sending node id.
        node: u64,
        /// The delayed delivery's receiver.
        dst: u64,
        /// How many rounds the envelope is held.
        rounds: u64,
    },
    /// The fault plane duplicated a delivery; the receive plane discards
    /// the copy, so duplication never double-counts tokens or bytes.
    Duplicated {
        /// Sending node id.
        node: u64,
        /// The duplicated delivery's receiver.
        dst: u64,
    },
    /// The reliability layer's backoff timer re-sent an unacked envelope.
    RetransmitTimeout {
        /// Sending node id.
        node: u64,
        /// The link's receiver.
        dst: u64,
        /// Retransmission attempt (1 = first re-send).
        attempt: u64,
    },
    /// The stall watchdog snapshotted a node that had made no quorum
    /// progress when it halted the run (round = the node's frontier).
    StallProbe {
        /// The stalled node.
        node: u64,
    },
    /// The run finished.
    RunEnd {
        /// Rounds executed.
        rounds: u64,
        /// Whether dissemination completed (every node knows every token).
        completed: bool,
    },
}

impl Event {
    /// Stable wire name of the event kind (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart => "round_start",
            Event::TokenPush { .. } => "token_push",
            Event::HeadBroadcast { .. } => "head_broadcast",
            Event::PhaseAdvance { .. } => "phase_advance",
            Event::Reaffiliation { .. } => "reaffiliation",
            Event::StabilityWindow { .. } => "stability_window",
            Event::FaultInjected { .. } => "fault_injected",
            Event::Crash { .. } => "crash",
            Event::Recover { .. } => "recover",
            Event::Retransmit { .. } => "retransmit",
            Event::Delayed { .. } => "delayed",
            Event::Duplicated { .. } => "duplicated",
            Event::RetransmitTimeout { .. } => "retransmit_timeout",
            Event::StallProbe { .. } => "stall_probe",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// Whether this event is high-volume data (eligible for sampling)
    /// rather than structural.
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            Event::TokenPush { .. }
                | Event::HeadBroadcast { .. }
                | Event::FaultInjected { .. }
                | Event::Retransmit { .. }
                | Event::Delayed { .. }
                | Event::Duplicated { .. }
                | Event::RetransmitTimeout { .. }
        )
    }
}

/// An [`Event`] stamped with the round it occurred in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round index.
    pub round: u64,
    /// The event.
    pub event: Event,
}

/// How much the tracer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsMode {
    /// Record nothing; every instrumentation site reduces to one branch.
    Off,
    /// Record every structural event but only one in `N` data events
    /// (token pushes / head broadcasts). Counters remain exact.
    Sampled(u32),
    /// Record everything.
    Full,
}

impl ObsMode {
    /// Stable wire name written into the artifact header (`"off"`,
    /// `"sampled:N"`, `"full"`). Comparable across traces, so the diff
    /// engine can refuse to compare event streams captured at different
    /// sampling rates.
    pub fn wire(self) -> String {
        match self {
            ObsMode::Off => "off".into(),
            ObsMode::Sampled(n) => format!("sampled:{n}"),
            ObsMode::Full => "full".into(),
        }
    }

    /// Inverse of [`ObsMode::wire`].
    pub fn parse_wire(s: &str) -> Option<ObsMode> {
        match s {
            "off" => Some(ObsMode::Off),
            "full" => Some(ObsMode::Full),
            other => other
                .strip_prefix("sampled:")
                .and_then(|n| n.parse().ok())
                .map(ObsMode::Sampled),
        }
    }
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Recording mode.
    pub mode: ObsMode,
    /// Ring-buffer capacity in events; older events are evicted (and
    /// counted in [`Tracer::dropped`]) once exceeded.
    pub capacity: usize,
}

impl ObsConfig {
    /// Record everything at the default capacity.
    pub fn full() -> ObsConfig {
        ObsConfig {
            mode: ObsMode::Full,
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Record structural events plus one in `n` data events.
    pub fn sampled(n: u32) -> ObsConfig {
        ObsConfig {
            mode: ObsMode::Sampled(n.max(1)),
            capacity: DEFAULT_CAPACITY,
        }
    }

    /// Record nothing.
    pub fn off() -> ObsConfig {
        ObsConfig {
            mode: ObsMode::Off,
            capacity: 0,
        }
    }

    /// Same mode, explicit ring capacity.
    pub fn capacity(mut self, capacity: usize) -> ObsConfig {
        self.capacity = capacity;
        self
    }
}

/// Monotonic counters, always exact regardless of sampling or ring
/// eviction (they are updated on *emission*, not on *recording*).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total tokens sent (the paper's communication metric).
    pub tokens_sent: u64,
    /// Total packets sent.
    pub packets_sent: u64,
    /// Total bytes on air under the run's cost weights.
    pub bytes_sent: u64,
    /// Tokens sent broken down by sender role `[head, gateway, member]`.
    pub tokens_by_role: [u64; 3],
    /// Cluster-head changes observed.
    pub reaffiliations: u64,
    /// Rounds started.
    pub rounds: u64,
    /// Phases started.
    pub phases: u64,
    /// Deliveries dropped by the fault plane (loss + partitions).
    ///
    /// The four fault counters are serialised only when nonzero, so
    /// fault-free artifacts are byte-identical to pre-fault-plane ones.
    pub faults_injected: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node recoveries (restarts after a crash window).
    pub recoveries: u64,
    /// Recovery retransmissions sent.
    pub retransmits: u64,
    /// Event-mode: steps that found their round quorum not yet assembled
    /// and parked at least once waiting for it.
    ///
    /// The two runtime counters are serialised only when nonzero, so
    /// lock-step artifacts are byte-identical to pre-event-runtime ones.
    pub reassembly_stalls: u64,
    /// Event-mode: high-water mark of any single mailbox's queued
    /// envelope count.
    pub mailbox_depth_max: u64,
    /// Deliveries held back by the fault plane's delay knob.
    ///
    /// The adversarial-delivery counters below are serialised only when
    /// nonzero, so chaos-free artifacts stay byte-identical to older ones.
    pub delays_injected: u64,
    /// Envelope duplications injected by the fault plane.
    pub duplicates_injected: u64,
    /// Reliability-layer timer retransmissions sent.
    pub retransmit_timeouts: u64,
    /// Stall-watchdog per-node snapshots taken when a run halted.
    pub stall_probes: u64,
    /// Duplicate envelopes discarded by the receive plane (a gauge fed via
    /// [`Tracer::note_dedup`], like the event-runtime gauges — it has no
    /// event of its own).
    pub dups_discarded: u64,
}

/// A power-of-two-bucket histogram (bucket `i` counts values `v` with
/// `⌊log₂ v⌋ = i`; zero gets bucket 0). Used for rounds-per-phase
/// distributions.
///
/// ```
/// use hinet_rt::obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 3, 3, 18] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 18);
/// assert_eq!(h.bucket_counts()[1], 2); // the two 3s land in [2, 4)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let bucket = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts.
    pub fn bucket_counts(&self) -> &[u64; 64] {
        &self.buckets
    }
}

/// Fixed-capacity ring of [`TraceEvent`]s: pushing past capacity evicts the
/// oldest event and increments the drop counter — overflow is loud, never a
/// reallocation.
#[derive(Clone, Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the logically-oldest element once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Oldest-to-newest iteration.
    fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
    }
}

/// Span-style phase scope: emits [`Event::PhaseAdvance`] when opened and
/// records the phase's round span into the rounds-per-phase histogram when
/// dropped. For engine-driven runs prefer [`Tracer::set_phase_len`], which
/// scopes phases automatically from the phase plan.
///
/// ```
/// use hinet_rt::obs::{ObsConfig, Tracer};
///
/// let mut tracer = Tracer::new(ObsConfig::full());
/// {
///     let mut span = tracer.phase_span(0, 0);
///     for round in 0..3 {
///         span.tracer().round_start(round);
///     }
/// } // drop records 3 rounds for phase 0
/// assert_eq!(tracer.rounds_per_phase().count(), 1);
/// assert_eq!(tracer.rounds_per_phase().max(), 3);
/// ```
pub struct PhaseSpan<'a> {
    tracer: &'a mut Tracer,
    start_round: u64,
}

impl PhaseSpan<'_> {
    /// The underlying tracer, for emitting events inside the span.
    pub fn tracer(&mut self) -> &mut Tracer {
        self.tracer
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        let spanned = self.tracer.current_round.saturating_sub(self.start_round) + 1;
        self.tracer.rounds_per_phase.record(spanned);
    }
}

/// The recording handle threaded through the engine, the runner and the
/// stability verifiers.
///
/// Cost model: with [`ObsMode::Off`] every public emission method returns
/// after one branch (`enabled()`), so a disabled tracer on the engine's hot
/// path costs ≤ 2% (gated by the `headline` bench suite in CI).
#[derive(Debug)]
pub struct Tracer {
    cfg: ObsConfig,
    ring: Ring,
    counters: Counters,
    rounds_per_phase: Histogram,
    meta: Vec<(String, String)>,
    current_round: u64,
    /// Auto-phase state (see [`Tracer::set_phase_len`]).
    phase_len: Option<u64>,
    next_auto_phase: u64,
    rounds_in_phase: u64,
    /// Data-event sequence number, for sampling.
    data_seq: u64,
    /// Incremental disk sink (see [`Tracer::stream_to`]); when set,
    /// recorded events bypass the ring and go straight to the spill file.
    sink: Option<StreamSink>,
}

/// Incremental event sink: recorded events are appended to a spill file
/// (`<path>.part`) as they happen; [`Tracer::finish_stream`] prepends the
/// final header and renames into place. See [`Tracer::stream_to`].
#[derive(Debug)]
struct StreamSink {
    /// Final artifact path.
    path: std::path::PathBuf,
    /// Spill-file writer (`<path>.part`).
    writer: std::io::BufWriter<std::fs::File>,
    /// Events written so far.
    written: u64,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: ObsConfig) -> Tracer {
        let capacity = match cfg.mode {
            ObsMode::Off => 0,
            _ => cfg.capacity,
        };
        Tracer {
            cfg,
            ring: Ring::new(capacity),
            counters: Counters::default(),
            rounds_per_phase: Histogram::new(),
            meta: Vec::new(),
            current_round: 0,
            phase_len: None,
            next_auto_phase: 0,
            rounds_in_phase: 0,
            data_seq: 0,
            sink: None,
        }
    }

    /// A disabled tracer: every emission is a no-op after one branch.
    pub fn disabled() -> Tracer {
        Tracer::new(ObsConfig::off())
    }

    /// Whether the tracer records anything. Instrumentation sites check
    /// this before assembling event payloads.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.cfg.mode, ObsMode::Off)
    }

    /// Attach a `key: value` pair to the artifact header (scenario
    /// parameters, seeds, algorithm names).
    pub fn meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((key.into(), value.into()));
    }

    /// Record the event-runtime gauges (reassembly stalls and the mailbox
    /// depth high-water mark) into the counters. Called once at the end of
    /// an event-mode run; lock-step runs never call it, so their artifacts
    /// are unchanged (the counters serialise only when nonzero).
    pub fn note_runtime(&mut self, reassembly_stalls: u64, mailbox_depth_max: u64) {
        if !self.enabled() {
            return;
        }
        self.counters.reassembly_stalls = reassembly_stalls;
        self.counters.mailbox_depth_max = mailbox_depth_max;
    }

    /// Declare the phase length `T`: [`Tracer::round_start`] then emits
    /// [`Event::PhaseAdvance`] automatically at rounds `0, T, 2T, …` and
    /// records each completed phase's round count in the histogram.
    pub fn set_phase_len(&mut self, t: u64) {
        if t > 0 {
            self.phase_len = Some(t);
        }
    }

    /// Emit an event at `round`, updating every counter derivable from it.
    /// Structural events are always recorded; data events honour the
    /// sampling mode. This is the low-level entry — the engine uses the
    /// typed wrappers below, which also account bytes.
    pub fn emit(&mut self, round: u64, event: Event) {
        if !self.enabled() {
            return;
        }
        self.current_round = round;
        match &event {
            Event::RoundStart => {
                self.counters.rounds += 1;
                self.rounds_in_phase += 1;
            }
            Event::TokenPush { count, role, .. } | Event::HeadBroadcast { count, role, .. } => {
                self.counters.tokens_sent += count;
                self.counters.packets_sent += 1;
                self.counters.tokens_by_role[role.slot()] += count;
            }
            Event::PhaseAdvance { .. } => self.counters.phases += 1,
            Event::Reaffiliation { .. } => self.counters.reaffiliations += 1,
            Event::FaultInjected { .. } => self.counters.faults_injected += 1,
            Event::Crash { .. } => self.counters.crashes += 1,
            Event::Recover { .. } => self.counters.recoveries += 1,
            Event::Retransmit { .. } => self.counters.retransmits += 1,
            Event::Delayed { .. } => self.counters.delays_injected += 1,
            Event::Duplicated { .. } => self.counters.duplicates_injected += 1,
            Event::RetransmitTimeout { .. } => self.counters.retransmit_timeouts += 1,
            Event::StallProbe { .. } => self.counters.stall_probes += 1,
            Event::StabilityWindow { .. } | Event::RunEnd { .. } => {}
        }
        let record = if event.is_data() {
            let keep = match self.cfg.mode {
                ObsMode::Off => false,
                ObsMode::Full => true,
                ObsMode::Sampled(n) => self.data_seq % n as u64 == 0,
            };
            self.data_seq += 1;
            keep
        } else {
            true
        };
        if record {
            let te = TraceEvent { round, event };
            match &mut self.sink {
                Some(sink) => {
                    use std::io::Write;
                    // Streaming mode: the ring is bypassed entirely, so
                    // event retention no longer depends on its capacity.
                    let _ = writeln!(sink.writer, "{}", event_json(&te));
                    sink.written += 1;
                }
                None => self.ring.push(te),
            }
        }
    }

    /// Emit [`Event::RoundStart`], auto-advancing the phase if a phase
    /// length was declared.
    pub fn round_start(&mut self, round: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(t) = self.phase_len {
            if round % t == 0 {
                if round > 0 {
                    self.rounds_per_phase.record(self.rounds_in_phase);
                }
                self.rounds_in_phase = 0;
                let phase = self.next_auto_phase;
                self.next_auto_phase += 1;
                self.emit(round, Event::PhaseAdvance { phase });
            }
        }
        self.emit(round, Event::RoundStart);
    }

    /// Emit [`Event::TokenPush`] and account `bytes` on-air cost.
    #[allow(clippy::too_many_arguments)]
    pub fn token_push(
        &mut self,
        round: u64,
        node: u64,
        token: u64,
        count: u64,
        role: Role,
        dst: u64,
        bytes: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.counters.bytes_sent += bytes;
        self.emit(
            round,
            Event::TokenPush {
                node,
                token,
                count,
                role,
                dst,
            },
        );
    }

    /// Emit [`Event::HeadBroadcast`] and account `bytes` on-air cost.
    pub fn head_broadcast(
        &mut self,
        round: u64,
        node: u64,
        token: u64,
        count: u64,
        role: Role,
        bytes: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.counters.bytes_sent += bytes;
        self.emit(
            round,
            Event::HeadBroadcast {
                node,
                token,
                count,
                role,
            },
        );
    }

    /// Emit [`Event::Reaffiliation`].
    pub fn reaffiliation(&mut self, round: u64, node: u64, from: Option<u64>, to: Option<u64>) {
        self.emit(round, Event::Reaffiliation { node, from, to });
    }

    /// Emit [`Event::FaultInjected`].
    pub fn fault_injected(&mut self, round: u64, node: u64, dst: Option<u64>, kind: FaultKind) {
        self.emit(round, Event::FaultInjected { node, dst, kind });
    }

    /// Emit [`Event::Crash`].
    pub fn crash(&mut self, round: u64, node: u64, durable: bool) {
        self.emit(round, Event::Crash { node, durable });
    }

    /// Emit [`Event::Recover`].
    pub fn recover(&mut self, round: u64, node: u64) {
        self.emit(round, Event::Recover { node });
    }

    /// Emit [`Event::Retransmit`].
    pub fn retransmit(&mut self, round: u64, node: u64, count: u64, dst: Option<u64>) {
        self.emit(round, Event::Retransmit { node, count, dst });
    }

    /// Emit [`Event::Delayed`].
    pub fn delayed(&mut self, round: u64, node: u64, dst: u64, rounds: u64) {
        self.emit(round, Event::Delayed { node, dst, rounds });
    }

    /// Emit [`Event::Duplicated`].
    pub fn duplicated(&mut self, round: u64, node: u64, dst: u64) {
        self.emit(round, Event::Duplicated { node, dst });
    }

    /// Emit [`Event::RetransmitTimeout`]. `attempt` counts from 1 for the
    /// first timer re-send.
    pub fn retransmit_timeout(&mut self, round: u64, node: u64, dst: u64, attempt: u32) {
        self.emit(
            round,
            Event::RetransmitTimeout {
                node,
                dst,
                attempt: u64::from(attempt),
            },
        );
    }

    /// Emit [`Event::StallProbe`] at the stalled node's frontier round.
    pub fn stall_probe(&mut self, frontier: u64, node: u64) {
        self.emit(frontier, Event::StallProbe { node });
    }

    /// Record the receive plane's duplicate-discard gauge into the
    /// counters. Like [`Tracer::note_runtime`], called once at the end of a
    /// run; chaos-free runs never call it with a nonzero value, so their
    /// artifacts are unchanged.
    pub fn note_dedup(&mut self, dups_discarded: u64) {
        if !self.enabled() {
            return;
        }
        self.counters.dups_discarded = dups_discarded;
    }

    /// Emit [`Event::StabilityWindow`].
    pub fn stability_window(&mut self, round: u64, def: u8, open: bool, held: bool) {
        self.emit(round, Event::StabilityWindow { def, open, held });
    }

    /// Emit [`Event::RunEnd`], closing any open auto-phase.
    pub fn run_end(&mut self, rounds: u64, completed: bool) {
        if !self.enabled() {
            return;
        }
        if self.phase_len.is_some() && self.rounds_in_phase > 0 {
            self.rounds_per_phase.record(self.rounds_in_phase);
            self.rounds_in_phase = 0;
        }
        self.emit(
            rounds.saturating_sub(1),
            Event::RunEnd { rounds, completed },
        );
    }

    /// Open a manual phase span (see [`PhaseSpan`]).
    pub fn phase_span(&mut self, phase: u64, round: u64) -> PhaseSpan<'_> {
        self.emit(round, Event::PhaseAdvance { phase });
        self.current_round = round;
        PhaseSpan {
            start_round: round,
            tracer: self,
        }
    }

    /// The exact counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The rounds-per-phase histogram (fed by auto-phases and spans).
    pub fn rounds_per_phase(&self) -> &Histogram {
        &self.rounds_per_phase
    }

    /// Events currently held in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.ring.len() == 0
    }

    /// Events evicted by ring overflow or suppressed by sampling — reported
    /// so a truncated trace is never mistaken for a complete one.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped
    }

    /// Serialise to the `hinet-trace/v1` JSONL artifact: a header object on
    /// line 1 (schema, metadata, exact counters, drop count), then one
    /// event object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &header_json(&self.meta, &self.counters, self.dropped(), self.cfg.mode).to_string(),
        );
        out.push('\n');
        for te in self.events() {
            out.push_str(&event_json(te).to_string());
            out.push('\n');
        }
        out
    }

    /// Switch to incremental disk streaming: from now on, recorded events
    /// are appended to a spill file (`<path>.part`) as they are emitted
    /// instead of being held in the ring, so the trace no longer has to fit
    /// in memory (fault-heavy runs emit many more events than clean ones).
    ///
    /// Call [`Tracer::finish_stream`] after the run to assemble the final
    /// artifact at `path`: the header line — whose counters are only known
    /// at the end — followed by the spilled events. For runs that would not
    /// have overflowed the ring, the streamed artifact is byte-identical to
    /// [`Tracer::to_jsonl`].
    ///
    /// Parent directories are created. Events already held in the ring are
    /// spilled first, so switching mid-run loses nothing that was recorded.
    pub fn stream_to(&mut self, path: impl Into<std::path::PathBuf>) -> std::io::Result<()> {
        use std::io::Write;
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut part = path.clone().into_os_string();
        part.push(".part");
        let file = std::fs::File::create(std::path::PathBuf::from(part))?;
        let mut sink = StreamSink {
            path,
            writer: std::io::BufWriter::new(file),
            written: 0,
        };
        for te in self.ring.iter() {
            writeln!(sink.writer, "{}", event_json(te))?;
            sink.written += 1;
        }
        self.ring = Ring::new(0);
        self.sink = Some(sink);
        Ok(())
    }

    /// Finish incremental streaming (see [`Tracer::stream_to`]): write the
    /// header with the final counters to the target path, append the
    /// spilled events, remove the spill file, and return the number of
    /// events in the artifact. Errors leave the spill file in place for
    /// inspection. No-op returning `None` if streaming was never enabled.
    pub fn finish_stream(&mut self) -> std::io::Result<Option<u64>> {
        use std::io::Write;
        let Some(mut sink) = self.sink.take() else {
            return Ok(None);
        };
        sink.writer.flush()?;
        drop(sink.writer);
        let mut part = sink.path.clone().into_os_string();
        part.push(".part");
        let part = std::path::PathBuf::from(part);
        let mut out = std::io::BufWriter::new(std::fs::File::create(&sink.path)?);
        writeln!(
            out,
            "{}",
            header_json(&self.meta, &self.counters, self.dropped(), self.cfg.mode)
        )?;
        let mut spill = std::fs::File::open(&part)?;
        std::io::copy(&mut spill, &mut out)?;
        out.flush()?;
        std::fs::remove_file(&part)?;
        Ok(Some(sink.written))
    }

    /// Number of events written to the stream sink so far (`None` when not
    /// streaming).
    pub fn streamed(&self) -> Option<u64> {
        self.sink.as_ref().map(|s| s.written)
    }
}

fn counters_json(c: &Counters) -> Json {
    let mut fields = vec![
        ("tokens_sent".into(), Json::Num(c.tokens_sent as f64)),
        ("packets_sent".into(), Json::Num(c.packets_sent as f64)),
        ("bytes_sent".into(), Json::Num(c.bytes_sent as f64)),
        (
            "tokens_by_role".into(),
            Json::Arr(
                c.tokens_by_role
                    .iter()
                    .map(|&t| Json::Num(t as f64))
                    .collect(),
            ),
        ),
        ("reaffiliations".into(), Json::Num(c.reaffiliations as f64)),
        ("rounds".into(), Json::Num(c.rounds as f64)),
        ("phases".into(), Json::Num(c.phases as f64)),
    ];
    // Fault counters are written only when nonzero: fault-free artifacts
    // stay byte-identical to those written before the fault plane existed.
    for (name, v) in [
        ("faults_injected", c.faults_injected),
        ("crashes", c.crashes),
        ("recoveries", c.recoveries),
        ("retransmits", c.retransmits),
        ("reassembly_stalls", c.reassembly_stalls),
        ("mailbox_depth_max", c.mailbox_depth_max),
        ("delays_injected", c.delays_injected),
        ("duplicates_injected", c.duplicates_injected),
        ("retransmit_timeouts", c.retransmit_timeouts),
        ("stall_probes", c.stall_probes),
        ("dups_discarded", c.dups_discarded),
    ] {
        if v > 0 {
            fields.push((name.into(), Json::Num(v as f64)));
        }
    }
    Json::Obj(fields)
}

fn header_json(
    meta: &[(String, String)],
    counters: &Counters,
    dropped: u64,
    mode: ObsMode,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("mode".into(), Json::Str(mode.wire())),
        (
            "meta".into(),
            Json::Obj(
                meta.iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
        ("counters".into(), counters_json(counters)),
        ("dropped".into(), Json::Num(dropped as f64)),
    ])
}

fn opt_num(v: Option<u64>) -> Json {
    match v {
        Some(x) => Json::Num(x as f64),
        None => Json::Null,
    }
}

fn event_json(te: &TraceEvent) -> Json {
    let mut fields = vec![
        ("r".to_string(), Json::Num(te.round as f64)),
        ("ev".to_string(), Json::Str(te.event.kind().into())),
    ];
    match &te.event {
        Event::RoundStart => {}
        Event::TokenPush {
            node,
            token,
            count,
            role,
            dst,
        } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("token".into(), Json::Num(*token as f64)));
            fields.push(("count".into(), Json::Num(*count as f64)));
            fields.push(("role".into(), Json::Str(role.as_str().into())));
            fields.push(("dst".into(), Json::Num(*dst as f64)));
        }
        Event::HeadBroadcast {
            node,
            token,
            count,
            role,
        } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("token".into(), Json::Num(*token as f64)));
            fields.push(("count".into(), Json::Num(*count as f64)));
            fields.push(("role".into(), Json::Str(role.as_str().into())));
        }
        Event::PhaseAdvance { phase } => {
            fields.push(("phase".into(), Json::Num(*phase as f64)));
        }
        Event::Reaffiliation { node, from, to } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("from".into(), opt_num(*from)));
            fields.push(("to".into(), opt_num(*to)));
        }
        Event::StabilityWindow { def, open, held } => {
            fields.push(("def".into(), Json::Num(*def as f64)));
            fields.push(("open".into(), Json::Bool(*open)));
            fields.push(("held".into(), Json::Bool(*held)));
        }
        Event::FaultInjected { node, dst, kind } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("dst".into(), opt_num(*dst)));
            fields.push(("kind".into(), Json::Str(kind.as_str().into())));
        }
        Event::Crash { node, durable } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("durable".into(), Json::Bool(*durable)));
        }
        Event::Recover { node } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
        }
        Event::Retransmit { node, count, dst } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("count".into(), Json::Num(*count as f64)));
            fields.push(("dst".into(), opt_num(*dst)));
        }
        Event::Delayed { node, dst, rounds } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("dst".into(), Json::Num(*dst as f64)));
            fields.push(("rounds".into(), Json::Num(*rounds as f64)));
        }
        Event::Duplicated { node, dst } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("dst".into(), Json::Num(*dst as f64)));
        }
        Event::RetransmitTimeout { node, dst, attempt } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
            fields.push(("dst".into(), Json::Num(*dst as f64)));
            fields.push(("attempt".into(), Json::Num(*attempt as f64)));
        }
        Event::StallProbe { node } => {
            fields.push(("node".into(), Json::Num(*node as f64)));
        }
        Event::RunEnd { rounds, completed } => {
            fields.push(("rounds".into(), Json::Num(*rounds as f64)));
            fields.push(("completed".into(), Json::Bool(*completed)));
        }
    }
    Json::Obj(fields)
}

/// A parsed `hinet-trace/v1` artifact: the header's metadata, exact
/// counters and drop count, plus the recorded events.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedTrace {
    /// Header metadata pairs, in write order.
    pub meta: Vec<(String, String)>,
    /// Recording mode the trace was captured at (header `mode`; traces
    /// written before the field existed parse as [`ObsMode::Full`]).
    pub mode: ObsMode,
    /// Exact counters snapshot from the header.
    pub counters: Counters,
    /// Events evicted or sampled out before export.
    pub dropped: u64,
    /// Recorded events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl ParsedTrace {
    /// Parse an artifact produced by [`Tracer::to_jsonl`].
    pub fn parse_jsonl(text: &str) -> Result<ParsedTrace, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header_line) = lines.next().ok_or("empty trace")?;
        let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
        let schema = header
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("schema '{schema}' is not '{SCHEMA}'"));
        }
        let mode = match header.get("mode") {
            None => ObsMode::Full,
            Some(v) => {
                let raw = v.as_str().ok_or("'mode' is not a string")?;
                ObsMode::parse_wire(raw).ok_or(format!("unknown mode '{raw}'"))?
            }
        };
        let meta = match header.get("meta") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or(format!("meta.{k} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'meta'".into()),
        };
        let c = header.get("counters").ok_or("missing 'counters'")?;
        let num = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("missing counter '{key}'"))
        };
        let roles = c
            .get("tokens_by_role")
            .and_then(Json::as_arr)
            .ok_or("missing counter 'tokens_by_role'")?;
        if roles.len() != 3 {
            return Err("tokens_by_role must have 3 entries".into());
        }
        let mut tokens_by_role = [0u64; 3];
        for (i, r) in roles.iter().enumerate() {
            tokens_by_role[i] = r.as_u64().ok_or("non-integer tokens_by_role entry")?;
        }
        // Fault counters default to 0 when absent: they are only written
        // when nonzero, and older traces predate them entirely.
        let opt_counter =
            |v: &Json, key: &str| -> u64 { v.get(key).and_then(Json::as_u64).unwrap_or(0) };
        let counters = Counters {
            tokens_sent: num(c, "tokens_sent")?,
            packets_sent: num(c, "packets_sent")?,
            bytes_sent: num(c, "bytes_sent")?,
            tokens_by_role,
            reaffiliations: num(c, "reaffiliations")?,
            rounds: num(c, "rounds")?,
            phases: num(c, "phases")?,
            faults_injected: opt_counter(c, "faults_injected"),
            crashes: opt_counter(c, "crashes"),
            recoveries: opt_counter(c, "recoveries"),
            retransmits: opt_counter(c, "retransmits"),
            reassembly_stalls: opt_counter(c, "reassembly_stalls"),
            mailbox_depth_max: opt_counter(c, "mailbox_depth_max"),
            delays_injected: opt_counter(c, "delays_injected"),
            duplicates_injected: opt_counter(c, "duplicates_injected"),
            retransmit_timeouts: opt_counter(c, "retransmit_timeouts"),
            stall_probes: opt_counter(c, "stall_probes"),
            dups_discarded: opt_counter(c, "dups_discarded"),
        };
        let dropped = header
            .get("dropped")
            .and_then(Json::as_u64)
            .ok_or("missing 'dropped'")?;

        let mut events = Vec::new();
        for (lineno, line) in lines {
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            events.push(parse_event(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(ParsedTrace {
            meta,
            mode,
            counters,
            dropped,
            events,
        })
    }

    /// Metadata lookup.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the recorded event stream is complete: captured at
    /// [`ObsMode::Full`] with nothing evicted. Only complete traces support
    /// event-severity diffing and the golden-hygiene recount.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0 && self.mode == ObsMode::Full
    }

    /// Recompute the counters from the recorded event stream.
    ///
    /// `bytes_sent`, the event-runtime gauges (`reassembly_stalls`,
    /// `mailbox_depth_max`) and the dedup gauge (`dups_discarded`) are
    /// copied from the header — events carry neither byte costs nor
    /// scheduler/receive-plane state, so they cannot be recounted. For a
    /// complete trace ([`ParsedTrace::is_complete`]) every other field must
    /// equal the header's counters; a mismatch means the artifact was
    /// truncated or hand-edited (the golden-corpus hygiene gate).
    pub fn recount_events(&self) -> Counters {
        let mut c = Counters {
            bytes_sent: self.counters.bytes_sent,
            reassembly_stalls: self.counters.reassembly_stalls,
            mailbox_depth_max: self.counters.mailbox_depth_max,
            dups_discarded: self.counters.dups_discarded,
            ..Counters::default()
        };
        for te in &self.events {
            match &te.event {
                Event::RoundStart => c.rounds += 1,
                Event::TokenPush { count, role, .. } | Event::HeadBroadcast { count, role, .. } => {
                    c.tokens_sent += count;
                    c.packets_sent += 1;
                    c.tokens_by_role[role.slot()] += count;
                }
                Event::PhaseAdvance { .. } => c.phases += 1,
                Event::Reaffiliation { .. } => c.reaffiliations += 1,
                Event::FaultInjected { .. } => c.faults_injected += 1,
                Event::Crash { .. } => c.crashes += 1,
                Event::Recover { .. } => c.recoveries += 1,
                Event::Retransmit { .. } => c.retransmits += 1,
                Event::Delayed { .. } => c.delays_injected += 1,
                Event::Duplicated { .. } => c.duplicates_injected += 1,
                Event::RetransmitTimeout { .. } => c.retransmit_timeouts += 1,
                Event::StallProbe { .. } => c.stall_probes += 1,
                Event::StabilityWindow { .. } | Event::RunEnd { .. } => {}
            }
        }
        c
    }
}

fn parse_event(v: &Json) -> Result<TraceEvent, String> {
    let round = v.get("r").and_then(Json::as_u64).ok_or("missing 'r'")?;
    let kind = v.get("ev").and_then(Json::as_str).ok_or("missing 'ev'")?;
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("missing '{key}'"))
    };
    let boolean = |key: &str| -> Result<bool, String> {
        match v.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("missing '{key}'")),
        }
    };
    let opt = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            Some(Json::Null) => Ok(None),
            Some(x) => x.as_u64().map(Some).ok_or(format!("bad '{key}'")),
            None => Err(format!("missing '{key}'")),
        }
    };
    let role = || -> Result<Role, String> {
        let s = v
            .get("role")
            .and_then(Json::as_str)
            .ok_or("missing 'role'")?;
        Role::parse(s).ok_or(format!("unknown role '{s}'"))
    };
    let event = match kind {
        "round_start" => Event::RoundStart,
        "token_push" => Event::TokenPush {
            node: num("node")?,
            token: num("token")?,
            count: num("count")?,
            role: role()?,
            dst: num("dst")?,
        },
        "head_broadcast" => Event::HeadBroadcast {
            node: num("node")?,
            token: num("token")?,
            count: num("count")?,
            role: role()?,
        },
        "phase_advance" => Event::PhaseAdvance {
            phase: num("phase")?,
        },
        "reaffiliation" => Event::Reaffiliation {
            node: num("node")?,
            from: opt("from")?,
            to: opt("to")?,
        },
        "stability_window" => Event::StabilityWindow {
            def: num("def")? as u8,
            open: boolean("open")?,
            held: boolean("held")?,
        },
        "fault_injected" => Event::FaultInjected {
            node: num("node")?,
            dst: opt("dst")?,
            kind: {
                let s = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("missing 'kind'")?;
                FaultKind::parse(s).ok_or(format!("unknown fault kind '{s}'"))?
            },
        },
        "crash" => Event::Crash {
            node: num("node")?,
            durable: boolean("durable")?,
        },
        "recover" => Event::Recover { node: num("node")? },
        "retransmit" => Event::Retransmit {
            node: num("node")?,
            count: num("count")?,
            dst: opt("dst")?,
        },
        "delayed" => Event::Delayed {
            node: num("node")?,
            dst: num("dst")?,
            rounds: num("rounds")?,
        },
        "duplicated" => Event::Duplicated {
            node: num("node")?,
            dst: num("dst")?,
        },
        "retransmit_timeout" => Event::RetransmitTimeout {
            node: num("node")?,
            dst: num("dst")?,
            attempt: num("attempt")?,
        },
        "stall_probe" => Event::StallProbe { node: num("node")? },
        "run_end" => Event::RunEnd {
            rounds: num("rounds")?,
            completed: boolean("completed")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceEvent { round, event })
}

/// Aggregate view of a trace: exact totals from the counters plus
/// per-phase round counts and event-kind tallies from the recorded events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Exact counters (from the tracer or the artifact header).
    pub counters: Counters,
    /// Rounds executed (`counters.rounds`).
    pub rounds: u64,
    /// Rounds in each phase, in phase order (from structural events, so
    /// exact even for sampled traces; empty when no phases were traced).
    pub per_phase_rounds: Vec<u64>,
    /// Recorded event counts by kind name.
    pub events_by_kind: BTreeMap<&'static str, u64>,
    /// Stability windows that held / broke, by definition number.
    pub windows_held: BTreeMap<u8, (u64, u64)>,
    /// Whether the run completed (from [`Event::RunEnd`], if recorded).
    pub completed: Option<bool>,
    /// Events evicted or sampled out (nonzero means the event list — not
    /// the counters — is partial).
    pub dropped: u64,
}

impl TraceSummary {
    /// Summarise a live tracer.
    pub fn from_tracer(tracer: &Tracer) -> TraceSummary {
        Self::summarize(tracer.counters().clone(), tracer.dropped(), tracer.events())
    }

    /// Summarise a parsed artifact.
    pub fn from_trace(trace: &ParsedTrace) -> TraceSummary {
        Self::summarize(trace.counters.clone(), trace.dropped, trace.events.iter())
    }

    fn summarize<'a>(
        counters: Counters,
        dropped: u64,
        events: impl Iterator<Item = &'a TraceEvent>,
    ) -> TraceSummary {
        let mut s = TraceSummary {
            rounds: counters.rounds,
            counters,
            dropped,
            ..TraceSummary::default()
        };
        let mut in_phase = 0u64;
        let mut saw_phase = false;
        for te in events {
            *s.events_by_kind.entry(te.event.kind()).or_insert(0) += 1;
            match &te.event {
                Event::RoundStart => in_phase += 1,
                Event::PhaseAdvance { .. } => {
                    if saw_phase {
                        s.per_phase_rounds.push(in_phase);
                    }
                    saw_phase = true;
                    in_phase = 0;
                }
                Event::StabilityWindow { def, open, held } => {
                    if !open {
                        let slot = s.windows_held.entry(*def).or_insert((0, 0));
                        if *held {
                            slot.0 += 1;
                        } else {
                            slot.1 += 1;
                        }
                    }
                }
                Event::RunEnd { completed, .. } => s.completed = Some(*completed),
                _ => {}
            }
        }
        if saw_phase {
            s.per_phase_rounds.push(in_phase);
        }
        s
    }

    /// Render a human-readable report.
    pub fn to_text(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str(&format!(
            "rounds: {}  phases: {}  completed: {}\n",
            c.rounds,
            c.phases,
            self.completed.map_or("?".into(), |b| b.to_string()),
        ));
        out.push_str(&format!(
            "tokens sent: {}  packets: {}  bytes: {}  (heads {}, gateways {}, members {})\n",
            c.tokens_sent,
            c.packets_sent,
            c.bytes_sent,
            c.tokens_by_role[0],
            c.tokens_by_role[1],
            c.tokens_by_role[2],
        ));
        out.push_str(&format!("re-affiliations: {}\n", c.reaffiliations));
        if c.faults_injected + c.crashes + c.recoveries + c.retransmits > 0 {
            out.push_str(&format!(
                "faults: {} dropped deliveries, {} crashes, {} recoveries, {} retransmits\n",
                c.faults_injected, c.crashes, c.recoveries, c.retransmits,
            ));
        }
        if c.reassembly_stalls + c.mailbox_depth_max > 0 {
            out.push_str(&format!(
                "event runtime: {} reassembly stalls, mailbox depth high-water {}\n",
                c.reassembly_stalls, c.mailbox_depth_max,
            ));
        }
        if c.delays_injected + c.duplicates_injected + c.dups_discarded + c.retransmit_timeouts > 0
        {
            out.push_str(&format!(
                "delivery chaos: {} delayed, {} duplicated ({} dups discarded), \
                 {} timer retransmits\n",
                c.delays_injected, c.duplicates_injected, c.dups_discarded, c.retransmit_timeouts,
            ));
        }
        if c.stall_probes > 0 {
            out.push_str(&format!("stall watchdog: {} node probes\n", c.stall_probes));
        }
        if !self.per_phase_rounds.is_empty() {
            out.push_str("rounds per phase:");
            for (i, r) in self.per_phase_rounds.iter().enumerate() {
                out.push_str(&format!("  p{i}={r}"));
            }
            out.push('\n');
        }
        if !self.windows_held.is_empty() {
            out.push_str("stability windows (held/broke):");
            for (def, (held, broke)) in &self.windows_held {
                out.push_str(&format!("  def{def}={held}/{broke}"));
            }
            out.push('\n');
        }
        out.push_str("recorded events:");
        for (kind, n) in &self.events_by_kind {
            out.push_str(&format!("  {kind}={n}"));
        }
        out.push('\n');
        if self.dropped > 0 {
            out.push_str(&format!(
                "note: {} events dropped (ring overflow or sampling); counters remain exact\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        t.round_start(0);
        t.token_push(0, 1, 2, 1, Role::Member, 0, 40);
        t.run_end(1, true);
        assert!(t.is_empty());
        assert_eq!(t.counters(), &Counters::default());
    }

    #[test]
    fn counters_aggregate_tokens_packets_roles_and_bytes() {
        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        t.token_push(0, 5, 9, 1, Role::Member, 0, 40);
        t.head_broadcast(0, 0, 3, 2, Role::Head, 56);
        t.head_broadcast(0, 2, 3, 1, Role::Gateway, 40);
        t.reaffiliation(1, 5, Some(0), Some(2));
        t.run_end(1, false);
        let c = t.counters();
        assert_eq!(c.tokens_sent, 4);
        assert_eq!(c.packets_sent, 3);
        assert_eq!(c.bytes_sent, 136);
        assert_eq!(c.tokens_by_role, [2, 1, 1]);
        assert_eq!(c.reaffiliations, 1);
        assert_eq!(c.rounds, 1);
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::new(ObsConfig::full().capacity(4));
        for round in 0..10 {
            t.round_start(round);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        // Oldest-first iteration after wraparound: rounds 6..10 survive.
        let rounds: Vec<u64> = t.events().map(|e| e.round).collect();
        assert_eq!(rounds, vec![6, 7, 8, 9]);
        // Counters are exact despite eviction.
        assert_eq!(t.counters().rounds, 10);
    }

    #[test]
    fn sampling_keeps_structural_events_and_exact_counters() {
        let mut t = Tracer::new(ObsConfig::sampled(3));
        t.set_phase_len(2);
        for round in 0..4u64 {
            t.round_start(round);
            for node in 0..5 {
                t.token_push(round, node, node, 1, Role::Member, 0, 40);
            }
        }
        t.run_end(4, true);
        // 20 data events, one in three recorded.
        let pushes = t
            .events()
            .filter(|e| matches!(e.event, Event::TokenPush { .. }))
            .count();
        assert_eq!(pushes, 7);
        // Every structural event survives.
        let starts = t.events().filter(|e| e.event == Event::RoundStart).count();
        assert_eq!(starts, 4);
        let phases = t
            .events()
            .filter(|e| matches!(e.event, Event::PhaseAdvance { .. }))
            .count();
        assert_eq!(phases, 2);
        // Counters stay exact.
        assert_eq!(t.counters().tokens_sent, 20);
        // Summary's per-phase round counts stay exact too.
        let s = TraceSummary::from_tracer(&t);
        assert_eq!(s.per_phase_rounds, vec![2, 2]);
    }

    #[test]
    fn auto_phase_spans_feed_the_histogram() {
        let mut t = Tracer::new(ObsConfig::full());
        t.set_phase_len(3);
        for round in 0..7 {
            t.round_start(round);
        }
        t.run_end(7, true);
        assert_eq!(t.counters().phases, 3);
        let h = t.rounds_per_phase();
        assert_eq!(h.count(), 3, "two full phases + one partial");
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn manual_phase_span_records_on_drop() {
        let mut t = Tracer::new(ObsConfig::full());
        {
            let mut span = t.phase_span(0, 10);
            span.tracer().round_start(10);
            span.tracer().round_start(11);
        }
        assert_eq!(t.rounds_per_phase().count(), 1);
        assert_eq!(t.rounds_per_phase().max(), 2);
        assert_eq!(t.counters().phases, 1);
    }

    #[test]
    fn jsonl_round_trips_through_the_bench_parser() {
        let mut t = Tracer::new(ObsConfig::full());
        t.meta("algorithm", "alg1");
        t.meta("seed", "42");
        t.set_phase_len(2);
        t.round_start(0);
        t.token_push(0, 5, 9, 1, Role::Member, 0, 40);
        t.head_broadcast(0, 0, 3, 1, Role::Head, 40);
        t.round_start(1);
        t.reaffiliation(1, 4, Some(0), None);
        t.stability_window(0, 8, true, true);
        t.stability_window(1, 8, false, true);
        t.run_end(2, true);

        let text = t.to_jsonl();
        // Every line is valid JSON on its own (the bench parser).
        for line in text.lines() {
            Json::parse(line).unwrap();
        }
        let parsed = ParsedTrace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.meta_get("algorithm"), Some("alg1"));
        assert_eq!(parsed.counters, *t.counters());
        assert_eq!(parsed.events.len(), t.len());
        assert_eq!(parsed.events[0].event.kind(), "phase_advance");
        let summary = TraceSummary::from_trace(&parsed);
        assert_eq!(summary, TraceSummary::from_tracer(&t));
        assert_eq!(summary.windows_held.get(&8), Some(&(1, 0)));
        assert_eq!(summary.completed, Some(true));
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(ParsedTrace::parse_jsonl("").is_err());
        assert!(ParsedTrace::parse_jsonl("{}").is_err());
        let wrong_schema = Tracer::new(ObsConfig::full())
            .to_jsonl()
            .replace(SCHEMA, "other/v9");
        assert!(ParsedTrace::parse_jsonl(&wrong_schema).is_err());
        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        let mut text = t.to_jsonl();
        text.push_str("{\"r\":1,\"ev\":\"mystery\"}\n");
        assert!(ParsedTrace::parse_jsonl(&text).is_err());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_counts()[0], 2); // 0 and 1
        assert_eq!(h.bucket_counts()[1], 2); // 2 and 3
        assert_eq!(h.bucket_counts()[2], 1); // 4
        assert_eq!(h.bucket_counts()[9], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn role_wire_names_round_trip() {
        for role in [Role::Head, Role::Gateway, Role::Member] {
            assert_eq!(Role::parse(role.as_str()), Some(role));
        }
        assert_eq!(Role::parse("router"), None);
    }

    #[test]
    fn fault_events_round_trip_and_count() {
        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        t.fault_injected(0, 3, Some(1), FaultKind::Loss);
        t.fault_injected(0, 4, None, FaultKind::Partition);
        t.crash(1, 2, true);
        t.retransmit(2, 3, 2, Some(0));
        t.recover(3, 2);
        t.run_end(4, false);
        let c = t.counters();
        assert_eq!(c.faults_injected, 2);
        assert_eq!(c.crashes, 1);
        assert_eq!(c.recoveries, 1);
        assert_eq!(c.retransmits, 1);

        let text = t.to_jsonl();
        let parsed = ParsedTrace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.counters, *t.counters());
        assert_eq!(
            parsed.events[1].event,
            Event::FaultInjected {
                node: 3,
                dst: Some(1),
                kind: FaultKind::Loss
            }
        );
        // Recount from events must agree with the header for a full trace.
        assert_eq!(parsed.recount_events(), parsed.counters);
        let summary = TraceSummary::from_trace(&parsed);
        assert!(summary.to_text().contains("faults: 2 dropped deliveries"));
    }

    #[test]
    fn fault_free_artifacts_omit_fault_counters() {
        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        t.run_end(1, true);
        let text = t.to_jsonl();
        assert!(
            !text.contains("faults_injected") && !text.contains("retransmits"),
            "zero fault counters must not appear on the wire"
        );
        // ... and parse back as zeros.
        let parsed = ParsedTrace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.counters.faults_injected, 0);
        assert_eq!(parsed.counters.retransmits, 0);

        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        t.crash(0, 1, false);
        t.run_end(1, false);
        assert!(t.to_jsonl().contains("\"crashes\":1"));
    }

    #[test]
    fn fault_kinds_are_sampled_as_data_events() {
        let ev = Event::FaultInjected {
            node: 0,
            dst: None,
            kind: FaultKind::Loss,
        };
        assert!(ev.is_data());
        assert!(Event::Retransmit {
            node: 0,
            count: 1,
            dst: None
        }
        .is_data());
        assert!(!Event::Crash {
            node: 0,
            durable: false
        }
        .is_data());
        assert!(!Event::Recover { node: 0 }.is_data());
        for kind in [FaultKind::Loss, FaultKind::Partition] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultKind::parse("gremlin"), None);
    }

    fn emit_sample_run(t: &mut Tracer) {
        t.meta("algorithm", "alg1");
        t.set_phase_len(2);
        for round in 0..5 {
            t.round_start(round);
            t.token_push(round, round, round, 1, Role::Member, 0, 40);
            if round == 2 {
                t.fault_injected(round, 1, Some(0), FaultKind::Loss);
                t.retransmit(round, 1, 1, Some(0));
            }
        }
        t.run_end(5, true);
    }

    #[test]
    fn streamed_artifact_is_byte_identical_to_in_memory() {
        let path = std::env::temp_dir().join(format!(
            "hinet-obs-stream-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));

        let mut mem = Tracer::new(ObsConfig::full());
        emit_sample_run(&mut mem);

        let mut streamed = Tracer::new(ObsConfig::full());
        streamed.stream_to(&path).unwrap();
        assert_eq!(streamed.streamed(), Some(0));
        emit_sample_run(&mut streamed);
        assert!(streamed.streamed().unwrap() > 0);
        let written = streamed.finish_stream().unwrap().unwrap();

        let on_disk = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(on_disk, mem.to_jsonl(), "streamed bytes differ");
        assert_eq!(written as usize, mem.len());
        assert!(
            !path.with_extension("jsonl.part").exists(),
            "spill file must be cleaned up"
        );
        // Finishing twice is a no-op.
        assert_eq!(streamed.finish_stream().unwrap(), None);
    }

    #[test]
    fn switching_to_streaming_mid_run_spills_the_ring() {
        let path = std::env::temp_dir().join(format!(
            "hinet-obs-midrun-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut t = Tracer::new(ObsConfig::full());
        t.round_start(0);
        t.round_start(1);
        t.stream_to(&path).unwrap();
        assert_eq!(t.streamed(), Some(2), "ring events spill into the sink");
        assert!(t.is_empty(), "ring is drained after the switch");
        t.round_start(2);
        t.run_end(3, true);
        t.finish_stream().unwrap();
        let parsed = ParsedTrace::parse_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(parsed.counters.rounds, 3);
        assert_eq!(parsed.events.len(), 4);
    }
}
