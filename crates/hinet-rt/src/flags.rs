//! Typed `--flag` parsing shared by the `hinet` CLI and the bench binary.
//!
//! Each command declares its flags up front as a [`FlagSpec`] table;
//! [`parse_flags`] then rejects unknown flags and missing values instead of
//! silently collecting them into a string map, and [`FlagSet::parsed`]
//! gives typed lookup with defaults. `--name value` and `--name=value` are
//! both accepted; bare words come back as positionals.
//!
//! ```
//! use hinet_rt::flags::{flag, parse_flags};
//!
//! const SPEC: &[hinet_rt::flags::FlagSpec] = &[
//!     flag("n", true, "node count"),
//!     flag("verbose", false, "chatty output"),
//! ];
//! let args: Vec<String> = ["--n", "40", "--verbose", "extra"]
//!     .iter().map(|s| s.to_string()).collect();
//! let (positionals, flags) = parse_flags(SPEC, &args).unwrap();
//! assert_eq!(positionals, vec!["extra".to_string()]);
//! assert_eq!(flags.parsed("n", 0usize).unwrap(), 40);
//! assert!(flags.has("verbose"));
//! assert!(parse_flags(SPEC, &["--frobnicate".to_string()]).is_err());
//! ```

use std::collections::BTreeMap;
use std::fmt::Display;
use std::str::FromStr;

/// A declared flag.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// Flag name, without the leading `--`.
    pub name: &'static str,
    /// Whether the flag consumes a value (`--n 100`) or is boolean
    /// presence (`--json`).
    pub takes_value: bool,
    /// One-line help text.
    pub help: &'static str,
}

/// Shorthand constructor for [`FlagSpec`] tables.
pub const fn flag(name: &'static str, takes_value: bool, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value,
        help,
    }
}

/// Parsed flags: value flags map to `Some(value)`, boolean flags to `None`.
#[derive(Clone, Debug, Default)]
pub struct FlagSet {
    values: BTreeMap<String, Option<String>>,
}

/// Parse `args` against `spec`. Returns `(positionals, flags)` or a
/// user-facing error (unknown flag, missing value, value on a boolean
/// flag).
pub fn parse_flags(spec: &[FlagSpec], args: &[String]) -> Result<(Vec<String>, FlagSet), String> {
    let mut positional = Vec::new();
    let mut values = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(rest) = arg.strip_prefix("--") else {
            positional.push(arg.clone());
            i += 1;
            continue;
        };
        let (name, inline) = match rest.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (rest, None),
        };
        let Some(known) = spec.iter().find(|f| f.name == name) else {
            return Err(format!("unknown flag --{name}"));
        };
        if known.takes_value {
            let value = match inline {
                Some(v) => v,
                None => {
                    i += 1;
                    args.get(i)
                        .cloned()
                        .ok_or_else(|| format!("--{name} expects a value"))?
                }
            };
            values.insert(name.to_string(), Some(value));
        } else {
            if inline.is_some() {
                return Err(format!("--{name} does not take a value"));
            }
            values.insert(name.to_string(), None);
        }
        i += 1;
    }
    Ok((positional, FlagSet { values }))
}

impl FlagSet {
    /// Whether the flag was given at all.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// The raw value of a value-taking flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.as_deref())
    }

    /// Typed lookup with a default; parse failures report the flag name
    /// and offending value.
    pub fn parsed<T: FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("--{name}: cannot parse '{raw}': {e}")),
        }
    }
}

/// Render a `FLAGS:` help block from a spec table.
pub fn render_help(spec: &[FlagSpec]) -> String {
    let mut out = String::new();
    for f in spec {
        let name = if f.takes_value {
            format!("--{} VALUE", f.name)
        } else {
            format!("--{}", f.name)
        };
        out.push_str(&format!("  {name:<22} {}\n", f.help));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &[FlagSpec] = &[
        flag("n", true, "node count"),
        flag("json", false, "emit json"),
    ];

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_positionals_and_booleans() {
        let (pos, flags) = parse_flags(SPEC, &args(&["E3", "--n", "40", "--json", "E5"])).unwrap();
        assert_eq!(pos, vec!["E3", "E5"]);
        assert_eq!(flags.get("n"), Some("40"));
        assert!(flags.has("json"));
        assert!(!flags.has("k"));
        assert_eq!(flags.parsed("n", 0usize).unwrap(), 40);
        assert_eq!(flags.parsed("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn supports_equals_syntax() {
        let (_, flags) = parse_flags(SPEC, &args(&["--n=99"])).unwrap();
        assert_eq!(flags.parsed("n", 0usize).unwrap(), 99);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_flags(SPEC, &args(&["--bogus"]))
            .unwrap_err()
            .contains("unknown flag --bogus"));
        assert!(parse_flags(SPEC, &args(&["--n"]))
            .unwrap_err()
            .contains("expects a value"));
        assert!(parse_flags(SPEC, &args(&["--json=yes"]))
            .unwrap_err()
            .contains("does not take a value"));
    }

    #[test]
    fn typed_parse_errors_name_the_flag() {
        let (_, flags) = parse_flags(SPEC, &args(&["--n", "forty"])).unwrap();
        let err = flags.parsed("n", 0usize).unwrap_err();
        assert!(err.contains("--n"), "{err}");
        assert!(err.contains("forty"), "{err}");
    }

    #[test]
    fn help_lists_every_flag() {
        let help = render_help(SPEC);
        assert!(help.contains("--n VALUE"));
        assert!(help.contains("--json"));
        assert!(help.contains("node count"));
    }
}
