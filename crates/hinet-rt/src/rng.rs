//! Deterministic RNG: SplitMix64 seeding into xoshiro256\*\*, split streams.
//!
//! Every generator in this workspace is seeded, and independent streams are
//! derived by *splitting* rather than sequential draws, so adding a new
//! random decision to one component never perturbs another component's
//! stream. This is what makes experiment runs byte-for-byte reproducible
//! across refactors. The contract:
//!
//! * [`mix`] — SplitMix64-style finalisation of two words into one
//!   well-distributed word; used to derive stream ids.
//! * [`stream_rng`] — `(seed, stream) → Xoshiro256StarStar`: an independent
//!   child RNG per stream id, decorrelated even for adjacent ids.
//!
//! The generator itself is xoshiro256\*\* (Blackman–Vigna), seeded by
//! filling its 256-bit state from a SplitMix64 sequence — the seeding
//! procedure the xoshiro authors recommend. Both algorithms are public
//! domain and implemented here in-tree so the exact output streams are
//! owned by this workspace and pinned by golden-value tests.
//!
//! ```
//! use hinet_rt::rng::{stream_rng, Rng};
//!
//! // Same (seed, stream) → same draws; different streams → decorrelated.
//! let mut a = stream_rng(42, 7);
//! let mut b = stream_rng(42, 7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let mut c = stream_rng(42, 8);
//! assert_ne!(a.next_u64(), c.next_u64());
//! assert!(a.random_range(0..10usize) < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 sequence generator (Steele–Lea–Flood), used to expand a
/// 64-bit seed into xoshiro's 256-bit state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next word of the sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// SplitMix64-style mixing of two words into one well-distributed word.
///
/// This is the stream-id derivation of the `(seed, stream)` splitting
/// contract: `stream_rng(seed, mix(tag, index))` gives every component its
/// own decorrelated stream keyed by a constant tag plus a running index.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive an independent child RNG from `(seed, stream)`.
///
/// Uses [`mix`] over the pair, which decorrelates even adjacent stream ids.
pub fn stream_rng(seed: u64, stream: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(mix(seed, stream))
}

/// xoshiro256\*\* — the workspace's pseudo-random generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the all-zero state
/// (the one fixed point) is excluded at seeding time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed by expanding `seed` through [`SplitMix64`], as the xoshiro
    /// authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        if s == [0; 4] {
            // The all-zero state is xoshiro's only fixed point.
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256StarStar { s }
    }

    /// Raw state constructor for tests that need a specific state; must not
    /// be all-zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "the all-zero state is a fixed point");
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types drawable uniformly from an RNG via [`Rng::random`].
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 != 0
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased uniform draw in `[0, span)` via widening-multiply rejection
/// (Lemire). `span` must be nonzero.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges drawable uniformly via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range; panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {start}..={end}");
                match (end - start).checked_add(1) {
                    Some(span) => start + uniform_below(rng, span as u64) as $ty,
                    // Full-width range: every value is fair game.
                    None => rng.next_u64() as $ty,
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding can land exactly on the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {start}..={end}");
        start + f64::sample(rng) * (end - start)
    }
}

/// The workspace RNG surface: one required method, everything else derived.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw of a [`Sample`] type (`u64`, `u32`, `usize`, `bool`,
    /// `f64` in `[0, 1)`).
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.1..0.9)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Random slice operations: in-place shuffle and uniform element choice.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 0), mix(0, 1));
    }

    #[test]
    fn adjacent_streams_decorrelated() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_stream_reproducible() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs from the canonical C implementation for state
        // {1, 2, 3, 4} (Blackman–Vigna reference code).
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expect: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn reference_vector_splitmix64() {
        // First outputs for seed 1234567 from the SplitMix64 reference.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = stream_rng(1, 1);
        for _ in 0..2000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-2.0..1.5f64);
            assert!((-2.0..1.5).contains(&f));
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut rng = stream_rng(2, 0);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform draw misses values: {seen:?}"
        );
    }

    #[test]
    fn unit_interval_draws() {
        let mut rng = stream_rng(3, 0);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = stream_rng(4, 0);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
        let hits = (0..4000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = stream_rng(0, 0).random_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = stream_rng(0, 0).random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = stream_rng(5, 0);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually permutes (probability of identity is ~1/50!).
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = stream_rng(6, 0);
        let xs = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn seeding_avoids_zero_state_and_differs_by_seed() {
        let a = Xoshiro256StarStar::seed_from_u64(0);
        let b = Xoshiro256StarStar::seed_from_u64(1);
        assert_ne!(a, b);
        let mut a = a;
        // A zero seed must still produce a working stream.
        let draws: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = stream_rng(7, 0);
        // Must not overflow or panic.
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(0usize..=usize::MAX);
    }
}
