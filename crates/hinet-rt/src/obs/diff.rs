//! Structured comparison of two `hinet-trace/v1` artifacts — the
//! behavioural analogue of the bench `--baseline` regression gate.
//!
//! Two traces of the same seeded scenario must be *identical*: every
//! provider, protocol and RNG in the workspace is deterministic in the
//! scenario seed. [`diff_traces`] exploits that to turn "did this change
//! alter Algorithm 1's behaviour?" into an exact question, answered at
//! three severities:
//!
//! * **[`Severity::Meta`]** — the traces describe different scenarios
//!   (algorithm, dynamics, `n`/`k`/`α`/`L`/`θ`, seed, cost weights). A meta
//!   divergence usually means the comparison itself is misconfigured.
//! * **[`Severity::Counter`]** — the exact header counters differ: rounds,
//!   phases, tokens/packets/bytes sent, per-role token splits,
//!   re-affiliations. Counters survive sampling and ring eviction, so this
//!   tier is meaningful for *any* pair of traces.
//! * **[`Severity::Event`]** — the recorded event streams differ: the first
//!   diverging round is named with a bounded context window of surrounding
//!   events, and the per-phase round counts, per-kind event tallies and
//!   stability-window verdicts are compared structurally.
//!
//! Event-severity comparison is guarded: if either trace has `dropped > 0`
//! or the two were captured at different [`ObsMode`](super::ObsMode)s /
//! sample rates, the
//! event streams are not comparable (a sampled stream would produce
//! spurious divergences), so the diff *downgrades to counters-only* and
//! says so loudly in [`DiffReport::downgrade`] rather than reporting noise.
//!
//! ```
//! use hinet_rt::obs::{ObsConfig, ParsedTrace, Role, Tracer};
//! use hinet_rt::obs::diff::{diff_traces, DiffConfig, Severity};
//!
//! let trace = |seed: u64| {
//!     let mut t = Tracer::new(ObsConfig::full());
//!     t.meta("seed", seed.to_string());
//!     t.round_start(0);
//!     t.token_push(0, seed, 9, 1, Role::Member, 0, 40);
//!     t.run_end(1, true);
//!     ParsedTrace::parse_jsonl(&t.to_jsonl()).unwrap()
//! };
//! let (a, b) = (trace(1), trace(2));
//! assert!(diff_traces(&a, &a, &DiffConfig::default()).is_empty());
//! let d = diff_traces(&a, &b, &DiffConfig::default());
//! assert!(!d.is_empty());
//! assert!(d.divergences.iter().any(|v| v.severity == Severity::Meta));
//! assert!(d.divergences.iter().any(|v| v.severity == Severity::Event));
//! ```

use super::{Counters, ParsedTrace, TraceEvent, TraceSummary};
use crate::bench::json::Json;

/// Diff artifact schema identifier (the `hinet trace --diff --json` output).
pub const DIFF_SCHEMA: &str = "hinet-trace-diff/v1";

/// How serious a divergence is — ordered from configuration-level to
/// behaviour-level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The traces describe different scenarios (header metadata mismatch).
    Meta,
    /// The exact header counters differ.
    Counter,
    /// The recorded event streams differ.
    Event,
}

impl Severity {
    /// Stable wire name (`"meta"` / `"counter"` / `"event"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Meta => "meta",
            Severity::Counter => "counter",
            Severity::Event => "event",
        }
    }
}

/// One observed difference between the two traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Which tier the difference was found at.
    pub severity: Severity,
    /// Dotted path of the differing field (`"meta.seed"`,
    /// `"counters.tokens_sent"`, `"events.stream"`, …).
    pub field: String,
    /// Rendered value on side A (`"(absent)"` when the side lacks it).
    pub a: String,
    /// Rendered value on side B.
    pub b: String,
    /// One-sentence human description of the difference.
    pub detail: String,
}

/// Knobs for [`diff_traces`].
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Skip the meta tier (compare behaviour across deliberately different
    /// scenario stamps, e.g. renamed metadata keys).
    pub ignore_meta: bool,
    /// Skip the counter tier.
    pub ignore_counters: bool,
    /// Skip the event tier.
    pub ignore_events: bool,
    /// Cap on reported divergences; the overflow is counted in
    /// [`DiffReport::truncated`], never silently dropped.
    pub max_divergences: usize,
    /// Events of context shown on each side of the first diverging event.
    pub context: usize,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            ignore_meta: false,
            ignore_counters: false,
            ignore_events: false,
            max_divergences: 16,
            context: 3,
        }
    }
}

impl DiffConfig {
    /// Parse a comma-separated `--ignore` value (`"meta"`, `"counters"`,
    /// `"events"`, or any comma-joined combination) onto this config.
    pub fn with_ignores(mut self, spec: &str) -> Result<DiffConfig, String> {
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part {
                "meta" => self.ignore_meta = true,
                "counters" => self.ignore_counters = true,
                "events" => self.ignore_events = true,
                other => {
                    return Err(format!(
                        "unknown --ignore tier '{other}' (expected meta, counters or events)"
                    ))
                }
            }
        }
        Ok(self)
    }
}

/// Result of [`diff_traces`]: the divergence list plus the event-stream
/// localisation (first diverging round, context windows) and the guard
/// verdict.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffReport {
    /// Divergences in severity order (meta, then counters, then events),
    /// capped at [`DiffConfig::max_divergences`].
    pub divergences: Vec<Divergence>,
    /// Divergences suppressed by the cap.
    pub truncated: usize,
    /// When `Some`, event-severity comparison was skipped (incomplete or
    /// incomparably-sampled streams) and the reason is given — the
    /// counters-only downgrade of the correctness guard.
    pub downgrade: Option<String>,
    /// Round of the first diverging event, when the streams diverge.
    pub first_diverging_round: Option<u64>,
    /// Rendered events around the first divergence on side A.
    pub context_a: Vec<String>,
    /// Rendered events around the first divergence on side B.
    pub context_b: Vec<String>,
}

impl DiffReport {
    /// Whether the traces are identical at every compared tier. A
    /// counters-only downgrade does not by itself make a diff non-empty.
    pub fn is_empty(&self) -> bool {
        self.divergences.is_empty() && self.truncated == 0
    }

    /// Count of divergences at one severity (within the cap).
    pub fn count_at(&self, severity: Severity) -> usize {
        self.divergences
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Render the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(reason) = &self.downgrade {
            out.push_str(&format!(
                "WARNING: event streams not compared ({reason}); diff downgraded to counters-only\n"
            ));
        }
        if self.is_empty() {
            out.push_str("traces are behaviourally identical (0 divergences)\n");
            return out;
        }
        out.push_str(&format!(
            "{} divergence(s): {} meta, {} counter, {} event",
            self.divergences.len() + self.truncated,
            self.count_at(Severity::Meta),
            self.count_at(Severity::Counter),
            self.count_at(Severity::Event),
        ));
        if self.truncated > 0 {
            out.push_str(&format!(" (+{} beyond --max-divergences)", self.truncated));
        }
        out.push('\n');
        for d in &self.divergences {
            out.push_str(&format!(
                "  [{:<7}] {}: a={}  b={}  ({})\n",
                d.severity.as_str(),
                d.field,
                d.a,
                d.b,
                d.detail
            ));
        }
        if let Some(round) = self.first_diverging_round {
            out.push_str(&format!("first diverging round: {round}\n"));
            if !self.context_a.is_empty() || !self.context_b.is_empty() {
                out.push_str("context A:\n");
                for line in &self.context_a {
                    out.push_str(&format!("    {line}\n"));
                }
                out.push_str("context B:\n");
                for line in &self.context_b {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out
    }

    /// Render the machine-readable [`DIFF_SCHEMA`] (`hinet-trace-diff/v1`)
    /// JSON document.
    pub fn to_json(&self) -> String {
        let divergences = self
            .divergences
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("severity".into(), Json::Str(d.severity.as_str().into())),
                    ("field".into(), Json::Str(d.field.clone())),
                    ("a".into(), Json::Str(d.a.clone())),
                    ("b".into(), Json::Str(d.b.clone())),
                    ("detail".into(), Json::Str(d.detail.clone())),
                ])
            })
            .collect();
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::Obj(vec![
            ("schema".into(), Json::Str(DIFF_SCHEMA.into())),
            ("equal".into(), Json::Bool(self.is_empty())),
            (
                "downgrade".into(),
                match &self.downgrade {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            (
                "first_diverging_round".into(),
                match self.first_diverging_round {
                    Some(r) => Json::Num(r as f64),
                    None => Json::Null,
                },
            ),
            ("truncated".into(), Json::Num(self.truncated as f64)),
            ("divergences".into(), Json::Arr(divergences)),
            (
                "context".into(),
                Json::Obj(vec![
                    ("a".into(), strings(&self.context_a)),
                    ("b".into(), strings(&self.context_b)),
                ]),
            ),
        ])
        .pretty()
    }
}

/// Compare two parsed traces at the three severities (see the module docs).
///
/// Alignment is by scenario metadata: the meta tier reports every key whose
/// value differs (or that only one side carries), so comparing traces of
/// different scenarios or seeds fails loudly at [`Severity::Meta`] before
/// the behavioural tiers are even read.
pub fn diff_traces(a: &ParsedTrace, b: &ParsedTrace, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    if !cfg.ignore_meta {
        diff_meta(a, b, &mut report);
    }
    if !cfg.ignore_counters {
        diff_counters(&a.counters, &b.counters, &mut report);
    }
    if !cfg.ignore_events {
        match event_guard(a, b) {
            Err(reason) => report.downgrade = Some(reason),
            Ok(()) => diff_events(a, b, cfg, &mut report),
        }
    }
    if report.divergences.len() > cfg.max_divergences {
        report.truncated = report.divergences.len() - cfg.max_divergences;
        report.divergences.truncate(cfg.max_divergences);
    }
    report
}

/// The correctness guard for event-severity diffing: both streams must be
/// complete records captured the same way.
fn event_guard(a: &ParsedTrace, b: &ParsedTrace) -> Result<(), String> {
    if a.dropped > 0 || b.dropped > 0 {
        return Err(format!(
            "incomplete event stream (dropped: a={}, b={}); ring-evicted traces cannot be \
             compared event-by-event",
            a.dropped, b.dropped
        ));
    }
    if a.mode != b.mode {
        return Err(format!(
            "traces captured at different recording modes (a={}, b={}); sampled streams thin \
             data events differently",
            a.mode.wire(),
            b.mode.wire()
        ));
    }
    Ok(())
}

fn push(
    report: &mut DiffReport,
    severity: Severity,
    field: &str,
    a: String,
    b: String,
    detail: String,
) {
    report.divergences.push(Divergence {
        severity,
        field: field.to_string(),
        a,
        b,
        detail,
    });
}

fn diff_meta(a: &ParsedTrace, b: &ParsedTrace, report: &mut DiffReport) {
    // Union of keys in side-A order, then keys only B carries.
    let mut keys: Vec<&str> = a.meta.iter().map(|(k, _)| k.as_str()).collect();
    for (k, _) in &b.meta {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    for key in keys {
        let (va, vb) = (a.meta_get(key), b.meta_get(key));
        if va != vb {
            push(
                report,
                Severity::Meta,
                &format!("meta.{key}"),
                va.unwrap_or("(absent)").to_string(),
                vb.unwrap_or("(absent)").to_string(),
                "scenario metadata mismatch — the traces may describe different runs".into(),
            );
        }
    }
}

fn diff_counters(a: &Counters, b: &Counters, report: &mut DiffReport) {
    let mut check = |field: &str, va: u64, vb: u64, what: &str| {
        if va != vb {
            push(
                report,
                Severity::Counter,
                field,
                va.to_string(),
                vb.to_string(),
                format!("{what} differ"),
            );
        }
    };
    check("counters.rounds", a.rounds, b.rounds, "rounds executed");
    check("counters.phases", a.phases, b.phases, "phases started");
    check(
        "counters.tokens_sent",
        a.tokens_sent,
        b.tokens_sent,
        "tokens sent",
    );
    check(
        "counters.packets_sent",
        a.packets_sent,
        b.packets_sent,
        "packets sent",
    );
    check(
        "counters.bytes_sent",
        a.bytes_sent,
        b.bytes_sent,
        "bytes on air",
    );
    check(
        "counters.reaffiliations",
        a.reaffiliations,
        b.reaffiliations,
        "re-affiliations",
    );
    check(
        "counters.faults_injected",
        a.faults_injected,
        b.faults_injected,
        "fault-dropped deliveries",
    );
    check("counters.crashes", a.crashes, b.crashes, "node crashes");
    check(
        "counters.recoveries",
        a.recoveries,
        b.recoveries,
        "node recoveries",
    );
    check(
        "counters.retransmits",
        a.retransmits,
        b.retransmits,
        "recovery retransmissions",
    );
    for (slot, role) in ["head", "gateway", "member"].iter().enumerate() {
        check(
            &format!("counters.tokens_by_role.{role}"),
            a.tokens_by_role[slot],
            b.tokens_by_role[slot],
            &format!("tokens sent by {role}s"),
        );
    }
}

fn render_event(te: &TraceEvent) -> String {
    format!("r={} {:?}", te.round, te.event)
}

fn render_counts(v: &[u64]) -> String {
    let parts: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", parts.join(", "))
}

fn diff_events(a: &ParsedTrace, b: &ParsedTrace, cfg: &DiffConfig, report: &mut DiffReport) {
    let (sa, sb) = (TraceSummary::from_trace(a), TraceSummary::from_trace(b));

    // Per-phase round counts (the ROADMAP's first trace-diff ask).
    if sa.per_phase_rounds != sb.per_phase_rounds {
        let first = sa
            .per_phase_rounds
            .iter()
            .zip(&sb.per_phase_rounds)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| sa.per_phase_rounds.len().min(sb.per_phase_rounds.len()));
        push(
            report,
            Severity::Event,
            "events.per_phase_rounds",
            render_counts(&sa.per_phase_rounds),
            render_counts(&sb.per_phase_rounds),
            format!("per-phase round counts first differ at phase {first}"),
        );
    }

    // Per-kind event tallies (pushes vs broadcasts vs structural events).
    let kinds: std::collections::BTreeSet<&str> = sa
        .events_by_kind
        .keys()
        .chain(sb.events_by_kind.keys())
        .copied()
        .collect();
    for kind in kinds {
        let (na, nb) = (
            sa.events_by_kind.get(kind).copied().unwrap_or(0),
            sb.events_by_kind.get(kind).copied().unwrap_or(0),
        );
        if na != nb {
            push(
                report,
                Severity::Event,
                &format!("events.kind.{kind}"),
                na.to_string(),
                nb.to_string(),
                format!("recorded {kind} event counts differ"),
            );
        }
    }

    // Stability-window verdicts, per definition.
    let defs: std::collections::BTreeSet<u8> = sa
        .windows_held
        .keys()
        .chain(sb.windows_held.keys())
        .copied()
        .collect();
    for def in defs {
        let (wa, wb) = (
            sa.windows_held.get(&def).copied().unwrap_or((0, 0)),
            sb.windows_held.get(&def).copied().unwrap_or((0, 0)),
        );
        if wa != wb {
            push(
                report,
                Severity::Event,
                &format!("events.stability.def{def}"),
                format!("{}/{}", wa.0, wa.1),
                format!("{}/{}", wb.0, wb.1),
                format!("stability windows held/broke differ for Definition {def}"),
            );
        }
    }

    // First diverging event, with a bounded context window on both sides.
    let common = a.events.len().min(b.events.len());
    let split = (0..common)
        .find(|&i| a.events[i] != b.events[i])
        .or_else(|| (a.events.len() != b.events.len()).then_some(common));
    if let Some(i) = split {
        let ea = a.events.get(i);
        let eb = b.events.get(i);
        let round = ea.or(eb).map(|te| te.round);
        report.first_diverging_round = round;
        let window = |events: &[TraceEvent]| -> Vec<String> {
            let lo = i.saturating_sub(cfg.context);
            let hi = (i + cfg.context + 1).min(events.len());
            events[lo..hi].iter().map(render_event).collect()
        };
        report.context_a = window(&a.events);
        report.context_b = window(&b.events);
        push(
            report,
            Severity::Event,
            "events.stream",
            ea.map_or("(stream ended)".into(), render_event),
            eb.map_or("(stream ended)".into(), render_event),
            format!(
                "event streams first diverge at event {i} (round {}); lengths a={} b={}",
                round.map_or("?".into(), |r| r.to_string()),
                a.events.len(),
                b.events.len()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Event, ObsConfig, ObsMode, Role, Tracer};

    fn sample_trace(seed: u64) -> ParsedTrace {
        let mut t = Tracer::new(ObsConfig::full());
        t.meta("algorithm", "alg1");
        t.meta("seed", seed.to_string());
        t.set_phase_len(2);
        for round in 0..4 {
            t.round_start(round);
            t.token_push(round, seed + round, round, 1, Role::Member, 0, 40);
            t.head_broadcast(round, 0, round, 1, Role::Head, 40);
        }
        t.stability_window(0, 8, true, true);
        t.stability_window(3, 8, false, true);
        t.run_end(4, true);
        ParsedTrace::parse_jsonl(&t.to_jsonl()).unwrap()
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = sample_trace(1);
        let d = diff_traces(&a, &a.clone(), &DiffConfig::default());
        assert!(d.is_empty(), "{}", d.to_text());
        assert!(d.downgrade.is_none());
        assert!(d.to_text().contains("behaviourally identical"));
        assert!(d.to_json().contains("\"equal\": true"));
    }

    #[test]
    fn meta_mismatch_reported_at_meta_severity() {
        let a = sample_trace(1);
        let mut b = a.clone();
        b.meta = vec![
            ("algorithm".into(), "alg2".into()),
            ("seed".into(), "1".into()),
            ("extra".into(), "x".into()),
        ];
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert_eq!(d.count_at(Severity::Meta), 2, "{}", d.to_text());
        assert!(d
            .divergences
            .iter()
            .any(|v| v.field == "meta.algorithm" && v.a == "alg1" && v.b == "alg2"));
        assert!(d
            .divergences
            .iter()
            .any(|v| v.field == "meta.extra" && v.a == "(absent)"));
        // Ignoring the meta tier hides exactly those divergences.
        let cfg = DiffConfig::default().with_ignores("meta").unwrap();
        assert!(diff_traces(&a, &b, &cfg).is_empty());
    }

    #[test]
    fn counter_bump_reported_at_counter_severity() {
        let a = sample_trace(1);
        let mut b = a.clone();
        b.counters.tokens_sent += 1;
        b.counters.tokens_by_role[2] += 1;
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert_eq!(d.count_at(Severity::Counter), 2, "{}", d.to_text());
        assert_eq!(d.count_at(Severity::Event), 0, "counters alone changed");
        assert!(d
            .divergences
            .iter()
            .any(|v| v.field == "counters.tokens_by_role.member"));
    }

    #[test]
    fn dropped_event_localises_first_diverging_round() {
        let a = sample_trace(1);
        let mut b = a.clone();
        // Drop the round-2 token push (a data event: counters keep claiming
        // it, only the stream thins).
        let victim = b
            .events
            .iter()
            .position(|te| te.round == 2 && matches!(te.event, Event::TokenPush { .. }))
            .unwrap();
        b.events.remove(victim);
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert!(!d.is_empty());
        assert_eq!(d.count_at(Severity::Meta), 0);
        assert_eq!(d.count_at(Severity::Counter), 0);
        assert!(d.count_at(Severity::Event) >= 2, "{}", d.to_text());
        assert_eq!(d.first_diverging_round, Some(2));
        assert!(!d.context_a.is_empty() && !d.context_b.is_empty());
        assert!(d.to_text().contains("first diverging round: 2"));
    }

    #[test]
    fn reordered_events_detected_with_equal_tallies() {
        let a = sample_trace(1);
        let mut b = a.clone();
        // Swap a push and a broadcast within round 1: tallies and counters
        // stay equal, only the order changed.
        let i = b
            .events
            .iter()
            .position(|te| te.round == 1 && matches!(te.event, Event::TokenPush { .. }))
            .unwrap();
        b.events.swap(i, i + 1);
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert_eq!(d.count_at(Severity::Event), 1, "{}", d.to_text());
        assert_eq!(d.first_diverging_round, Some(1));
    }

    #[test]
    fn guard_downgrades_on_drops_and_mode_mismatch() {
        let a = sample_trace(1);
        let mut b = sample_trace(2);
        b.dropped = 5;
        let d = diff_traces(&a, &b, &DiffConfig::default());
        assert!(d.downgrade.is_some());
        assert_eq!(d.count_at(Severity::Event), 0, "{}", d.to_text());
        assert!(d.count_at(Severity::Meta) > 0, "meta tier still compared");
        assert!(d.to_text().contains("WARNING"));

        let mut c = sample_trace(1);
        c.mode = ObsMode::Sampled(10);
        let d = diff_traces(&a, &c, &DiffConfig::default());
        assert!(d.downgrade.unwrap().contains("sampled:10"));

        // Same sampling rate on both sides is comparable.
        let mut a2 = sample_trace(1);
        a2.mode = ObsMode::Sampled(10);
        let d = diff_traces(&a2, &c, &DiffConfig::default());
        assert!(d.downgrade.is_none());
    }

    #[test]
    fn max_divergences_caps_and_counts_overflow() {
        let a = sample_trace(1);
        let b = sample_trace(2); // different pushes in every round + seed meta
        let cfg = DiffConfig {
            max_divergences: 1,
            ..DiffConfig::default()
        };
        let d = diff_traces(&a, &b, &cfg);
        assert_eq!(d.divergences.len(), 1);
        assert!(d.truncated > 0);
        assert!(!d.is_empty());
        assert!(d.to_text().contains("beyond --max-divergences"));
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let a = sample_trace(1);
        let b = sample_trace(2);
        let text = diff_traces(&a, &b, &DiffConfig::default()).to_json();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(DIFF_SCHEMA));
        assert_eq!(v.get("equal"), Some(&Json::Bool(false)));
        let divs = v.get("divergences").and_then(Json::as_arr).unwrap();
        assert!(!divs.is_empty());
        for d in divs {
            assert!(d.get("severity").and_then(Json::as_str).is_some());
            assert!(d.get("field").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn ignore_spec_parses_and_rejects() {
        let cfg = DiffConfig::default()
            .with_ignores("meta, counters")
            .unwrap();
        assert!(cfg.ignore_meta && cfg.ignore_counters && !cfg.ignore_events);
        assert!(DiffConfig::default().with_ignores("bogus").is_err());
    }

    #[test]
    fn severity_wire_names_are_stable() {
        assert_eq!(Severity::Meta.as_str(), "meta");
        assert_eq!(Severity::Counter.as_str(), "counter");
        assert_eq!(Severity::Event.as_str(), "event");
    }
}
